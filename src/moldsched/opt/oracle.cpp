#include "moldsched/opt/oracle.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "moldsched/check/corpus.hpp"
#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/general_model.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/sim/trace.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::opt {

BnbOptions oracle_defaults() {
  BnbOptions options;
  options.max_tasks = 20;
  options.max_procs = 64;
  // Node budget only — a wall-clock budget would make "does this instance
  // certify" depend on the machine, and the oracle feeds deterministic
  // tests.
  options.node_budget = 20'000'000;
  options.time_budget_s = 0.0;
  return options;
}

std::optional<double> exact_topt(const graph::TaskGraph& g, int P,
                                 const BnbOptions& options) {
  if (P < 1) throw std::invalid_argument("exact_topt: P < 1");
  if (g.num_tasks() > options.max_tasks || P > options.max_procs)
    return std::nullopt;
  const BnbResult r = branch_and_bound_topt(g, P, options);
  if (r.status != BnbStatus::kExact) return std::nullopt;
  return r.makespan;
}

sched::SchedulerSpec exact_topt_spec(const BnbOptions& options) {
  sched::SchedulerSpec spec;
  spec.name = "exact-topt";
  spec.runner = [options](const graph::TaskGraph& g, int P) {
    const BnbResult r = branch_and_bound_topt(g, P, options);
    if (r.status != BnbStatus::kExact)
      throw std::runtime_error("exact-topt: budget exhausted before proof (" +
                               to_string(r.status) + ")");
    const int n = g.num_tasks();
    // Finish times recomputed with the same expression the search used,
    // so the trace makespan matches r.makespan to the bit.
    std::vector<double> finish(static_cast<std::size_t>(n));
    for (graph::TaskId v = 0; v < n; ++v) {
      const auto idx = static_cast<std::size_t>(v);
      finish[idx] =
          r.start_time[idx] + g.model_of(v).time(r.allocation[idx]);
    }
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    core::ScheduleResult out;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const auto ia = static_cast<std::size_t>(a);
      const auto ib = static_cast<std::size_t>(b);
      if (r.start_time[ia] != r.start_time[ib])
        return r.start_time[ia] < r.start_time[ib];
      return a < b;
    });
    for (const int v : order) {
      const auto idx = static_cast<std::size_t>(v);
      out.trace.record_start(v, r.start_time[idx], r.allocation[idx]);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const auto ia = static_cast<std::size_t>(a);
      const auto ib = static_cast<std::size_t>(b);
      if (finish[ia] != finish[ib]) return finish[ia] < finish[ib];
      return a < b;
    });
    for (const int v : order)
      out.trace.record_end(v, finish[static_cast<std::size_t>(v)]);
    out.makespan = r.makespan;
    out.allocation = r.allocation;
    out.ready_time.assign(static_cast<std::size_t>(n), 0.0);
    return out;
  };
  return spec;
}

namespace {

graph::TaskGraph chain_amdahl() {
  graph::TaskGraph g;
  const double works[] = {4.0, 7.0, 2.5, 5.0, 3.0};
  graph::TaskId prev = -1;
  for (const double w : works) {
    const auto v = g.add_task(std::make_shared<model::AmdahlModel>(w, 0.4));
    if (prev >= 0) g.add_edge(prev, v);
    prev = v;
  }
  return g;
}

graph::TaskGraph fork_join_roofline() {
  graph::TaskGraph g;
  const auto src = g.add_task(std::make_shared<model::RooflineModel>(2.0, 2));
  const auto sink = g.add_task(std::make_shared<model::RooflineModel>(3.0, 4));
  const double works[] = {6.0, 4.0, 9.0, 5.0};
  const int pbars[] = {3, 6, 2, 4};
  for (int i = 0; i < 4; ++i) {
    const auto v = g.add_task(
        std::make_shared<model::RooflineModel>(works[i], pbars[i]));
    g.add_edge(src, v);
    g.add_edge(v, sink);
  }
  return g;
}

graph::TaskGraph diamond_communication() {
  graph::TaskGraph g;
  const auto a = g.add_task(std::make_shared<model::CommunicationModel>(5.0, 0.3));
  const auto b = g.add_task(std::make_shared<model::CommunicationModel>(8.0, 0.1));
  const auto c = g.add_task(std::make_shared<model::CommunicationModel>(6.0, 0.5));
  const auto d = g.add_task(std::make_shared<model::CommunicationModel>(4.0, 0.2));
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  return g;
}

graph::TaskGraph independent_mixed() {
  graph::TaskGraph g;
  g.add_task(std::make_shared<model::AmdahlModel>(6.0, 0.25));
  g.add_task(std::make_shared<model::RooflineModel>(5.0, 2));
  g.add_task(std::make_shared<model::CommunicationModel>(7.0, 0.15));
  g.add_task(std::make_shared<model::GeneralModel>(
      model::GeneralParams{9.0, 0.3, 0.05, 8}));
  g.add_task(std::make_shared<model::TableModel>(
      std::vector<double>{5.0, 3.0, 2.5, 2.4}, "table-a"));
  g.add_task(std::make_shared<model::TableModel>(
      std::vector<double>{4.0, 2.2, 1.8}, "table-b"));
  return g;
}

graph::TaskGraph ladder_general() {
  graph::TaskGraph g;
  // Two parallel rails of four tasks with rung edges between them.
  graph::TaskId rail[2][4];
  const double works[] = {3.0, 5.0, 4.0, 6.0, 2.0, 7.0, 3.5, 4.5};
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < 4; ++i) {
      rail[r][i] = g.add_task(std::make_shared<model::GeneralModel>(
          model::GeneralParams{works[r * 4 + i], 0.2, 0.05,
                               model::GeneralParams::kUnboundedParallelism}));
      if (i > 0) g.add_edge(rail[r][i - 1], rail[r][i]);
    }
  }
  for (int i = 1; i < 4; ++i) {
    g.add_edge(rail[0][i - 1], rail[1][i]);
    g.add_edge(rail[1][i - 1], rail[0][i]);
  }
  return g;
}

graph::TaskGraph table_tree() {
  graph::TaskGraph g;
  // Seven-node in-tree of arbitrary (table) models: leaves feed pairs,
  // pairs feed the root.
  const std::vector<std::vector<double>> tables = {
      {6.0, 3.2, 2.4, 2.1}, {4.0, 2.5, 2.0}, {5.5, 2.9, 2.2, 1.9},
      {3.0, 1.8},           {7.0, 4.0, 3.1}, {2.5, 1.5, 1.2},
      {4.5, 2.6, 2.0, 1.7}};
  std::vector<graph::TaskId> v;
  for (std::size_t i = 0; i < tables.size(); ++i)
    v.push_back(g.add_task(std::make_shared<model::TableModel>(
        tables[i], "tree-" + std::to_string(i))));
  g.add_edge(v[0], v[4]);
  g.add_edge(v[1], v[4]);
  g.add_edge(v[2], v[5]);
  g.add_edge(v[3], v[5]);
  g.add_edge(v[4], v[6]);
  g.add_edge(v[5], v[6]);
  return g;
}

/// Deterministic corpus sample: redraws from the derived seed stream
/// until the family/kind recipe lands in the oracle's size range.
graph::TaskGraph sampled(int family, model::ModelKind kind, int P,
                         std::uint64_t seed) {
  util::Rng rng(util::derive_seed(0x0b5e55edULL, seed));
  for (int attempt = 0; attempt < 256; ++attempt) {
    auto g = check::corpus_graph(family, kind, rng, P);
    if (g.num_tasks() >= 2 && g.num_tasks() <= 16) return g;
  }
  throw std::logic_error("small_corpus: sampled family never fit the cap");
}

int family_index(const std::string& name) {
  const auto& families = check::corpus_families();
  const auto it = std::find(families.begin(), families.end(), name);
  if (it == families.end())
    throw std::logic_error("small_corpus: unknown corpus family " + name);
  return static_cast<int>(it - families.begin());
}

}  // namespace

std::vector<SmallInstance> small_corpus() {
  std::vector<SmallInstance> corpus;
  auto add = [&corpus](std::string name, graph::TaskGraph g, int P, double mu) {
    SmallInstance inst;
    inst.name = std::move(name);
    inst.graph = std::move(g);
    inst.P = P;
    inst.mu = mu;
    corpus.push_back(std::move(inst));
  };
  add("chain-amdahl", chain_amdahl(), 4, 0.3);
  add("forkjoin-roofline", fork_join_roofline(), 6, 0.3);
  add("diamond-comm", diamond_communication(), 4, 0.25);
  add("independent-mixed", independent_mixed(), 3, 0.3);
  add("ladder-general", ladder_general(), 5, 0.3);
  add("table-tree", table_tree(), 4, 0.3);
  add("sampled-layered-roofline",
      sampled(family_index("layered_random"), model::ModelKind::kRoofline, 5, 1),
      5, 0.3);
  add("sampled-forkjoin-amdahl",
      sampled(family_index("fork_join"), model::ModelKind::kAmdahl, 4, 2), 4,
      0.3);
  add("sampled-sp-comm",
      sampled(family_index("series_parallel"), model::ModelKind::kCommunication,
              6, 3),
      6, 0.25);
  add("sampled-outtree-general",
      sampled(family_index("random_out_tree"), model::ModelKind::kGeneral, 5, 4),
      5, 0.3);
  add("sampled-er-arbitrary",
      sampled(family_index("erdos_renyi"), model::ModelKind::kArbitrary, 4, 7),
      4, 0.3);
  add("sampled-diamond-amdahl",
      sampled(family_index("diamond"), model::ModelKind::kAmdahl, 8, 15), 8,
      0.3);
  return corpus;
}

}  // namespace moldsched::opt
