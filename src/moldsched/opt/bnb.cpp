#include "moldsched/opt/bnb.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <deque>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/graph/algorithms.hpp"
#include "moldsched/opt/wu_loiseau.hpp"
#include "moldsched/sched/offline.hpp"

namespace moldsched::opt {

std::string to_string(BnbStatus status) {
  switch (status) {
    case BnbStatus::kExact:
      return "exact";
    case BnbStatus::kBounded:
      return "bounded";
    case BnbStatus::kTimedOut:
      return "timed-out";
  }
  return "unknown";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Bound pruning keeps subtrees whose lower bound is within this relative
// slack of the incumbent: the slack absorbs ulp-level rounding in the
// bound arithmetic, so a subtree containing the optimum is never cut —
// the precondition for bit-exact agreement with the unpruned enumeration.
constexpr double kBoundSlack = 1.0 + 1e-12;

// Dominance cuts on a *strictly earlier* revisit keep this relative
// safety margin: "shift the later visit's completions back by the time
// difference" is a real-arithmetic argument, and the margin keeps it
// valid under double rounding. Equal-time revisits are exact
// transpositions (identical absolute arithmetic) and are always cut.
constexpr double kMemoMargin = 1e-9;

// n is bounded by the started-set bitmask in the memo key.
constexpr int kHardTaskCap = 63;

std::uint64_t double_bits(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// One branching decision: start `task` with `procs`, or advance to the
/// next completion when task == -1.
struct Decision {
  graph::TaskId task = -1;
  int procs = 0;
};

struct Running {
  graph::TaskId task;
  double finish;
  int procs;
};

using MemoKey = std::vector<std::uint64_t>;

struct MemoKeyHash {
  std::size_t operator()(const MemoKey& key) const noexcept {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a over 64-bit words
    for (const std::uint64_t w : key) {
      h ^= w;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

/// State shared between concurrent value-phase subsearches (and reused,
/// fresh, by the serial certificate pass).
struct Shared {
  std::atomic<double> best{kInf};  ///< value incumbent (atomic min)
  std::atomic<long> nodes{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> budget_hit{false};
  std::atomic<bool> timed_out{false};
  std::atomic<bool> found{false};  ///< certificate: optimal leaf reached
  long node_budget = 0;
  engine::CancelToken token;

  std::mutex mu;  // guards everything below
  std::vector<int> best_alloc;
  std::vector<double> best_start;
  bool improved = false;
  double abort_lb = kInf;  ///< min lower bound over abandoned subtrees
  long memo_hits = 0;
  std::size_t memo_entries = 0;
};

class Search {
 public:
  enum class Mode { kValue, kCertificate };

  Search(const graph::TaskGraph& g, int P, Shared* shared, Mode mode,
         bool use_bound, bool use_memo, std::size_t memo_limit)
      : g_(g),
        P_(P),
        shared_(shared),
        mode_(mode),
        use_bound_(use_bound),
        use_memo_(use_memo),
        memo_limit_(memo_limit),
        free_(P) {
    const int n = g.num_tasks();
    pending_.resize(static_cast<std::size_t>(n));
    started_.assign(static_cast<std::size_t>(n), false);
    start_time_.assign(static_cast<std::size_t>(n), 0.0);
    alloc_.assign(static_cast<std::size_t>(n), 0);
    for (graph::TaskId v = 0; v < n; ++v)
      pending_[static_cast<std::size_t>(v)] = g.in_degree(v);

    // Useful allocations per task: p qualifies iff it is strictly faster
    // than every smaller allocation (anything else is dominated).
    candidates_.resize(static_cast<std::size_t>(n));
    min_area_.assign(static_cast<std::size_t>(n), 0.0);
    for (graph::TaskId v = 0; v < n; ++v) {
      const auto& m = g.model_of(v);
      double best = kInf;
      for (int p = 1; p <= P; ++p) {
        const double t = m.time(p);
        if (t < best) {
          best = t;
          candidates_[static_cast<std::size_t>(v)].push_back(p);
        }
      }
      min_area_[static_cast<std::size_t>(v)] = m.min_area(P);
    }
    tail_min_ = graph::bottom_levels(g, analysis::min_times(g, P));
  }

  /// Replays `path` from the root and explores the subtree below it.
  void run(const std::vector<Decision>& path) {
    double now = 0.0;
    int min_task_id = 0;
    double max_finish = 0.0;
    for (const auto& d : path) apply(d, now, min_task_id, max_finish);
    explore(now, min_task_id, max_finish);
    flush_nodes();
    const std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->memo_hits += memo_hits_;
    shared_->memo_entries += memo_.size();
    shared_->abort_lb = std::min(shared_->abort_lb, abort_lb_);
  }

  /// Immediate decisions available after replaying `path`, in canonical
  /// order; empty for a complete schedule. Used by the frontier splitter.
  [[nodiscard]] std::vector<Decision> children(
      const std::vector<Decision>& path) {
    double now = 0.0;
    int min_task_id = 0;
    double max_finish = 0.0;
    for (const auto& d : path) apply(d, now, min_task_id, max_finish);
    std::vector<Decision> out;
    for (graph::TaskId v = min_task_id; v < g_.num_tasks(); ++v) {
      const auto idx = static_cast<std::size_t>(v);
      if (started_[idx] || pending_[idx] != 0) continue;
      for (const int p : candidates_[idx]) {
        if (p > free_) break;  // candidates are increasing in p
        out.push_back({v, p});
      }
    }
    if (!running_.empty()) out.push_back({-1, 0});
    return out;
  }

 private:
  void apply(const Decision& d, double& now, int& min_task_id,
             double& max_finish) {
    if (d.task >= 0) {
      const auto idx = static_cast<std::size_t>(d.task);
      started_[idx] = true;
      start_time_[idx] = now;
      alloc_[idx] = d.procs;
      free_ -= d.procs;
      const double finish = now + g_.model_of(d.task).time(d.procs);
      running_.push_back({d.task, finish, d.procs});
      min_task_id = d.task;
      max_finish = std::max(max_finish, finish);
    } else {
      double next = kInf;
      for (const auto& r : running_) next = std::min(next, r.finish);
      for (std::size_t i = 0; i < running_.size();) {
        if (running_[i].finish <= next) {
          free_ += running_[i].procs;
          for (const graph::TaskId s : g_.successors(running_[i].task))
            --pending_[static_cast<std::size_t>(s)];
          running_[i] = running_.back();
          running_.pop_back();
        } else {
          ++i;
        }
      }
      now = next;
      min_task_id = 0;
    }
  }

  [[nodiscard]] bool stopped() const {
    return shared_->stop.load(std::memory_order_relaxed);
  }

  void flush_nodes() {
    if (nodes_since_flush_ == 0) return;
    const long total =
        shared_->nodes.fetch_add(nodes_since_flush_,
                                 std::memory_order_relaxed) +
        nodes_since_flush_;
    nodes_since_flush_ = 0;
    if (shared_->node_budget > 0 && total >= shared_->node_budget) {
      shared_->budget_hit.store(true, std::memory_order_relaxed);
      shared_->stop.store(true, std::memory_order_relaxed);
    }
    if (shared_->token.cancelled()) {
      shared_->timed_out.store(true, std::memory_order_relaxed);
      shared_->stop.store(true, std::memory_order_relaxed);
    }
  }

  void bump_node() {
    if (++nodes_since_flush_ >= 16) flush_nodes();
  }

  [[nodiscard]] double lower_bound(double now, double max_finish) const {
    double bound = max_finish;
    double remaining_area = 0.0;
    for (graph::TaskId v = 0; v < g_.num_tasks(); ++v) {
      const auto idx = static_cast<std::size_t>(v);
      if (!started_[idx]) {
        // Unstarted: cannot complete before now + its minimal tail.
        bound = std::max(bound, now + tail_min_[idx]);
        remaining_area += min_area_[idx];
      }
    }
    for (const auto& r : running_) {
      remaining_area +=
          static_cast<double>(r.procs) * std::max(0.0, r.finish - now);
      // Running: its successors' tails start at its finish.
      for (const graph::TaskId s : g_.successors(r.task)) {
        const auto sidx = static_cast<std::size_t>(s);
        if (!started_[sidx])
          bound = std::max(bound, r.finish + tail_min_[sidx]);
      }
    }
    bound = std::max(bound, now + remaining_area / static_cast<double>(P_));
    return bound;
  }

  [[nodiscard]] bool memo_prune(double now) {
    if (!use_memo_) return false;
    MemoKey key;
    key.reserve(1 + 2 * running_.size());
    std::uint64_t mask = 0;
    for (graph::TaskId v = 0; v < g_.num_tasks(); ++v)
      if (started_[static_cast<std::size_t>(v)])
        mask |= std::uint64_t{1} << static_cast<unsigned>(v);
    key.push_back(mask);
    scratch_running_ = running_;
    std::sort(scratch_running_.begin(), scratch_running_.end(),
              [](const Running& a, const Running& b) { return a.task < b.task; });
    for (const auto& r : scratch_running_) {
      key.push_back((static_cast<std::uint64_t>(r.task) << 32) |
                    static_cast<std::uint64_t>(r.procs));
      key.push_back(double_bits(r.finish - now));
    }
    const auto it = memo_.find(key);
    if (it != memo_.end()) {
      const double stored = it->second;
      if (stored == now || stored <= now - kMemoMargin * (1.0 + now)) {
        ++memo_hits_;
        return true;
      }
      if (now < stored) it->second = now;
      return false;
    }
    if (memo_.size() < memo_limit_) memo_.emplace(std::move(key), now);
    return false;
  }

  void note_abort(double lb) { abort_lb_ = std::min(abort_lb_, lb); }

  void record_leaf(double makespan) {
    if (makespan >= shared_->best.load(std::memory_order_relaxed)) return;
    const std::lock_guard<std::mutex> lock(shared_->mu);
    if (makespan >= shared_->best.load(std::memory_order_relaxed)) return;
    atomic_min(shared_->best, makespan);
    shared_->best_alloc = alloc_;
    shared_->best_start = start_time_;
    shared_->improved = true;
    if (mode_ == Mode::kCertificate) {
      shared_->found.store(true, std::memory_order_relaxed);
      shared_->stop.store(true, std::memory_order_relaxed);
    }
  }

  void explore(double now, int min_task_id, double max_finish) {
    bump_node();
    const double lb = lower_bound(now, max_finish);
    if (!stopped()) {
      const double best = shared_->best.load(std::memory_order_relaxed);
      const bool cut = (use_bound_ && lb > best * kBoundSlack) ||
                       memo_prune(now);
      if (!cut) branch(now, min_task_id, max_finish);
    }
    // Whatever remains unexplored below this node (because the stop flag
    // fired at entry or between children) is covered by this node's lb.
    if (stopped()) note_abort(lb);
  }

  void branch(double now, int min_task_id, double max_finish) {
    // Option A: start a ready task (id >= min_task_id — canonical order
    // within one time point) with each useful allocation that fits.
    for (graph::TaskId v = min_task_id; v < g_.num_tasks(); ++v) {
      const auto idx = static_cast<std::size_t>(v);
      if (started_[idx] || pending_[idx] != 0) continue;
      for (const int p : candidates_[idx]) {
        if (p > free_) break;  // candidates are increasing in p
        if (stopped()) return;
        started_[idx] = true;
        start_time_[idx] = now;
        alloc_[idx] = p;
        free_ -= p;
        const double finish = now + g_.model_of(v).time(p);
        running_.push_back({v, finish, p});
        explore(now, v, std::max(max_finish, finish));
        // Undo by identity, not position: the recursion's Option B
        // restores running_ as a multiset and may permute it.
        for (std::size_t i = 0; i < running_.size(); ++i) {
          if (running_[i].task == v) {
            running_[i] = running_.back();
            running_.pop_back();
            break;
          }
        }
        free_ += p;
        started_[idx] = false;
      }
    }

    if (running_.empty()) {
      // Nothing running: either done, or Option A above covered every
      // continuation (a ready task always fits on an empty machine).
      bool all_done = true;
      for (graph::TaskId v = 0; v < g_.num_tasks(); ++v)
        if (!started_[static_cast<std::size_t>(v)]) all_done = false;
      if (all_done) record_leaf(max_finish);
      return;
    }
    if (stopped()) return;

    // Option B: deliberately wait for the next completion.
    double next = kInf;
    for (const auto& r : running_) next = std::min(next, r.finish);
    std::vector<Running> finished;
    for (std::size_t i = 0; i < running_.size();) {
      if (running_[i].finish <= next) {
        finished.push_back(running_[i]);
        running_[i] = running_.back();
        running_.pop_back();
      } else {
        ++i;
      }
    }
    for (const auto& r : finished) {
      free_ += r.procs;
      for (const graph::TaskId s : g_.successors(r.task))
        --pending_[static_cast<std::size_t>(s)];
    }

    explore(next, 0, max_finish);

    for (const auto& r : finished) {
      free_ -= r.procs;
      for (const graph::TaskId s : g_.successors(r.task))
        ++pending_[static_cast<std::size_t>(s)];
      running_.push_back(r);
    }
  }

  const graph::TaskGraph& g_;
  int P_;
  Shared* shared_;
  Mode mode_;
  bool use_bound_;
  bool use_memo_;
  std::size_t memo_limit_;
  int free_;

  std::vector<int> pending_;
  std::vector<bool> started_;
  std::vector<double> start_time_;
  std::vector<int> alloc_;
  std::vector<std::vector<int>> candidates_;
  std::vector<double> min_area_;
  std::vector<double> tail_min_;
  std::vector<Running> running_;
  std::vector<Running> scratch_running_;

  std::unordered_map<MemoKey, double, MemoKeyHash> memo_;
  long memo_hits_ = 0;
  long nodes_since_flush_ = 0;
  double abort_lb_ = kInf;
};

/// Splits the root into >= target independent subproblems (decision
/// paths) by breadth-first expansion; terminal paths (complete
/// schedules) are kept as trivial subproblems.
std::vector<std::vector<Decision>> expand_frontier(const graph::TaskGraph& g,
                                                   int P, std::size_t target) {
  std::deque<std::vector<Decision>> open;
  std::vector<std::vector<Decision>> closed;
  open.emplace_back();
  while (!open.empty() && open.size() + closed.size() < target) {
    auto path = std::move(open.front());
    open.pop_front();
    Search scratch(g, P, nullptr, Search::Mode::kValue, false, false, 0);
    auto kids = scratch.children(path);
    if (kids.empty()) {
      closed.push_back(std::move(path));
      continue;
    }
    for (const auto& d : kids) {
      auto next = path;
      next.push_back(d);
      open.push_back(std::move(next));
    }
  }
  for (auto& p : open) closed.push_back(std::move(p));
  return closed;
}

void check_instance(const graph::TaskGraph& g, int P, int max_tasks,
                    int max_procs, const char* who) {
  g.validate();
  if (P < 1)
    throw std::invalid_argument(std::string(who) + ": P must be >= 1");
  const int cap = std::min(max_tasks, kHardTaskCap);
  if (g.num_tasks() > cap)
    throw std::invalid_argument(std::string(who) + ": instance has " +
                                std::to_string(g.num_tasks()) +
                                " tasks, above the cap of " +
                                std::to_string(cap));
  if (P > max_procs)
    throw std::invalid_argument(std::string(who) + ": P = " +
                                std::to_string(P) + " above the cap of " +
                                std::to_string(max_procs));
}

}  // namespace

BnbResult branch_and_bound_topt(const graph::TaskGraph& g, int P,
                                const BnbOptions& options) {
  check_instance(g, P, options.max_tasks, options.max_procs,
                 "branch_and_bound_topt");
  const engine::CancelToken token =
      options.time_budget_s > 0.0
          ? engine::CancelToken::deadline_in(options.time_budget_s,
                                             options.token)
          : options.token;

  // Warm incumbent from the offline heuristics. The value is inflated by
  // 1e-9 before use: the branch tree recomputes the same schedules with
  // its own rounding, and the margin guarantees the true optimum still
  // registers as a strict improvement (so warm starting never changes
  // the reported value, only the node count).
  double warm_makespan = kInf;
  std::vector<int> warm_alloc;
  std::vector<double> warm_starts;
  if (options.warm_start) {
    const auto consider = [&](double makespan, const std::vector<int>& alloc,
                              const sim::Trace& trace) {
      if (makespan >= warm_makespan) return;
      warm_makespan = makespan;
      warm_alloc = alloc;
      warm_starts.assign(static_cast<std::size_t>(g.num_tasks()), 0.0);
      for (const auto& r : trace.records())
        warm_starts[static_cast<std::size_t>(r.task)] = r.start;
    };
    const auto off = sched::OfflineTradeoffScheduler(g, P).run();
    consider(off.makespan, off.allocation, off.trace);
    const auto canon = wl_canonical_schedule(g, P);
    consider(canon.makespan, canon.allocation, canon.trace);
    const auto comp = wl_compress_schedule(g, P);
    consider(comp.makespan, comp.allocation, comp.trace);
  }

  Shared value;
  value.node_budget = options.node_budget;
  value.token = token;
  if (warm_makespan < kInf)
    value.best.store(warm_makespan * (1.0 + 1e-9));

  unsigned threads_used = 1;
  if (options.threads > 1) {
    const auto frontier = expand_frontier(
        g, P, static_cast<std::size_t>(options.threads) * 3);
    if (frontier.size() > 1) {
      threads_used = options.threads;
      engine::Executor::global().parallel_for(
          frontier.size(),
          [&](std::size_t i) {
            Search s(g, P, &value, Search::Mode::kValue, true,
                     options.use_memo, options.memo_limit);
            s.run(frontier[i]);
          },
          options.threads, 1);
    }
  }
  if (threads_used == 1) {
    Search s(g, P, &value, Search::Mode::kValue, true, options.use_memo,
             options.memo_limit);
    s.run({});
  }

  BnbResult out;
  out.threads_used = threads_used;
  out.nodes = value.nodes.load();
  out.memo_hits = value.memo_hits;
  out.memo_entries = value.memo_entries;

  const bool value_aborted =
      value.budget_hit.load() || value.timed_out.load();
  if (!value_aborted) {
    // The search ran to completion, so the incumbent is exactly T_opt
    // (the optimal leaf always registers: it is strictly below the
    // inflated warm value). Re-derive the canonical optimal schedule
    // with a serial pass so allocation/start_time are identical for
    // every thread count: the pass prunes against nextafter(T_opt) and
    // stops at the first optimal leaf in canonical DFS order.
    const double t_opt = value.best.load();
    Shared cert;
    cert.node_budget = options.node_budget;
    cert.nodes.store(out.nodes);  // continue the same budget
    cert.token = token;
    cert.best.store(std::nextafter(t_opt, kInf));
    Search s(g, P, &cert, Search::Mode::kCertificate, true, options.use_memo,
             options.memo_limit);
    s.run({});
    out.nodes = cert.nodes.load();
    out.memo_hits += cert.memo_hits;
    out.memo_entries += cert.memo_entries;
    out.makespan = t_opt;
    out.lower_bound = t_opt;  // proven by the completed value phase
    if (cert.found.load()) {
      out.status = BnbStatus::kExact;
      out.allocation = cert.best_alloc;
      out.start_time = cert.best_start;
    } else {
      // Certificate pass truncated: the value is still proven optimal,
      // but the returned schedule is only the best one seen.
      out.status = cert.timed_out.load() ? BnbStatus::kTimedOut
                                         : BnbStatus::kBounded;
      out.allocation = value.improved ? value.best_alloc : warm_alloc;
      out.start_time = value.improved ? value.best_start : warm_starts;
      if (!value.improved && warm_makespan == kInf) out.makespan = kInf;
    }
    return out;
  }

  // Value phase aborted: report the best schedule seen and the proven
  // bracket around T_opt.
  out.status =
      value.timed_out.load() ? BnbStatus::kTimedOut : BnbStatus::kBounded;
  const double upper = value.improved ? value.best.load() : warm_makespan;
  out.makespan = upper;
  out.allocation = value.improved ? value.best_alloc : warm_alloc;
  out.start_time = value.improved ? value.best_start : warm_starts;
  const double lemma2 = analysis::optimal_makespan_lower_bound(g, P);
  out.lower_bound = std::max(lemma2, std::min(value.abort_lb, upper));
  return out;
}

BnbResult brute_force_topt(const graph::TaskGraph& g, int P, int max_tasks,
                           long node_budget) {
  check_instance(g, P, max_tasks, std::numeric_limits<int>::max(),
                 "brute_force_topt");
  Shared shared;
  shared.node_budget = node_budget;
  Search s(g, P, &shared, Search::Mode::kValue, false, false, 0);
  s.run({});
  BnbResult out;
  out.makespan = shared.best.load();
  out.allocation = shared.best_alloc;
  out.start_time = shared.best_start;
  out.nodes = shared.nodes.load();
  out.threads_used = 1;
  if (shared.budget_hit.load()) {
    out.status = BnbStatus::kBounded;
    out.lower_bound =
        std::max(analysis::optimal_makespan_lower_bound(g, P),
                 std::min(shared.abort_lb, out.makespan));
  } else {
    out.status = BnbStatus::kExact;
    out.lower_bound = out.makespan;
  }
  return out;
}

}  // namespace moldsched::opt
