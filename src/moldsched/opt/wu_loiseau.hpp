// Offline reference schedulers after Wu & Loiseau, "Efficient Algorithms
// for Scheduling Moldable Tasks" (arXiv:1609.08588), adapted from
// independent tasks to task graphs.
//
// Both algorithms revolve around the *canonical allotment* gamma(v, d):
// the cheapest (area-minimal) allocation that finishes task v within a
// deadline d. wl-canonical first solves for the canonical target d* —
// the fixed point where the canonical allotment's total area just fits
// into P * d — and then list-schedules the canonical allotments of a
// geometric deadline ladder anchored at d*. wl-compress starts from the
// all-minimal-area allotment and repeatedly widens the most
// area-efficient task on the current critical path, in the spirit of the
// Wu-Loiseau local-improvement phase.
//
// These are the honest offline columns of the ratio tables: unlike the
// online registry schedulers they see the whole graph up front, so their
// makespans sit between T_opt (opt::branch_and_bound_topt, exact but
// capped at ~20 tasks) and the online algorithms' makespans at any size.
#pragma once

#include <vector>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/sim/trace.hpp"

namespace moldsched::opt {

struct WlResult {
  sim::Trace trace;
  double makespan = 0.0;
  std::vector<int> allocation;
  /// wl-canonical: the canonical target d* (area fixed point);
  /// wl-compress: the initial all-minimal-area makespan.
  double canonical_target = 0.0;
  /// List schedules evaluated before settling on the returned one.
  int evaluations = 0;
};

/// The canonical target d*: the smallest deadline whose canonical
/// allotment gamma(d) packs into the platform, i.e. the root of
/// area(gamma(d)) <= P * d, clamped from below by the Lemma 2 bound.
/// Deterministic (fixed 64-step bisection).
[[nodiscard]] double canonical_target(const graph::TaskGraph& g, int P);

/// Dual-approximation flavor: bisect for d*, then evaluate the canonical
/// allotments of a geometric ladder of `ladder_points` >= 2 deadlines
/// from d* up to the sequential anchor, list-scheduling each with
/// bottom-level priorities; returns the best schedule seen.
[[nodiscard]] WlResult wl_canonical_schedule(const graph::TaskGraph& g, int P,
                                             int ladder_points = 24);

/// Local-improvement flavor: start from the minimal-area allotment and
/// repeatedly give the most area-efficient critical-path task its next
/// useful allocation, re-list-scheduling after each move; returns the
/// best schedule seen. `max_rounds` == 0 derives a bound from the
/// instance size.
[[nodiscard]] WlResult wl_compress_schedule(const graph::TaskGraph& g, int P,
                                            int max_rounds = 0);

/// Registry specs wrapping the two schedulers ("wl-canonical",
/// "wl-compress") so they appear as offline reference columns in every
/// comparison table.
[[nodiscard]] sched::SchedulerSpec wl_canonical_spec();
[[nodiscard]] sched::SchedulerSpec wl_compress_spec();

/// Both offline reference specs, in table order.
[[nodiscard]] std::vector<sched::SchedulerSpec> offline_reference_suite();

}  // namespace moldsched::opt
