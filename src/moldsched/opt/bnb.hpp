// Exact optimal makespan T_opt via branch-and-bound.
//
// The search branches on event-based states, which are dominant for this
// problem: an optimal schedule exists in which every task starts at time
// 0 or at some task's completion time. At each event time the search
// either starts a ready task with one of its useful allocations (those
// strictly faster than every smaller allocation; anything else is
// dominated) or deliberately advances to the next completion — waiting
// is part of the search space, because greedy non-delay schedules are
// *not* dominant for rigid multiprocessor tasks under precedence.
//
// Pruning is by the admissible Lemma 2-style lower bound (remaining
// area / P plus critical-path tails through running tasks) and by
// memoized dominance cuts: a state is keyed by its started-set and the
// exact bit patterns of the running tasks' relative remaining profile,
// and a revisit at the same or a later absolute time can be cut because
// every completion reachable from it maps to an equal-or-earlier one
// from the first visit.
//
// Exactness contract: branch_and_bound_topt and brute_force_topt explore
// the same canonical decision tree with identical floating-point
// arithmetic, so when the status is kExact their makespans agree *to the
// bit* — the brute-force differential in check::exact_oracle_check and
// the nightly property sweep assert exactly that. Budget-truncated runs
// degrade cleanly: kBounded / kTimedOut results still carry a valid
// schedule (upper bound) and a proven lower bound on T_opt.
//
// Determinism: for a completed (kExact) run the entire result — value,
// allocation, start times — is a pure function of (graph, P), regardless
// of `threads`. A parallel run only races the *value* search (the
// optimum value is unique, so the race is benign); the certificate
// schedule is then re-derived by a serial canonical-order pass.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "moldsched/engine/executor.hpp"
#include "moldsched/graph/task_graph.hpp"

namespace moldsched::opt {

enum class BnbStatus {
  kExact,     ///< proven optimal; makespan == lower_bound == T_opt
  kBounded,   ///< node budget exhausted; makespan/lower_bound bracket T_opt
  kTimedOut,  ///< time budget or cancel token fired; same bracket contract
};

[[nodiscard]] std::string to_string(BnbStatus status);

struct BnbOptions {
  /// Instance caps; above either the call throws std::invalid_argument
  /// (the oracle is for small instances by design).
  int max_tasks = 20;
  int max_procs = 64;
  /// Total node budget across all phases; 0 = unlimited.
  long node_budget = 50'000'000;
  /// Wall-clock budget in seconds; 0 = none. Combined with `token`.
  double time_budget_s = 0.0;
  /// External cooperative cancellation (checked every few hundred nodes).
  engine::CancelToken token;
  /// Worker count for the value phase; <= 1 runs fully serial. Uses
  /// engine::Executor::global().
  unsigned threads = 1;
  /// Memoized dominance cuts (soundness documented above). The table is
  /// capped at `memo_limit` entries; past the cap lookups continue but
  /// inserts stop.
  bool use_memo = true;
  std::size_t memo_limit = 1u << 22;
  /// Seed the incumbent from the offline heuristics (OfflineTradeoff +
  /// both Wu-Loiseau schedulers). Never changes the result, only the
  /// node count; disabled by brute_force_topt.
  bool warm_start = true;
};

struct BnbResult {
  BnbStatus status = BnbStatus::kExact;
  /// Best makespan found (== T_opt iff status == kExact). Always backed
  /// by the valid schedule in allocation/start_time.
  double makespan = 0.0;
  /// Proven lower bound on T_opt (== makespan when kExact).
  double lower_bound = 0.0;
  std::vector<int> allocation;
  std::vector<double> start_time;
  long nodes = 0;       ///< search-tree nodes visited, all phases
  long memo_hits = 0;   ///< dominance cuts taken
  std::size_t memo_entries = 0;
  unsigned threads_used = 1;
};

/// Exact T_opt for g on P processors, subject to the caps and budgets in
/// `options`. Throws std::invalid_argument for P < 1 or an instance over
/// the caps.
[[nodiscard]] BnbResult branch_and_bound_topt(const graph::TaskGraph& g, int P,
                                              const BnbOptions& options = {});

/// Exhaustive enumeration of the same canonical decision tree with no
/// pruning, no memo and no warm start — the independent arbiter the
/// property tier compares branch_and_bound_topt against bit-for-bit.
/// `node_budget` > 0 truncates runaway trees (the unpruned tree can be
/// astronomically larger than the pruned one); a truncated run returns
/// kBounded and must not be used as an arbiter.
[[nodiscard]] BnbResult brute_force_topt(const graph::TaskGraph& g, int P,
                                         int max_tasks = 10,
                                         long node_budget = 0);

}  // namespace moldsched::opt
