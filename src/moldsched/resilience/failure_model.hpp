// Task failure models for resilient scheduling.
//
// The paper (Section 2) notes that its online analysis "can readily
// carry over to the failure scenario" of Benoit et al. [3,4], where a
// failed task is re-executed until it succeeds and failures are only
// discovered at the end of an execution attempt (silent errors detected
// by a verification step). This module supplies that scenario.
#pragma once

#include <memory>
#include <string>

#include "moldsched/util/rng.hpp"

namespace moldsched::resilience {

/// Decides whether one execution attempt of a task fails. Stateless
/// except for the caller-owned RNG, so simulations stay reproducible.
class FailureModel {
 public:
  virtual ~FailureModel() = default;

  /// True if an attempt running for `duration` on `procs` processors
  /// (area = procs * duration) fails. Called once per attempt, at
  /// attempt completion (silent-error semantics).
  [[nodiscard]] virtual bool attempt_fails(double duration, int procs,
                                           util::Rng& rng) const = 0;

  /// Expected number of attempts for an execution of the given shape
  /// (1 / success probability); used by analytical predictions in tests.
  [[nodiscard]] virtual double expected_attempts(double duration,
                                                 int procs) const = 0;

  [[nodiscard]] virtual std::string describe() const = 0;
};

using FailureModelPtr = std::shared_ptr<const FailureModel>;

/// Every attempt fails independently with a fixed probability q.
class BernoulliFailures : public FailureModel {
 public:
  /// Throws unless 0 <= q < 1 (q = 1 would loop forever).
  explicit BernoulliFailures(double q);

  [[nodiscard]] bool attempt_fails(double duration, int procs,
                                   util::Rng& rng) const override;
  [[nodiscard]] double expected_attempts(double duration,
                                         int procs) const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double q() const noexcept { return q_; }

 private:
  double q_;
};

/// Silent errors striking as a Poisson process in processor-time: an
/// attempt of area a = procs * duration fails with probability
/// 1 - exp(-lambda * a). The classic model for resilient moldable jobs
/// — larger allocations expose more hardware to errors.
class PoissonAreaFailures : public FailureModel {
 public:
  /// Throws unless lambda >= 0.
  explicit PoissonAreaFailures(double lambda);

  [[nodiscard]] bool attempt_fails(double duration, int procs,
                                   util::Rng& rng) const override;
  [[nodiscard]] double expected_attempts(double duration,
                                         int procs) const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double lambda() const noexcept { return lambda_; }

 private:
  double lambda_;
};

/// Never fails; the resilient scheduler degenerates to Algorithm 1.
class NoFailures : public FailureModel {
 public:
  [[nodiscard]] bool attempt_fails(double, int, util::Rng&) const override {
    return false;
  }
  [[nodiscard]] double expected_attempts(double, int) const override {
    return 1.0;
  }
  [[nodiscard]] std::string describe() const override { return "no-failures"; }
};

}  // namespace moldsched::resilience
