#include "moldsched/resilience/failure_model.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace moldsched::resilience {

BernoulliFailures::BernoulliFailures(double q) : q_(q) {
  if (!(q >= 0.0) || q >= 1.0)
    throw std::invalid_argument("BernoulliFailures: q must lie in [0, 1)");
}

bool BernoulliFailures::attempt_fails(double /*duration*/, int /*procs*/,
                                      util::Rng& rng) const {
  return rng.bernoulli(q_);
}

double BernoulliFailures::expected_attempts(double /*duration*/,
                                            int /*procs*/) const {
  return 1.0 / (1.0 - q_);
}

std::string BernoulliFailures::describe() const {
  std::ostringstream os;
  os << "bernoulli(q=" << q_ << ")";
  return os.str();
}

PoissonAreaFailures::PoissonAreaFailures(double lambda) : lambda_(lambda) {
  if (!(lambda >= 0.0))
    throw std::invalid_argument(
        "PoissonAreaFailures: lambda must be non-negative");
}

bool PoissonAreaFailures::attempt_fails(double duration, int procs,
                                        util::Rng& rng) const {
  if (duration < 0.0 || procs < 1)
    throw std::invalid_argument("PoissonAreaFailures: bad attempt shape");
  const double area = duration * static_cast<double>(procs);
  return rng.bernoulli(1.0 - std::exp(-lambda_ * area));
}

double PoissonAreaFailures::expected_attempts(double duration,
                                              int procs) const {
  const double area = duration * static_cast<double>(procs);
  return std::exp(lambda_ * area);
}

std::string PoissonAreaFailures::describe() const {
  std::ostringstream os;
  os << "poisson-area(lambda=" << lambda_ << ")";
  return os.str();
}

}  // namespace moldsched::resilience
