#include "moldsched/resilience/resilient_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "moldsched/sim/event_queue.hpp"
#include "moldsched/sim/platform.hpp"

namespace moldsched::resilience {

ResilientOnlineScheduler::ResilientOnlineScheduler(
    const graph::TaskGraph& g, int P, const core::Allocator& alloc,
    FailureModelPtr failures, std::uint64_t seed, core::QueuePolicy policy)
    : graph_(g),
      P_(P),
      allocator_(alloc),
      failures_(std::move(failures)),
      seed_(seed),
      policy_(policy) {
  if (P < 1)
    throw std::invalid_argument("ResilientOnlineScheduler: P must be >= 1");
  if (!failures_)
    throw std::invalid_argument(
        "ResilientOnlineScheduler: null failure model");
  g.validate();
}

namespace {

struct QueueEntry {
  graph::TaskId task;
  double key;
  std::uint64_t seq;
};

}  // namespace

ResilientResult ResilientOnlineScheduler::run() const {
  const int n = graph_.num_tasks();
  ResilientResult result;
  result.allocation.assign(static_cast<std::size_t>(n), 0);
  result.attempts_per_task.assign(static_cast<std::size_t>(n), 0);

  util::Rng rng(seed_);
  sim::EventQueue events;
  sim::Platform platform(P_);
  std::vector<int> pending_preds(static_cast<std::size_t>(n));
  for (graph::TaskId v = 0; v < n; ++v)
    pending_preds[static_cast<std::size_t>(v)] = graph_.in_degree(v);

  std::vector<QueueEntry> queue;
  std::uint64_t seq = 0;
  // Index into result.attempts of the currently running attempt per task.
  std::vector<std::int64_t> running(static_cast<std::size_t>(n), -1);

  auto enqueue = [&](graph::TaskId task) {
    const QueueEntry entry{
        task,
        priority_key(policy_, graph_.model_of(task),
                     result.allocation[static_cast<std::size_t>(task)], P_),
        seq++};
    switch (policy_) {
      case core::QueuePolicy::kFifo:
        queue.push_back(entry);
        break;
      case core::QueuePolicy::kLifo:
        queue.insert(queue.begin(), entry);
        break;
      default: {
        auto it = std::find_if(
            queue.begin(), queue.end(),
            [&](const QueueEntry& e) { return e.key < entry.key; });
        queue.insert(it, entry);
        break;
      }
    }
  };

  auto reveal = [&](graph::TaskId task) {
    const int alloc = allocator_.allocate(graph_.model_of(task), P_);
    if (alloc < 1 || alloc > P_)
      throw std::logic_error(
          "ResilientOnlineScheduler: allocation outside [1, P] for task " +
          graph_.name(task));
    result.allocation[static_cast<std::size_t>(task)] = alloc;
    enqueue(task);
  };

  auto try_start_all = [&](double now) {
    auto it = queue.begin();
    while (it != queue.end()) {
      const graph::TaskId task = it->task;
      const int alloc = result.allocation[static_cast<std::size_t>(task)];
      if (alloc <= platform.available()) {
        platform.acquire(alloc);
        Attempt attempt;
        attempt.task = task;
        attempt.attempt = ++result.attempts_per_task[
            static_cast<std::size_t>(task)];
        attempt.start = now;
        attempt.procs = alloc;
        running[static_cast<std::size_t>(task)] =
            static_cast<std::int64_t>(result.attempts.size());
        result.attempts.push_back(attempt);
        events.schedule(now + graph_.model_of(task).time(alloc), task);
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
  };

  for (graph::TaskId v = 0; v < n; ++v)
    if (pending_preds[static_cast<std::size_t>(v)] == 0) reveal(v);
  try_start_all(0.0);

  while (!events.empty()) {
    const auto batch = events.pop_simultaneous();
    const double now = events.now();

    std::vector<graph::TaskId> newly_ready;
    std::vector<graph::TaskId> retries;
    for (const auto& ev : batch) {
      const auto task = static_cast<graph::TaskId>(ev.payload);
      auto& attempt = result.attempts[static_cast<std::size_t>(
          running[static_cast<std::size_t>(task)])];
      attempt.end = now;
      running[static_cast<std::size_t>(task)] = -1;
      platform.release(attempt.procs);

      const double duration = attempt.end - attempt.start;
      attempt.failed = failures_->attempt_fails(duration, attempt.procs, rng);
      const double area = duration * static_cast<double>(attempt.procs);
      result.total_area += area;
      if (attempt.failed) {
        result.wasted_area += area;
        retries.push_back(task);
      } else {
        for (const graph::TaskId s : graph_.successors(task))
          if (--pending_preds[static_cast<std::size_t>(s)] == 0)
            newly_ready.push_back(s);
      }
    }
    // Retries keep their allocation and re-enter the queue first (they
    // are "older" work); new reveals follow in id order.
    for (const graph::TaskId t : retries) enqueue(t);
    std::sort(newly_ready.begin(), newly_ready.end());
    for (const graph::TaskId v : newly_ready) reveal(v);

    try_start_all(now);
  }

  if (!queue.empty())
    throw std::logic_error("ResilientOnlineScheduler: deadlock");
  for (graph::TaskId v = 0; v < n; ++v)
    if (result.attempts_per_task[static_cast<std::size_t>(v)] == 0)
      throw std::logic_error(
          "ResilientOnlineScheduler: task never executed: " + graph_.name(v));

  double makespan = 0.0;
  for (const auto& a : result.attempts) makespan = std::max(makespan, a.end);
  result.makespan = makespan;
  return result;
}

std::vector<std::string> validate_resilient_schedule(
    const graph::TaskGraph& g, const ResilientResult& result, int P,
    double tolerance) {
  std::vector<std::string> violations;
  auto fail = [&](const std::string& m) { violations.push_back(m); };
  const auto n = static_cast<std::size_t>(g.num_tasks());

  std::vector<double> success_end(n, -1.0);
  std::vector<double> first_start(n, -1.0);
  std::vector<int> successes(n, 0);
  std::vector<double> last_failed_end(n, -1.0);

  for (const auto& a : result.attempts) {
    if (a.task < 0 || static_cast<std::size_t>(a.task) >= n) {
      fail("attempt for unknown task " + std::to_string(a.task));
      continue;
    }
    const auto idx = static_cast<std::size_t>(a.task);
    if (a.procs < 1 || a.procs > P)
      fail("attempt of " + g.name(a.task) + " uses " +
           std::to_string(a.procs) + " procs");
    const double expect = g.model_of(a.task).time(std::clamp(a.procs, 1, P));
    if (std::abs((a.end - a.start) - expect) >
        tolerance * std::max(1.0, expect))
      fail("attempt of " + g.name(a.task) + " has wrong duration");
    if (first_start[idx] < 0.0 || a.start < first_start[idx])
      first_start[idx] = a.start;
    if (a.failed) {
      last_failed_end[idx] = std::max(last_failed_end[idx], a.end);
    } else {
      ++successes[idx];
      success_end[idx] = a.end;
    }
  }

  for (std::size_t v = 0; v < n; ++v) {
    if (successes[v] != 1)
      fail(g.name(static_cast<graph::TaskId>(v)) + " has " +
           std::to_string(successes[v]) + " successful attempts");
    else if (last_failed_end[v] > success_end[v] + tolerance)
      fail(g.name(static_cast<graph::TaskId>(v)) +
           " has a failed attempt after its success");
  }

  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    for (const graph::TaskId u : g.predecessors(v)) {
      const auto ui = static_cast<std::size_t>(u);
      const auto vi = static_cast<std::size_t>(v);
      if (successes[ui] == 1 && first_start[vi] >= 0.0 &&
          first_start[vi] < success_end[ui] - tolerance)
        fail(g.name(v) + " started before predecessor " + g.name(u) +
             " succeeded");
    }
  }

  // Capacity sweep over attempts.
  struct Edge {
    double t;
    int delta;
  };
  std::vector<Edge> edges;
  for (const auto& a : result.attempts) {
    edges.push_back({a.start, a.procs});
    edges.push_back({a.end, -a.procs});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;
  });
  int usage = 0;
  for (const auto& e : edges) {
    usage += e.delta;
    if (usage > P) {
      fail("capacity exceeded: " + std::to_string(usage) + " > " +
           std::to_string(P));
      break;
    }
  }
  return violations;
}

}  // namespace moldsched::resilience
