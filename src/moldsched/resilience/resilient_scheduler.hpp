// Resilient online list scheduling: Algorithm 1 under the re-execution
// model. A task's failure is discovered only when an execution attempt
// completes; the task is then re-inserted into the waiting queue and
// re-executed (same allocation — the task's parameters are unchanged, so
// Algorithm 2 would decide identically) until an attempt succeeds. A
// successor is revealed only after every predecessor has *succeeded*.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "moldsched/core/allocator.hpp"
#include "moldsched/core/queue_policy.hpp"
#include "moldsched/graph/task_graph.hpp"
#include "moldsched/resilience/failure_model.hpp"

namespace moldsched::resilience {

/// One execution attempt of one task.
struct Attempt {
  int task = -1;
  int attempt = 0;   ///< 1-based attempt index for this task
  double start = 0.0;
  double end = 0.0;
  int procs = 0;
  bool failed = false;
};

struct ResilientResult {
  std::vector<Attempt> attempts;          ///< in start order
  double makespan = 0.0;
  std::vector<int> attempts_per_task;     ///< index = TaskId, >= 1
  std::vector<int> allocation;            ///< fixed per task
  double total_area = 0.0;                ///< over all attempts
  double wasted_area = 0.0;               ///< failed attempts only
};

class ResilientOnlineScheduler {
 public:
  /// `seed` drives the failure draws; everything else is deterministic.
  /// Throws on a cyclic/empty graph, P < 1 or a null failure model.
  ResilientOnlineScheduler(const graph::TaskGraph& g, int P,
                           const core::Allocator& alloc,
                           FailureModelPtr failures, std::uint64_t seed,
                           core::QueuePolicy policy = core::QueuePolicy::kFifo);

  [[nodiscard]] ResilientResult run() const;

 private:
  const graph::TaskGraph& graph_;
  int P_;
  const core::Allocator& allocator_;
  FailureModelPtr failures_;
  std::uint64_t seed_;
  core::QueuePolicy policy_;
};

/// Independent validation of a resilient schedule: per-attempt durations
/// equal t(p), at most P processors in use at any instant, exactly one
/// successful (final) attempt per task, failed attempts strictly before
/// it, and no task attempt before all predecessors succeeded. Returns a
/// list of violations (empty = valid).
[[nodiscard]] std::vector<std::string> validate_resilient_schedule(
    const graph::TaskGraph& g, const ResilientResult& result, int P,
    double tolerance = 1e-9);

}  // namespace moldsched::resilience
