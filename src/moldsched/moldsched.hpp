// Umbrella header: the complete public API of moldsched.
//
// Include this for quick experiments; production users should prefer the
// per-module headers to keep compile times down.
#pragma once

// Speedup models (Section 3.1)
#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/extra_models.hpp"
#include "moldsched/model/fit.hpp"
#include "moldsched/model/general_model.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/model/speedup_model.hpp"

// Task graphs, generators and the paper's lower-bound instances
#include "moldsched/graph/adversary.hpp"
#include "moldsched/graph/algorithms.hpp"
#include "moldsched/graph/chains.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/graph/stats.hpp"
#include "moldsched/graph/task_graph.hpp"
#include "moldsched/graph/workflows.hpp"

// Discrete-event simulation substrate
#include "moldsched/sim/event_queue.hpp"
#include "moldsched/sim/gantt.hpp"
#include "moldsched/sim/platform.hpp"
#include "moldsched/sim/trace.hpp"
#include "moldsched/sim/validator.hpp"

// The paper's algorithm (Algorithms 1 and 2) and its analysis artifacts
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/intervals.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/core/queue_policy.hpp"

// Baselines, offline/exact schedulers, extension settings
#include "moldsched/sched/backfill_scheduler.hpp"
#include "moldsched/sched/baselines.hpp"
#include "moldsched/sched/chain_scheduler.hpp"
#include "moldsched/sched/contiguous_scheduler.hpp"
#include "moldsched/sched/exact.hpp"
#include "moldsched/sched/level_scheduler.hpp"
#include "moldsched/sched/malleable_scheduler.hpp"
#include "moldsched/sched/offline.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/sched/release_scheduler.hpp"

// Resilience extension (re-execution under failures)
#include "moldsched/resilience/failure_model.hpp"
#include "moldsched/resilience/resilient_scheduler.hpp"

// Competitive-ratio analysis, bounds and experiment harness
#include "moldsched/analysis/adversary_study.hpp"
#include "moldsched/analysis/blame.hpp"
#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/curves.hpp"
#include "moldsched/analysis/experiment.hpp"
#include "moldsched/analysis/lemma_check.hpp"
#include "moldsched/analysis/markdown_report.hpp"
#include "moldsched/analysis/optimize.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/analysis/report.hpp"

// Differential self-checking: hot-path equivalence, instance shrinking,
// the shared fuzz corpus, and the service wire-path differential
#include "moldsched/check/corpus.hpp"
#include "moldsched/check/differential.hpp"
#include "moldsched/check/shrink.hpp"
#include "moldsched/check/wire_check.hpp"

// Adversarial search: perturbation grammar, annealing driver, pairwise
// tournament, replayable repro archive
#include "moldsched/adv/anneal.hpp"
#include "moldsched/adv/archive.hpp"
#include "moldsched/adv/perturb.hpp"
#include "moldsched/adv/tournament.hpp"

// Observability: metrics registry, Chrome traces, scheduler observers
#include "moldsched/obs/obs.hpp"

// Parallel experiment engine (job grids, executor, JSONL results, suites)
#include "moldsched/engine/engine.hpp"

// Scheduling service: streaming online RPC (framing, protocol, session
// state machine, TCP server and client)
#include "moldsched/svc/client.hpp"
#include "moldsched/svc/protocol.hpp"
#include "moldsched/svc/server.hpp"
#include "moldsched/svc/session.hpp"
#include "moldsched/svc/wire.hpp"

// Import/export
#include "moldsched/io/dot.hpp"
#include "moldsched/io/json.hpp"
#include "moldsched/io/svg.hpp"
#include "moldsched/io/text_format.hpp"

// Utilities
#include "moldsched/util/flags.hpp"
#include "moldsched/util/parallel.hpp"
#include "moldsched/util/rng.hpp"
#include "moldsched/util/stats.hpp"
#include "moldsched/util/table.hpp"
