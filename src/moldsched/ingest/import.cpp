#include "moldsched/ingest/import.hpp"

#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "moldsched/model/arbitrary_model.hpp"

namespace moldsched::ingest {

namespace {

[[noreturn]] void fail(const std::string& who, const std::string& what,
                       const SourcePos& pos) {
  throw std::invalid_argument(who + ": " + what + at_position(pos));
}

int spec_count(const ImportedTask& t) {
  return (t.params.has_value() ? 1 : 0) + (t.times.empty() ? 0 : 1) +
         (t.profile.empty() ? 0 : 1);
}

}  // namespace

std::string at_position(const SourcePos& pos) {
  if (pos.line == 0) return "";
  return " at byte " + std::to_string(pos.offset) + " (line " +
         std::to_string(pos.line) + ", column " + std::to_string(pos.column) +
         ")";
}

void validate(const ImportedGraph& g, const std::string& who) {
  const int n = static_cast<int>(g.tasks.size());
  for (const auto& t : g.tasks) {
    const int specs = spec_count(t);
    if (specs == 0)
      fail(who,
           "task '" + t.name +
               "' carries no model information (need model/work parameters, "
               "a times table, or a profile)",
           t.pos);
    if (specs > 1)
      fail(who, "task '" + t.name + "' has more than one model specification",
           t.pos);
  }

  std::set<std::pair<int, int>> seen;
  std::vector<int> indegree(g.tasks.size(), 0);
  std::vector<std::vector<int>> successors(g.tasks.size());
  for (const auto& e : g.edges) {
    if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n)
      fail(who, "edge endpoint out of range", e.pos);
    if (e.from == e.to)
      fail(who, "self-loop on task '" + g.tasks[e.from].name + "'", e.pos);
    if (!seen.insert({e.from, e.to}).second)
      fail(who,
           "duplicate edge '" + g.tasks[e.from].name + "' -> '" +
               g.tasks[e.to].name + "'",
           e.pos);
    successors[static_cast<std::size_t>(e.from)].push_back(e.to);
    ++indegree[static_cast<std::size_t>(e.to)];
  }

  // Kahn's algorithm; any task left with positive in-degree sits on (or
  // downstream of) a cycle. Reporting the lowest-id survivor is
  // deterministic and its source position leads straight to the knot.
  std::vector<int> ready;
  for (int v = 0; v < n; ++v)
    if (indegree[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  std::size_t processed = 0;
  while (!ready.empty()) {
    const int v = ready.back();
    ready.pop_back();
    ++processed;
    for (const int s : successors[static_cast<std::size_t>(v)])
      if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
  }
  if (processed != g.tasks.size()) {
    for (int v = 0; v < n; ++v) {
      if (indegree[static_cast<std::size_t>(v)] > 0)
        fail(who, "cycle detected through task '" + g.tasks[v].name + "'",
             g.tasks[v].pos);
    }
  }
}

Realized realize(const ImportedGraph& g, const FitOptions& options) {
  validate(g, "realize");
  Realized out;
  out.graph.reserve(static_cast<graph::TaskId>(g.tasks.size()),
                    static_cast<std::size_t>(g.edges.size()));
  out.fit.tasks.reserve(g.tasks.size());
  for (const auto& t : g.tasks) {
    TaskFit fit;
    fit.name = t.name;
    model::ModelPtr m;
    if (t.params.has_value()) {
      fit.source = "params";
      fit.kind = t.params->kind;
      fit.params = t.params->params;
      try {
        m = materialize(t.params->kind, t.params->params);
      } catch (const std::invalid_argument& e) {
        fail("realize",
             "task '" + t.name + "': " + e.what(), t.pos);
      }
    } else if (!t.times.empty()) {
      fit.source = "times";
      fit.kind = model::ModelKind::kArbitrary;
      fit.samples = static_cast<int>(t.times.size());
      m = std::make_shared<model::TableModel>(t.times);
    } else {
      ModelChoice choice = select_model(t.profile, options);
      fit = choice.fit;
      fit.name = t.name;
      m = std::move(choice.model);
    }
    out.fit.tasks.push_back(std::move(fit));
    out.graph.add_task(std::move(m), t.name);
  }
  for (const auto& e : g.edges)
    out.graph.add_edge(static_cast<graph::TaskId>(e.from),
                       static_cast<graph::TaskId>(e.to));
  return out;
}

}  // namespace moldsched::ingest
