#include "moldsched/ingest/fit_select.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>

#include "moldsched/model/extra_models.hpp"
#include "moldsched/model/special_models.hpp"

namespace moldsched::ingest {

namespace {

/// Candidate families in preference order: fewer free parameters first,
/// amdahl before communication among the two-parameter families (a fixed
/// tie-break so selection is deterministic).
const model::ModelKind kCandidates[] = {
    model::ModelKind::kRoofline, model::ModelKind::kAmdahl,
    model::ModelKind::kCommunication, model::ModelKind::kGeneral};

TaskFit table_fallback_fit(const std::vector<std::pair<int, double>>& profile,
                           const model::SpeedupModel& table) {
  TaskFit fit;
  fit.source = "fallback";
  fit.kind = model::ModelKind::kArbitrary;
  fit.samples = static_cast<int>(profile.size());
  double sse = 0.0;
  for (const auto& [p, t] : profile) {
    const double predicted = table.time(p);
    sse += (predicted - t) * (predicted - t);
    fit.max_relative_error =
        std::max(fit.max_relative_error, std::abs(predicted - t) / t);
  }
  fit.rmse = std::sqrt(sse / static_cast<double>(profile.size()));
  return fit;
}

ModelChoice make_fallback(const std::vector<std::pair<int, double>>& profile,
                          const FitOptions& options) {
  ModelChoice choice;
  choice.model =
      model::table_from_samples(profile, options.table_P, "profiled");
  choice.fit = table_fallback_fit(profile, *choice.model);
  return choice;
}

}  // namespace

int FitReport::fitted() const {
  int n = 0;
  for (const auto& t : tasks)
    if (t.source == "fitted") ++n;
  return n;
}

int FitReport::fallbacks() const {
  int n = 0;
  for (const auto& t : tasks)
    if (t.source == "fallback") ++n;
  return n;
}

std::string format_number(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

model::ModelKind classify_params(const model::GeneralParams& params) {
  if (!(params.w > 0.0)) return model::ModelKind::kGeneral;
  if (params.d == 0.0 && params.c == 0.0) return model::ModelKind::kRoofline;
  if (params.c == 0.0) return model::ModelKind::kAmdahl;
  if (params.d == 0.0) return model::ModelKind::kCommunication;
  return model::ModelKind::kGeneral;
}

model::ModelPtr materialize(model::ModelKind kind,
                            const model::GeneralParams& params) {
  switch (kind) {
    case model::ModelKind::kRoofline:
      return std::make_shared<model::RooflineModel>(params.w, params.pbar);
    case model::ModelKind::kAmdahl:
      return std::make_shared<model::AmdahlModel>(params.w, params.d);
    case model::ModelKind::kCommunication:
      return std::make_shared<model::CommunicationModel>(params.w, params.c);
    case model::ModelKind::kGeneral:
      return std::make_shared<model::GeneralModel>(params);
    case model::ModelKind::kArbitrary: break;
  }
  throw std::invalid_argument(
      "materialize: kArbitrary has no parameter form");
}

ModelChoice select_model(const std::vector<std::pair<int, double>>& profile,
                         const FitOptions& options) {
  if (profile.empty())
    throw std::invalid_argument("select_model: empty profile");
  std::set<int> distinct;
  for (const auto& [p, t] : profile) {
    if (p < 1) throw std::invalid_argument("select_model: sample with p < 1");
    if (!(t > 0.0) || !std::isfinite(t))
      throw std::invalid_argument(
          "select_model: times must be positive and finite");
    distinct.insert(p);
  }

  // Under-determined profiles cannot distinguish the families; the
  // interpolating table reproduces them exactly instead.
  if (distinct.size() < 3) return make_fallback(profile, options);

  struct Candidate {
    model::ModelKind family;
    model::FitResult fit;
  };
  std::vector<Candidate> candidates;
  double best_rmse = std::numeric_limits<double>::infinity();
  for (const auto family : kCandidates) {
    try {
      Candidate c{family, model::fit_model_family(profile, family)};
      best_rmse = std::min(best_rmse, c.fit.rmse);
      candidates.push_back(std::move(c));
    } catch (const std::invalid_argument&) {
      // This family admits no non-negative fit for the data; skip it.
    }
  }
  if (candidates.empty()) return make_fallback(profile, options);

  // Preference order with tolerance: the first (simplest) candidate
  // whose RMSE is within the relative slack of the best one wins. The
  // absolute epsilon keeps exact fits (rmse == 0) comparable.
  const Candidate* chosen = nullptr;
  const double cutoff =
      best_rmse * (1.0 + options.prefer_simpler_tolerance) + 1e-12;
  for (const auto& c : candidates) {
    if (c.fit.rmse <= cutoff) {
      chosen = &c;
      break;
    }
  }

  if (chosen->fit.max_relative_error > options.max_relative_error)
    return make_fallback(profile, options);

  ModelChoice choice;
  choice.fit.source = "fitted";
  choice.fit.params = chosen->fit.params;
  choice.fit.kind = classify_params(chosen->fit.params);
  choice.fit.rmse = chosen->fit.rmse;
  choice.fit.max_relative_error = chosen->fit.max_relative_error;
  choice.fit.samples = static_cast<int>(profile.size());
  choice.model = materialize(choice.fit.kind, choice.fit.params);
  return choice;
}

}  // namespace moldsched::ingest
