#include "moldsched/ingest/catalog.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "moldsched/ingest/dot.hpp"
#include "moldsched/ingest/json_import.hpp"

#ifndef MOLDSCHED_DATA_DIR
#define MOLDSCHED_DATA_DIR "data"
#endif

namespace moldsched::ingest {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_workloads: cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string csv_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) out += (c == ',' || c == '\n') ? ';' : c;
  return out;
}

}  // namespace

std::string default_workloads_dir() {
  if (const char* env = std::getenv("MOLDSCHED_WORKLOADS_DIR");
      env != nullptr && *env != '\0')
    return env;
  return std::string(MOLDSCHED_DATA_DIR) + "/workloads";
}

std::vector<Workload> load_workloads(const std::string& dir,
                                     const FitOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".dot" || ext == ".json") files.push_back(entry.path());
  }
  if (ec)
    throw std::runtime_error("load_workloads: cannot read directory '" + dir +
                             "': " + ec.message());
  std::sort(files.begin(), files.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.filename().string() < b.filename().string();
            });
  if (files.empty())
    throw std::runtime_error("load_workloads: no *.dot or *.json workloads in '" +
                             dir + "'");

  std::vector<Workload> out;
  out.reserve(files.size());
  for (const auto& path : files) {
    Workload w;
    w.name = path.stem().string();
    w.path = path.string();
    w.format = path.extension() == ".dot" ? "dot" : "json";
    const std::string text = read_file(w.path);
    try {
      w.imported = w.format == "dot" ? parse_dot(text)
                                     : import_taskgraph_json(text);
      Realized r = realize(w.imported, options);
      w.graph = std::move(r.graph);
      w.fit = std::move(r.fit);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(w.path + ": " + e.what());
    }
    w.P = w.imported.default_P > 0 ? w.imported.default_P : 32;
    out.push_back(std::move(w));
  }
  return out;
}

std::vector<Workload> load_bundled_workloads(const FitOptions& options) {
  return load_workloads(default_workloads_dir(), options);
}

std::string fit_quality_csv(const std::vector<Workload>& workloads) {
  std::string csv =
      "instance,task,name,source,kind,w,d,c,pbar,rmse,max_rel_err,samples\n";
  for (const auto& w : workloads) {
    for (std::size_t i = 0; i < w.fit.tasks.size(); ++i) {
      const TaskFit& t = w.fit.tasks[i];
      const bool parametric = t.kind != model::ModelKind::kArbitrary;
      csv += csv_escape(w.name);
      csv += ',' + std::to_string(i);
      csv += ',' + csv_escape(t.name);
      csv += ',' + t.source;
      csv += ',' + model::to_string(t.kind);
      csv += ',' + (parametric ? format_number(t.params.w) : std::string());
      csv += ',' + (parametric ? format_number(t.params.d) : std::string());
      csv += ',' + (parametric ? format_number(t.params.c) : std::string());
      csv += ',';
      if (parametric)
        csv += t.params.pbar == model::GeneralParams::kUnboundedParallelism
                   ? "inf"
                   : std::to_string(t.params.pbar);
      csv += ',' + format_number(t.rmse);
      csv += ',' + format_number(t.max_relative_error);
      csv += ',' + std::to_string(t.samples);
      csv += '\n';
    }
  }
  return csv;
}

}  // namespace moldsched::ingest
