// Workload ingestion: the importer-facing graph representation shared
// by the DOT and JSON front ends, semantic validation, and realization
// into a schedulable graph::TaskGraph via the model-selection layer.
//
// Both parsers produce an ImportedGraph whose tasks carry exactly one
// of three model specifications — explicit Eq. (1) parameters, a raw
// t(p) table, or a measured {procs -> time} profile — together with the
// source position of every task and edge, so semantic errors discovered
// after parsing (cycles, missing models) still point at a precise line
// and column in the input file.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/ingest/fit_select.hpp"
#include "moldsched/model/general_model.hpp"

namespace moldsched::ingest {

/// 1-based source position; line 0 means "unknown" (hand-built graphs).
struct SourcePos {
  std::size_t offset = 0;
  std::size_t line = 0;
  std::size_t column = 0;
};

/// " at byte N (line L, column C)" in the io::parse_json style, or ""
/// for unknown positions.
[[nodiscard]] std::string at_position(const SourcePos& pos);

/// Explicit Eq. (1) parameters as declared in the input file.
struct ExplicitParams {
  model::ModelKind kind = model::ModelKind::kGeneral;
  model::GeneralParams params;
};

struct ImportedTask {
  std::string name;
  std::optional<ExplicitParams> params;          ///< "params" source
  std::vector<double> times;                     ///< "times" source
  std::vector<std::pair<int, double>> profile;   ///< "fitted"/"fallback"
  SourcePos pos;
};

struct ImportedEdge {
  int from = 0;
  int to = 0;
  SourcePos pos;
};

struct ImportedGraph {
  std::string name;
  std::vector<ImportedTask> tasks;
  std::vector<ImportedEdge> edges;
  int default_P = 0;  ///< platform-size hint from the file; 0 = none
};

/// Importers refuse inputs beyond this many bytes before tokenizing —
/// the ingest surface also reads operator-supplied files, and a runaway
/// input should fail crisply instead of ballooning the process.
inline constexpr std::size_t kDefaultMaxImportBytes = 8u << 20;

/// Semantic validation shared by both front ends: every task carries
/// exactly one model specification, edge endpoints are in range with no
/// self-loops or duplicates, and the edge relation is acyclic. Throws
/// std::invalid_argument prefixed with `who` and suffixed with the
/// offending task's / edge's source position.
void validate(const ImportedGraph& g, const std::string& who);

struct Realized {
  graph::TaskGraph graph;
  FitReport fit;
};

/// Builds the schedulable TaskGraph: explicit parameters materialize as
/// their declared Eq. (1) class, times tables as TableModel, profiles
/// through select_model(). Task ids follow declaration order. Validates
/// first, so malformed ImportedGraphs throw rather than crash.
[[nodiscard]] Realized realize(const ImportedGraph& g,
                               const FitOptions& options = {});

}  // namespace moldsched::ingest
