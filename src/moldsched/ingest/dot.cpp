#include "moldsched/ingest/dot.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

namespace moldsched::ingest {

namespace {

struct Token {
  enum class Kind {
    kLBrace, kRBrace, kLBracket, kRBracket, kEquals, kSemicolon, kComma,
    kArrow, kId, kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  bool quoted = false;
  SourcePos pos;
};

[[noreturn]] void fail(const std::string& what, const SourcePos& pos) {
  throw std::invalid_argument("parse_dot: " + what + at_position(pos));
}

/// Hand-rolled lexer tracking byte/line/column per token. Quoted IDs are
/// unescaped here (\" \\ \n; any other backslash pair passes through
/// verbatim, matching Graphviz's tolerance for label escapes like \l).
class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token next() {
    skip_trivia();
    Token tok;
    tok.pos = pos();
    if (offset_ >= text_.size()) return tok;  // kEnd
    const char c = text_[offset_];
    switch (c) {
      case '{': advance(); tok.kind = Token::Kind::kLBrace; return tok;
      case '}': advance(); tok.kind = Token::Kind::kRBrace; return tok;
      case '[': advance(); tok.kind = Token::Kind::kLBracket; return tok;
      case ']': advance(); tok.kind = Token::Kind::kRBracket; return tok;
      case '=': advance(); tok.kind = Token::Kind::kEquals; return tok;
      case ';': advance(); tok.kind = Token::Kind::kSemicolon; return tok;
      case ',': advance(); tok.kind = Token::Kind::kComma; return tok;
      case '"': return lex_quoted(tok);
      default: break;
    }
    if (c == '-' && offset_ + 1 < text_.size() &&
        text_[offset_ + 1] == '>') {
      advance();
      advance();
      tok.kind = Token::Kind::kArrow;
      return tok;
    }
    if (is_id_char(c)) {
      tok.kind = Token::Kind::kId;
      while (offset_ < text_.size() && is_id_char(text_[offset_])) {
        tok.text += text_[offset_];
        advance();
      }
      return tok;
    }
    fail(std::string("unexpected character '") + c + "'", tok.pos);
  }

 private:
  static bool is_id_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
           c == '.' || c == '+' || c == '-';
  }

  [[nodiscard]] SourcePos pos() const {
    return {offset_, line_, column_};
  }

  void advance() {
    if (text_[offset_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++offset_;
  }

  Token lex_quoted(Token tok) {
    tok.kind = Token::Kind::kId;
    tok.quoted = true;
    advance();  // opening quote
    while (true) {
      if (offset_ >= text_.size()) fail("unterminated string", tok.pos);
      const char c = text_[offset_];
      advance();
      if (c == '"') return tok;
      if (c != '\\') {
        tok.text += c;
        continue;
      }
      if (offset_ >= text_.size()) fail("unterminated escape", tok.pos);
      const char esc = text_[offset_];
      advance();
      switch (esc) {
        case '"': tok.text += '"'; break;
        case '\\': tok.text += '\\'; break;
        case 'n': tok.text += '\n'; break;
        default:
          tok.text += '\\';
          tok.text += esc;
      }
    }
  }

  void skip_trivia() {
    while (offset_ < text_.size()) {
      const char c = text_[offset_];
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
        continue;
      }
      if (c == '#') {
        while (offset_ < text_.size() && text_[offset_] != '\n') advance();
        continue;
      }
      if (c == '/' && offset_ + 1 < text_.size()) {
        if (text_[offset_ + 1] == '/') {
          while (offset_ < text_.size() && text_[offset_] != '\n') advance();
          continue;
        }
        if (text_[offset_ + 1] == '*') {
          const SourcePos start = pos();
          advance();
          advance();
          while (true) {
            if (offset_ >= text_.size())
              fail("unterminated /* comment", start);
            if (text_[offset_] == '*' && offset_ + 1 < text_.size() &&
                text_[offset_ + 1] == '/') {
              advance();
              advance();
              break;
            }
            advance();
          }
          continue;
        }
      }
      return;
    }
  }

  const std::string& text_;
  std::size_t offset_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

double parse_double_attr(const Token& value, const std::string& key) {
  const char* begin = value.text.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end != begin + value.text.size() || value.text.empty() ||
      !std::isfinite(v))
    fail("attribute '" + key + "' is not a finite number", value.pos);
  return v;
}

int parse_int_attr(const Token& value, const std::string& key) {
  const double v = parse_double_attr(value, key);
  if (v != std::floor(v) || v < -2147483648.0 || v > 2147483647.0)
    fail("attribute '" + key + "' is not a 32-bit integer", value.pos);
  return static_cast<int>(v);
}

std::vector<double> parse_times_attr(const Token& value) {
  std::vector<double> out;
  std::size_t start = 0;
  const std::string& s = value.text;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string item =
        s.substr(start, comma == std::string::npos ? comma : comma - start);
    const char* begin = item.c_str();
    char* end = nullptr;
    const double t = std::strtod(begin, &end);
    if (item.empty() || end != begin + item.size() || !std::isfinite(t) ||
        !(t > 0.0))
      fail("times entries must be positive finite numbers", value.pos);
    out.push_back(t);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) fail("times attribute is empty", value.pos);
  return out;
}

std::vector<std::pair<int, double>> parse_profile_attr(const Token& value) {
  std::vector<std::pair<int, double>> out;
  std::size_t start = 0;
  const std::string& s = value.text;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string item =
        s.substr(start, comma == std::string::npos ? comma : comma - start);
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos)
      fail("profile entries must be 'procs:time' pairs", value.pos);
    const std::string p_str = item.substr(0, colon);
    const std::string t_str = item.substr(colon + 1);
    char* end = nullptr;
    const long p = std::strtol(p_str.c_str(), &end, 10);
    if (p_str.empty() || end != p_str.c_str() + p_str.size() || p < 1)
      fail("profile allocation must be an integer >= 1", value.pos);
    const double t = std::strtod(t_str.c_str(), &end);
    if (t_str.empty() || end != t_str.c_str() + t_str.size() ||
        !std::isfinite(t) || !(t > 0.0))
      fail("profile times must be positive finite numbers", value.pos);
    if (!out.empty() && static_cast<int>(p) <= out.back().first)
      fail("profile allocations must be strictly increasing", value.pos);
    out.emplace_back(static_cast<int>(p), t);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) fail("profile attribute is empty", value.pos);
  return out;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) { consume(); }

  ImportedGraph parse() {
    expect_keyword("digraph");
    if (current_.kind == Token::Kind::kId) {
      graph_.name = current_.text;
      consume();
    }
    expect(Token::Kind::kLBrace, "'{'");
    while (current_.kind != Token::Kind::kRBrace) {
      if (current_.kind == Token::Kind::kEnd)
        fail("unexpected end of input (unterminated digraph)", current_.pos);
      statement();
    }
    consume();  // '}'
    if (current_.kind != Token::Kind::kEnd)
      fail("trailing characters after digraph", current_.pos);
    validate(graph_, "parse_dot");
    return std::move(graph_);
  }

 private:
  void consume() { current_ = lexer_.next(); }

  void expect(Token::Kind kind, const char* what) {
    if (current_.kind != kind)
      fail(std::string("expected ") + what, current_.pos);
    consume();
  }

  void expect_keyword(const char* word) {
    if (current_.kind != Token::Kind::kId || current_.quoted ||
        current_.text != word)
      fail(std::string("expected '") + word + "'", current_.pos);
    consume();
  }

  int declare_node(const Token& id) {
    const auto it = node_ids_.find(id.text);
    if (it != node_ids_.end()) return it->second;
    const int idx = static_cast<int>(graph_.tasks.size());
    node_ids_.emplace(id.text, idx);
    ImportedTask task;
    task.name = id.text;
    task.pos = id.pos;
    graph_.tasks.push_back(std::move(task));
    return idx;
  }

  /// Parses one [key=value, ...] list; returns the pairs in order.
  std::vector<std::pair<Token, Token>> attr_list() {
    expect(Token::Kind::kLBracket, "'['");
    std::vector<std::pair<Token, Token>> attrs;
    while (current_.kind != Token::Kind::kRBracket) {
      if (current_.kind != Token::Kind::kId)
        fail("expected attribute name or ']'", current_.pos);
      Token key = current_;
      consume();
      expect(Token::Kind::kEquals, "'='");
      if (current_.kind != Token::Kind::kId)
        fail("expected attribute value", current_.pos);
      Token value = current_;
      consume();
      attrs.emplace_back(std::move(key), std::move(value));
      if (current_.kind == Token::Kind::kComma ||
          current_.kind == Token::Kind::kSemicolon)
        consume();
    }
    consume();  // ']'
    return attrs;
  }

  void apply_node_attrs(int node,
                        const std::vector<std::pair<Token, Token>>& attrs,
                        const SourcePos& stmt_pos) {
    ImportedTask& task = graph_.tasks[static_cast<std::size_t>(node)];
    if (node_has_attrs_.count(node) != 0)
      fail("duplicate node statement for '" + task.name + "'", stmt_pos);
    node_has_attrs_.insert(node);

    std::optional<Token> model_kind, work;
    model::GeneralParams params;
    bool has_w = false, has_d = false, has_c = false;
    for (const auto& [key, value] : attrs) {
      const std::string& k = key.text;
      if (k == "name") {
        task.name = value.text;
      } else if (k == "model") {
        model_kind = value;
      } else if (k == "w") {
        params.w = parse_double_attr(value, k);
        has_w = true;
      } else if (k == "d") {
        params.d = parse_double_attr(value, k);
        has_d = true;
      } else if (k == "c") {
        params.c = parse_double_attr(value, k);
        has_c = true;
      } else if (k == "pbar") {
        params.pbar = parse_int_attr(value, k);
      } else if (k == "work") {
        work = value;
      } else if (k == "times") {
        task.times = parse_times_attr(value);
      } else if (k == "profile") {
        task.profile = parse_profile_attr(value);
      }
      // Anything else (label, shape, color, ...) is presentation-only.
    }

    if (!task.times.empty() || !task.profile.empty()) {
      if (model_kind.has_value() || work.has_value() || has_w || has_d ||
          has_c)
        fail("node '" + task.name +
                 "' mixes a times/profile table with Eq. (1) parameters",
             stmt_pos);
      return;
    }
    if (model_kind.has_value()) {
      const std::string& kind = model_kind->text;
      ExplicitParams ep;
      ep.params = params;
      if (!has_w)
        fail("model '" + kind + "' needs a 'w' attribute", model_kind->pos);
      if (kind == "roofline") {
        ep.kind = model::ModelKind::kRoofline;
      } else if (kind == "amdahl") {
        if (!has_d)
          fail("model 'amdahl' needs a 'd' attribute", model_kind->pos);
        ep.kind = model::ModelKind::kAmdahl;
      } else if (kind == "communication") {
        if (!has_c)
          fail("model 'communication' needs a 'c' attribute",
               model_kind->pos);
        ep.kind = model::ModelKind::kCommunication;
      } else if (kind == "general") {
        ep.kind = model::ModelKind::kGeneral;
      } else {
        fail("unknown model kind '" + kind + "'", model_kind->pos);
      }
      task.params = ep;
      return;
    }
    if (work.has_value()) {
      ExplicitParams ep;
      ep.kind = model::ModelKind::kRoofline;
      ep.params.w = parse_double_attr(*work, "work");
      ep.params.pbar = params.pbar;
      task.params = ep;
      return;
    }
    // No model attributes: validate() reports the task if nothing else
    // (another statement cannot — duplicates are rejected) supplies one.
  }

  void statement() {
    if (current_.kind != Token::Kind::kId)
      fail("expected statement", current_.pos);
    // Default-attribute statements are skipped wholesale: our exporter
    // writes `node [shape=box]`, and foreign files use all three.
    if (!current_.quoted &&
        (current_.text == "graph" || current_.text == "node" ||
         current_.text == "edge")) {
      consume();
      (void)attr_list();
      if (current_.kind == Token::Kind::kSemicolon) consume();
      return;
    }
    if (!current_.quoted && current_.text == "subgraph")
      fail("subgraphs are not supported", current_.pos);

    Token id = current_;
    consume();
    if (current_.kind == Token::Kind::kEquals) {
      // Graph-level assignment: `rankdir=TB;`. `P` is the platform hint.
      consume();
      if (current_.kind != Token::Kind::kId)
        fail("expected attribute value", current_.pos);
      if (id.text == "P" || id.text == "procs")
        graph_.default_P = parse_int_attr(current_, id.text);
      consume();
      if (current_.kind == Token::Kind::kSemicolon) consume();
      return;
    }
    if (current_.kind == Token::Kind::kArrow) {
      int from = declare_node(id);
      while (current_.kind == Token::Kind::kArrow) {
        consume();
        if (current_.kind != Token::Kind::kId)
          fail("expected node id after '->'", current_.pos);
        const Token to_tok = current_;
        consume();
        const int to = declare_node(to_tok);
        graph_.edges.push_back({from, to, to_tok.pos});
        from = to;
      }
      if (current_.kind == Token::Kind::kLBracket)
        (void)attr_list();  // edge attributes are presentation-only
      if (current_.kind == Token::Kind::kSemicolon) consume();
      return;
    }
    // Node statement.
    const int node = declare_node(id);
    if (current_.kind == Token::Kind::kLBracket)
      apply_node_attrs(node, attr_list(), id.pos);
    if (current_.kind == Token::Kind::kSemicolon) consume();
  }

  Lexer lexer_;
  Token current_;
  ImportedGraph graph_;
  std::map<std::string, int> node_ids_;
  std::set<int> node_has_attrs_;
};

}  // namespace

ImportedGraph parse_dot(const std::string& text, std::size_t max_bytes) {
  if (text.size() > max_bytes) {
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < max_bytes; ++i) {
      if (text[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    fail("input of " + std::to_string(text.size()) +
             " bytes exceeds the " + std::to_string(max_bytes) +
             "-byte limit",
         SourcePos{max_bytes, line, column});
  }
  return Parser(text).parse();
}

}  // namespace moldsched::ingest
