// Strict Graphviz DOT importer for task graphs (the inverse of
// io::to_dot, which until this subsystem existed was export-only).
//
// Accepted grammar — a deliberate, strictly-diagnosed subset of DOT:
//
//   graph     := 'digraph' [ID] '{' stmt* '}'
//   stmt      := attr_stmt | assign | edge_stmt | node_stmt
//   attr_stmt := ('graph' | 'node' | 'edge') attr_list [';']
//   assign    := ID '=' ID [';']               (graph-level attribute)
//   node_stmt := ID [attr_list] [';']
//   edge_stmt := ID ('->' ID)+ [attr_list] [';']
//   attr_list := '[' (ID '=' ID [',' | ';'])* ']'
//
// IDs are bare identifiers/numerals or double-quoted strings with the
// escapes \", backslash-backslash and \n; both comment styles and #
// line comments are skipped.
// Node attributes recognized for scheduling (anything else — label,
// shape, color... — is ignored, so real Graphviz files load):
//
//   name="..."            display name (defaults to the node id)
//   model="roofline|communication|amdahl|general"
//   w=, d=, c=, pbar=     Eq. (1) parameters for `model`
//   work=W                shorthand for model="roofline" w=W
//   times="t1,t2,..."     explicit t(p) table (TableModel)
//   profile="p:t,p:t,..." measured samples, strictly increasing p,
//                         handed to the model-selection fitter
//
// Every diagnostic is "parse_dot: <what> at byte N (line L, column C)"
// in the io::parse_json style.
#pragma once

#include <string>

#include "moldsched/ingest/import.hpp"

namespace moldsched::ingest {

/// Parses one DOT digraph. Throws std::invalid_argument with a precise
/// source position on syntax errors, duplicate node statements,
/// duplicate/self-loop edges, cycles, non-monotonic profiles, or inputs
/// larger than `max_bytes`.
[[nodiscard]] ImportedGraph parse_dot(
    const std::string& text,
    std::size_t max_bytes = kDefaultMaxImportBytes);

}  // namespace moldsched::ingest
