#include "moldsched/ingest/json_import.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "moldsched/io/json.hpp"

namespace moldsched::ingest {

namespace {

/// Semantic-error context: turns a JsonValue's byte offset back into a
/// line/column against the source text, so schema violations are as
/// precisely located as parse_json's own syntax errors.
class Doc {
 public:
  explicit Doc(const std::string& text) : text_(text) {}

  [[nodiscard]] SourcePos pos_of(const io::JsonValue& v) const {
    const io::LineColumn lc = io::line_column(text_, v.offset);
    return {v.offset, lc.line, lc.column};
  }

  [[noreturn]] void fail(const std::string& what,
                         const io::JsonValue& v) const {
    throw std::invalid_argument("import_taskgraph: " + what +
                                at_position(pos_of(v)));
  }

  int require_int(const io::JsonValue& v, const std::string& what) const {
    if (!v.is_number() || v.number != std::floor(v.number) ||
        v.number < -2147483648.0 || v.number > 2147483647.0)
      fail(what + " must be a 32-bit integer", v);
    return static_cast<int>(v.number);
  }

  double require_positive(const io::JsonValue& v,
                          const std::string& what) const {
    if (!v.is_number() || !(v.number > 0.0) || !std::isfinite(v.number))
      fail(what + " must be a positive finite number", v);
    return v.number;
  }

  double number_or(const io::JsonValue& task, const char* key,
                   double fallback) const {
    const auto* f = task.find(key);
    if (f == nullptr) return fallback;
    if (!f->is_number() || !std::isfinite(f->number) || f->number < 0.0)
      fail(std::string("'") + key + "' must be a non-negative number", *f);
    return f->number;
  }

 private:
  const std::string& text_;
};

ExplicitParams parse_model_object(const Doc& doc, const io::JsonValue& m) {
  if (!m.is_object()) doc.fail("'model' must be an object", m);
  const auto* kind = m.find("kind");
  if (kind == nullptr || !kind->is_string())
    doc.fail("'model' needs a string 'kind'", m);
  ExplicitParams ep;
  if (kind->string == "roofline") {
    ep.kind = model::ModelKind::kRoofline;
  } else if (kind->string == "amdahl") {
    ep.kind = model::ModelKind::kAmdahl;
  } else if (kind->string == "communication") {
    ep.kind = model::ModelKind::kCommunication;
  } else if (kind->string == "general") {
    ep.kind = model::ModelKind::kGeneral;
  } else {
    doc.fail("unknown model kind '" + kind->string + "'", *kind);
  }
  const auto* w = m.find("w");
  if (w == nullptr) doc.fail("'model' needs a numeric 'w'", m);
  ep.params.w = doc.require_positive(*w, "'w'");
  ep.params.d = doc.number_or(m, "d", 0.0);
  ep.params.c = doc.number_or(m, "c", 0.0);
  if (const auto* pbar = m.find("pbar")) {
    ep.params.pbar = doc.require_int(*pbar, "'pbar'");
    if (ep.params.pbar < 1) doc.fail("'pbar' must be >= 1", *pbar);
  }
  if (ep.kind == model::ModelKind::kAmdahl && !(ep.params.d > 0.0))
    doc.fail("amdahl model needs d > 0", m);
  if (ep.kind == model::ModelKind::kCommunication && !(ep.params.c > 0.0))
    doc.fail("communication model needs c > 0", m);
  return ep;
}

}  // namespace

ImportedGraph import_taskgraph_json(const std::string& text,
                                    std::size_t max_bytes) {
  if (text.size() > max_bytes) {
    const io::LineColumn lc = io::line_column(text, max_bytes);
    throw std::invalid_argument(
        "import_taskgraph: input of " + std::to_string(text.size()) +
        " bytes exceeds the " + std::to_string(max_bytes) + "-byte limit" +
        at_position({max_bytes, lc.line, lc.column}));
  }
  const io::JsonValue root = io::parse_json(text);
  const Doc doc(text);
  if (!root.is_object()) doc.fail("document must be an object", root);
  const auto* format = root.find("format");
  if (format == nullptr || !format->is_string())
    doc.fail("missing string 'format'", root);
  if (format->string != kTaskGraphFormat)
    doc.fail("unsupported format '" + format->string + "' (expected '" +
                 kTaskGraphFormat + "')",
             *format);

  ImportedGraph g;
  if (const auto* name = root.find("name")) {
    if (!name->is_string()) doc.fail("'name' must be a string", *name);
    g.name = name->string;
  }
  if (const auto* P = root.find("P")) {
    g.default_P = doc.require_int(*P, "'P'");
    if (g.default_P < 1) doc.fail("'P' must be >= 1", *P);
  }

  const auto* tasks = root.find("tasks");
  if (tasks == nullptr || !tasks->is_array())
    doc.fail("missing 'tasks' array", root);
  int expected_id = 0;
  for (const auto& t : tasks->array) {
    if (!t.is_object()) doc.fail("task entries must be objects", t);
    const auto* id = t.find("id");
    if (id == nullptr) doc.fail("task without 'id'", t);
    if (doc.require_int(*id, "'id'") != expected_id)
      doc.fail("task ids must be dense and ascending (expected " +
                   std::to_string(expected_id) + ")",
               *id);
    ++expected_id;

    ImportedTask task;
    task.pos = doc.pos_of(t);
    if (const auto* name = t.find("name")) {
      if (!name->is_string()) doc.fail("task 'name' must be a string", *name);
      task.name = name->string;
    } else {
      task.name = "task" + std::to_string(expected_id - 1);
    }

    const auto* model_v = t.find("model");
    const auto* times_v = t.find("times");
    const auto* profile_v = t.find("profile");
    const int specs = (model_v != nullptr ? 1 : 0) +
                      (times_v != nullptr ? 1 : 0) +
                      (profile_v != nullptr ? 1 : 0);
    if (specs == 0)
      doc.fail("task '" + task.name +
                   "' needs one of 'model', 'times' or 'profile'",
               t);
    if (specs > 1)
      doc.fail("task '" + task.name +
                   "' has more than one model specification",
               t);

    if (model_v != nullptr) {
      task.params = parse_model_object(doc, *model_v);
    } else if (times_v != nullptr) {
      if (!times_v->is_array() || times_v->array.empty())
        doc.fail("'times' must be a non-empty array", *times_v);
      for (const auto& e : times_v->array)
        task.times.push_back(doc.require_positive(e, "'times' entry"));
    } else {
      if (!profile_v->is_array() || profile_v->array.empty())
        doc.fail("'profile' must be a non-empty array", *profile_v);
      for (const auto& e : profile_v->array) {
        if (!e.is_array() || e.array.size() != 2)
          doc.fail("profile entries must be [procs, time] pairs", e);
        const int p = doc.require_int(e.array[0], "profile procs");
        if (p < 1) doc.fail("profile procs must be >= 1", e.array[0]);
        const double time = doc.require_positive(e.array[1], "profile time");
        if (!task.profile.empty() && p <= task.profile.back().first)
          doc.fail("profile allocations must be strictly increasing",
                   e.array[0]);
        task.profile.emplace_back(p, time);
      }
    }
    g.tasks.push_back(std::move(task));
  }

  if (const auto* edges = root.find("edges")) {
    if (!edges->is_array()) doc.fail("'edges' must be an array", *edges);
    for (const auto& e : edges->array) {
      if (!e.is_array() || e.array.size() != 2)
        doc.fail("edges must be [from, to] pairs", e);
      ImportedEdge edge;
      edge.from = doc.require_int(e.array[0], "edge endpoint");
      edge.to = doc.require_int(e.array[1], "edge endpoint");
      edge.pos = doc.pos_of(e);
      if (edge.from < 0 || edge.from >= expected_id || edge.to < 0 ||
          edge.to >= expected_id)
        doc.fail("edge endpoint out of range", e);
      g.edges.push_back(edge);
    }
  }

  validate(g, "import_taskgraph");
  return g;
}

}  // namespace moldsched::ingest
