// JSON task-graph importer: the moldsched-taskgraph-v1 schema.
//
//   {
//     "format": "moldsched-taskgraph-v1",
//     "name": "montage-m101",          // optional
//     "P": 64,                          // optional platform hint
//     "tasks": [
//       {"id": 0, "name": "mProject",   // name optional
//        "model": {"kind": "amdahl", "w": 100, "d": 2}},
//       {"id": 1, "profile": [[1, 40.0], [2, 21.0], [4, 11.5]]},
//       {"id": 2, "times": [8.0, 4.5, 3.2]}
//     ],
//     "edges": [[0, 1], [1, 2]]
//   }
//
// Task ids must be dense and ascending (the svc::decode_graph
// convention). Each task carries exactly one of "model" (explicit
// Eq. (1) parameters: kind + w, optional d/c/pbar), "times" (raw t(p)
// table -> TableModel), or "profile" ([procs, time] pairs with strictly
// increasing procs -> the model-selection fitter). Syntax errors come
// from io::parse_json with byte/line/column; semantic errors reuse the
// offending JsonValue's source offset for the same precision.
#pragma once

#include <string>

#include "moldsched/ingest/import.hpp"

namespace moldsched::ingest {

inline constexpr const char* kTaskGraphFormat = "moldsched-taskgraph-v1";

/// Parses one moldsched-taskgraph-v1 document. Throws
/// std::invalid_argument with a precise source position on malformed
/// JSON, schema violations, duplicate/non-dense ids, non-monotonic
/// profiles, bad edges, cycles, or inputs larger than `max_bytes`.
[[nodiscard]] ImportedGraph import_taskgraph_json(
    const std::string& text,
    std::size_t max_bytes = kDefaultMaxImportBytes);

}  // namespace moldsched::ingest
