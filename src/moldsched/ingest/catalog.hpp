// The bundled workload catalog: every *.dot / *.json file under a
// directory (by default data/workloads/ in the source tree), imported,
// model-fitted and realized into schedulable graphs. This is the shared
// instance source for `moldsched_run --suite ingest`, the "ingested"
// corpus family of the check:: differential harness, and the
// `bench_serve --soak` day-in-the-life replay.
#pragma once

#include <string>
#include <vector>

#include "moldsched/ingest/import.hpp"

namespace moldsched::ingest {

struct Workload {
  std::string name;        ///< file stem, unique within the catalog
  std::string path;
  std::string format;      ///< "dot" or "json"
  ImportedGraph imported;
  graph::TaskGraph graph;  ///< realized, ids in declaration order
  FitReport fit;
  int P = 0;               ///< file's platform hint, or 32 when absent
};

/// $MOLDSCHED_WORKLOADS_DIR when set, else <source>/data/workloads
/// (baked in at build time). The env override is what lets installed
/// binaries and CI soak jobs point at a relocated catalog.
[[nodiscard]] std::string default_workloads_dir();

/// Loads every *.dot / *.json file in `dir`, sorted by filename so the
/// catalog order — and everything derived from it (fit CSVs, corpus
/// draws, soak traffic) — is deterministic. Throws std::runtime_error
/// when the directory is missing or holds no workload files;
/// std::invalid_argument (with file path prepended) when any file fails
/// to import.
[[nodiscard]] std::vector<Workload> load_workloads(
    const std::string& dir, const FitOptions& options = {});

/// load_workloads(default_workloads_dir()).
[[nodiscard]] std::vector<Workload> load_bundled_workloads(
    const FitOptions& options = {});

/// Deterministic fit-quality CSV over the catalog: one row per task with
/// the chosen model kind, parameters at 17 significant digits, RMSE and
/// max relative error — bit-identical across runs by construction.
/// Header: instance,task,name,source,kind,w,d,c,pbar,rmse,max_rel_err,
/// samples.
[[nodiscard]] std::string fit_quality_csv(
    const std::vector<Workload>& workloads);

}  // namespace moldsched::ingest
