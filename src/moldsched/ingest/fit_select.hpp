// Per-task speedup-model selection for imported workloads.
//
// An external workload describes each task either by explicit Eq. (1)
// parameters, by a raw t(p) table, or by a measured {procs -> time}
// profile. For profiles this layer extends model::fit_model_family into
// model *selection*: fit every Eq. (1) candidate family, pick by RMSE
// with a tolerance that prefers simpler kinds (fewer parameters), and
// fall back to an interpolating TableModel (model::table_from_samples)
// when even the best parametric fit misses the data. Everything here is
// deterministic, and the resulting report renders parameters at 17
// significant digits so two runs over the same catalog are bit-exact.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "moldsched/model/fit.hpp"
#include "moldsched/model/general_model.hpp"
#include "moldsched/model/speedup_model.hpp"

namespace moldsched::ingest {

struct FitOptions {
  /// A simpler family (fewer free parameters) beats a richer one whose
  /// RMSE is lower when the simpler RMSE is within this relative slack
  /// of the best candidate: roofline < amdahl = communication < general.
  double prefer_simpler_tolerance = 0.05;
  /// Fall back to the TableModel when the chosen parametric fit's
  /// maximum relative error over the samples exceeds this.
  double max_relative_error = 0.15;
  /// Table length for the TableModel fallback (interpolated 1..table_P).
  int table_P = 64;
};

/// How one task's model was produced. `source` is one of:
///   "params"   — explicit Eq. (1) parameters from the file
///   "times"    — explicit t(p) table from the file
///   "fitted"   — parametric fit selected from a measured profile
///   "fallback" — TableModel because no Eq. (1) family fit the profile
struct TaskFit {
  std::string name;
  std::string source;
  model::ModelKind kind = model::ModelKind::kGeneral;
  model::GeneralParams params;  ///< meaningful unless kind == kArbitrary
  double rmse = 0.0;
  double max_relative_error = 0.0;
  int samples = 0;              ///< profile points consumed (0 otherwise)
};

struct FitReport {
  std::vector<TaskFit> tasks;
  [[nodiscard]] int fitted() const;     ///< tasks with source == "fitted"
  [[nodiscard]] int fallbacks() const;  ///< tasks with source == "fallback"
};

struct ModelChoice {
  model::ModelPtr model;
  TaskFit fit;
};

/// Selects a model for one measured profile. Requires a non-empty
/// profile with p >= 1 and positive finite times (the importers enforce
/// strictly increasing p before calling this). Fewer than 3 distinct
/// allocations go straight to the TableModel fallback — the parametric
/// fit is under-determined there.
[[nodiscard]] ModelChoice select_model(
    const std::vector<std::pair<int, double>>& profile,
    const FitOptions& options = {});

/// Concrete model instance for explicit Eq. (1) parameters, using the
/// named special-case classes (Roofline/Communication/Amdahl) when the
/// kind asks for them, so the wire codec preserves the declared kind.
/// Throws std::invalid_argument when the parameters violate the kind's
/// constraints (e.g. amdahl with d = 0) or kind is kArbitrary.
[[nodiscard]] model::ModelPtr materialize(model::ModelKind kind,
                                          const model::GeneralParams& params);

/// The named Eq. (1) kind a fitted parameter vector actually landed in:
/// zero fitted d and c mean roofline, exactly one nonzero means amdahl /
/// communication, both nonzero (or w = 0) mean general.
[[nodiscard]] model::ModelKind classify_params(
    const model::GeneralParams& params);

/// 17-significant-digit rendering shared by the fit-quality CSV and the
/// DOT exporter — the same convention as svc::wire_number, so reports
/// and wire bytes agree on every parameter.
[[nodiscard]] std::string format_number(double v);

}  // namespace moldsched::ingest
