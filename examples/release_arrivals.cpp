// Online scheduling of independent moldable tasks released over time:
// generate (or load) an arrival stream, schedule it with the paper's
// allocator, and compare against baselines and the release-aware lower
// bound.
//
//   ./release_arrivals [--n=100] [--P=32] [--rate=0.2]
//                      [--model=amdahl] [--seed=1]
//                      [--save=/tmp/arrivals.mst] [--load=/tmp/arrivals.mst]
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/analysis/report.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/io/text_format.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/sched/baselines.hpp"
#include "moldsched/sched/release_scheduler.hpp"
#include "moldsched/util/flags.hpp"
#include "moldsched/util/stats.hpp"
#include "moldsched/util/table.hpp"

using namespace moldsched;

namespace {

model::ModelKind parse_kind(const std::string& name) {
  if (name == "roofline") return model::ModelKind::kRoofline;
  if (name == "communication") return model::ModelKind::kCommunication;
  if (name == "amdahl") return model::ModelKind::kAmdahl;
  if (name == "general") return model::ModelKind::kGeneral;
  throw std::invalid_argument("unknown model: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int P = static_cast<int>(flags.get_int("P", 32));

  std::vector<sched::ReleasedTask> tasks;
  const auto load_path = flags.get_string("load", "");
  if (!load_path.empty()) {
    std::ifstream in(load_path);
    if (!in) throw std::runtime_error("cannot open " + load_path);
    std::stringstream ss;
    ss << in.rdbuf();
    tasks = io::read_released_tasks_text(ss.str());
    std::cout << "loaded " << tasks.size() << " tasks from " << load_path
              << "\n\n";
  } else {
    const int n = static_cast<int>(flags.get_int("n", 100));
    const double rate = flags.get_double("rate", 0.2);
    const auto kind = parse_kind(flags.get_string("model", "amdahl"));
    util::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
    const model::ModelSampler sampler(kind);
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
      if (rate > 0.0) t += rng.exponential(rate);
      tasks.push_back(
          {sampler.sample(rng, P), t, "task" + std::to_string(i)});
    }
    std::cout << "generated " << n << " " << model::to_string(kind)
              << " tasks, Poisson arrivals at rate " << rate << "\n\n";
  }

  const auto save_path = flags.get_string("save", "");
  if (!save_path.empty()) {
    analysis::write_file(save_path, io::write_released_tasks_text(tasks));
    std::cout << "saved the arrival stream to " << save_path << "\n\n";
  }

  const double lb = sched::release_makespan_lower_bound(tasks, P);
  const double mu = flags.get_double(
      "mu", analysis::optimal_mu(model::ModelKind::kGeneral));

  util::Table t({"scheduler", "makespan", "T/LB", "mean wait", "max wait"});
  auto report = [&](const std::string& name, const core::Allocator& alloc) {
    const auto result = sched::OnlineReleaseScheduler(tasks, P, alloc).run();
    util::Accumulator wait;
    for (const double w : result.wait_time) wait.add(w);
    t.new_row()
        .cell(name)
        .cell(result.makespan, 2)
        .cell(result.makespan / lb, 3)
        .cell(wait.mean(), 2)
        .cell(wait.max(), 2);
  };
  const core::LpaAllocator lpa(mu);
  const sched::MinTimeAllocator greedy;
  const sched::SequentialAllocator seq;
  const sched::SqrtAllocator sqrtp;
  report("lpa(mu=" + util::format_double(mu, 3) + ")", lpa);
  report("min-time", greedy);
  report("sequential", seq);
  report("sqrt-p", sqrtp);

  t.print(std::cout, "P = " + std::to_string(P) +
                         ", release-aware LB = " + util::format_double(lb, 2));
  return 0;
}
