// Compare the paper's online algorithm against the baseline suite and
// the offline tradeoff scheduler on a realistic workflow.
//
//   ./workflow_comparison [--workflow=cholesky|lu|fft|montage|wavefront]
//                         [--model=roofline|communication|amdahl|general]
//                         [--P=32] [--size=8]
#include <iostream>
#include <stdexcept>
#include <string>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/experiment.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/analysis/report.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/sched/offline.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/util/flags.hpp"

using namespace moldsched;

namespace {

model::ModelKind parse_kind(const std::string& name) {
  if (name == "roofline") return model::ModelKind::kRoofline;
  if (name == "communication") return model::ModelKind::kCommunication;
  if (name == "amdahl") return model::ModelKind::kAmdahl;
  if (name == "general") return model::ModelKind::kGeneral;
  throw std::invalid_argument("unknown model: " + name);
}

graph::TaskGraph build_workflow(const std::string& name, int size,
                                const graph::WorkflowModelConfig& cfg) {
  if (name == "cholesky") return graph::cholesky(size, cfg);
  if (name == "lu") return graph::lu(size, cfg);
  if (name == "fft") return graph::fft(std::max(1, size / 2), cfg);
  if (name == "montage") return graph::montage(4 * size, cfg);
  if (name == "wavefront") return graph::wavefront(size, size, cfg);
  throw std::invalid_argument("unknown workflow: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto workflow = flags.get_string("workflow", "cholesky");
  const auto kind = parse_kind(flags.get_string("model", "amdahl"));
  const int P = static_cast<int>(flags.get_int("P", 32));
  const int size = static_cast<int>(flags.get_int("size", 8));

  graph::WorkflowModelConfig cfg;
  cfg.kind = kind;
  const auto g = build_workflow(workflow, size, cfg);

  std::cout << "workflow '" << workflow << "' (" << g.num_tasks()
            << " tasks, " << g.num_edges() << " edges), model "
            << model::to_string(kind) << ", P = " << P << "\n\n";

  const double mu = analysis::optimal_mu(kind);
  std::vector<analysis::GraphCase> cases;
  cases.push_back({workflow, g});

  const auto rows = analysis::compare_suite(cases, P, sched::standard_suite(mu));
  analysis::suite_table(rows).print(std::cout, "online schedulers");
  std::cout << '\n';

  const auto offline = sched::OfflineTradeoffScheduler(g, P).run();
  const double lb = analysis::optimal_makespan_lower_bound(g, P);
  std::cout << "offline tradeoff scheduler: makespan = " << offline.makespan
            << " (T/LB = " << offline.makespan / lb << ")\n"
            << "Lemma 2 lower bound       : " << lb << '\n'
            << "Theorem bound for "
            << model::to_string(kind) << " : "
            << analysis::optimal_ratio(kind).upper_bound << '\n';
  return 0;
}
