// Explore the Section 4.4 adversarial instances: build one, run the
// paper's algorithm on it, and watch the competitive ratio approach the
// theorem's lower-bound limit as the instance grows.
//
//   ./adversary_explorer [--model=roofline|communication|amdahl|general]
//                        [--sizes=small|large]
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/adversary.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/flags.hpp"
#include "moldsched/util/table.hpp"

using namespace moldsched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto model_name = flags.get_string("model", "communication");
  const bool large = flags.get_string("sizes", "small") == "large";

  model::ModelKind kind;
  if (model_name == "roofline")
    kind = model::ModelKind::kRoofline;
  else if (model_name == "communication")
    kind = model::ModelKind::kCommunication;
  else if (model_name == "amdahl")
    kind = model::ModelKind::kAmdahl;
  else if (model_name == "general")
    kind = model::ModelKind::kGeneral;
  else
    throw std::invalid_argument("unknown model: " + model_name);

  const double mu = analysis::optimal_mu(kind);
  const core::LpaAllocator alloc(mu);

  std::vector<graph::AdversaryInstance> instances;
  if (kind == model::ModelKind::kRoofline) {
    for (const int P : large ? std::vector<int>{256, 2048, 16384}
                             : std::vector<int>{16, 64, 256})
      instances.push_back(graph::roofline_adversary(P, mu));
  } else if (kind == model::ModelKind::kCommunication) {
    for (const int P : large ? std::vector<int>{128, 384, 768}
                             : std::vector<int>{16, 48, 128})
      instances.push_back(graph::communication_adversary(P, mu));
  } else if (kind == model::ModelKind::kAmdahl) {
    for (const int K : large ? std::vector<int>{16, 32, 48}
                             : std::vector<int>{6, 10, 16})
      instances.push_back(graph::amdahl_adversary(K, mu));
  } else {
    for (const int K : large ? std::vector<int>{16, 32, 48}
                             : std::vector<int>{6, 10, 16})
      instances.push_back(graph::general_adversary(K, mu));
  }

  std::cout << instances.front().description << "\nmu = " << mu
            << ", delta = " << instances.front().delta << "\n\n";

  util::Table t({"P", "tasks", "alloc A/B/C", "T (online)", "T_alt",
                 "ratio", "limit", "Thm bound"});
  for (const auto& inst : instances) {
    const auto result = core::schedule_online(inst.graph, inst.P, alloc);
    sim::expect_valid_schedule(inst.graph, result.trace, inst.P);
    t.new_row()
        .cell(inst.P)
        .cell(inst.graph.num_tasks())
        .cell(std::to_string(inst.expected_alloc_a) + "/" +
              std::to_string(inst.expected_alloc_b) + "/" +
              std::to_string(inst.expected_alloc_c))
        .cell(result.makespan, 3)
        .cell(inst.t_opt_upper, 3)
        .cell(result.makespan / inst.t_opt_upper, 3)
        .cell(inst.ratio_limit, 3)
        .cell(analysis::optimal_ratio(kind).upper_bound, 3);
  }
  t.print(std::cout, "ratio climbs toward the theorem's limit:");
  return 0;
}
