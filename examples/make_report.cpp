// Regenerate the paper-shaped experiment report as a single Markdown
// document.
//
//   ./make_report [--out=results/report.md] [--P=32] [--seed=1234]
//                 [--skip-adversaries]
#include <iostream>

#include "moldsched/analysis/markdown_report.hpp"
#include "moldsched/analysis/report.hpp"
#include "moldsched/util/flags.hpp"

using namespace moldsched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  analysis::ReportConfig config;
  config.P = static_cast<int>(flags.get_int("P", 32));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1234));
  config.include_adversaries = !flags.get_bool("skip-adversaries", false);

  const auto report = analysis::generate_markdown_report(config);
  const auto out = flags.get_string("out", "results/report.md");
  analysis::write_file(out, report);
  std::cout << "wrote experiment report (" << report.size() << " bytes) to "
            << out << '\n';
  return 0;
}
