// Quickstart: build a small moldable task graph by hand, schedule it
// online with the paper's algorithm, and inspect the result.
//
//   ./quickstart [--P=8] [--mu=<auto>]
#include <iostream>
#include <memory>

#include "moldsched/analysis/blame.hpp"
#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/task_graph.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/sim/gantt.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/flags.hpp"

using namespace moldsched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int P = static_cast<int>(flags.get_int("P", 8));

  // A little fork-join pipeline with heterogeneous speedup behaviour:
  //   prepare -> {fft_pass, solve, reduce} -> combine
  graph::TaskGraph g;
  const auto prepare = g.add_task(
      std::make_shared<model::RooflineModel>(24.0, 4), "prepare");
  const auto fft_pass = g.add_task(
      std::make_shared<model::CommunicationModel>(64.0, 0.5), "fft_pass");
  const auto solve = g.add_task(
      std::make_shared<model::AmdahlModel>(48.0, 6.0), "solve");
  const auto reduce = g.add_task(
      std::make_shared<model::RooflineModel>(16.0, 8), "reduce");
  model::GeneralParams combine_params;
  combine_params.w = 30.0;
  combine_params.d = 2.0;
  combine_params.c = 0.25;
  const auto combine = g.add_task(
      std::make_shared<model::GeneralModel>(combine_params), "combine");
  g.add_edge(prepare, fft_pass);
  g.add_edge(prepare, solve);
  g.add_edge(prepare, reduce);
  g.add_edge(fft_pass, combine);
  g.add_edge(solve, combine);
  g.add_edge(reduce, combine);

  // Mixed model families -> use the general-model mu* unless overridden.
  const double mu = flags.get_double(
      "mu", analysis::optimal_mu(model::ModelKind::kGeneral));
  const core::LpaAllocator allocator(mu);

  const auto result = core::schedule_online(g, P, allocator);
  sim::expect_valid_schedule(g, result.trace, P);

  std::cout << "scheduled " << g.num_tasks() << " tasks on P=" << P
            << " with mu=" << mu << "\n\n";
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    std::cout << "  " << g.name(v) << ": allocation "
              << result.allocation[static_cast<std::size_t>(v)]
              << " procs, ready at "
              << result.ready_time[static_cast<std::size_t>(v)] << ", model "
              << g.model_of(v).describe() << '\n';
  }

  const auto bounds = analysis::lower_bounds(g, P);
  std::cout << "\nmakespan        : " << result.makespan
            << "\nlower bound     : " << bounds.lower_bound
            << "  (A_min/P = " << bounds.min_total_area / P
            << ", C_min = " << bounds.min_critical_path << ")"
            << "\nratio vs LB     : " << result.makespan / bounds.lower_bound
            << "\ntheorem bound   : "
            << analysis::optimal_ratio(model::ModelKind::kGeneral).upper_bound
            << "\n\n";

  if (P <= 64) {
    std::cout << sim::render_gantt(result.trace, g, P) << '\n'
              << sim::render_utilization(result.trace, P) << '\n';
  }

  std::cout << "what determined the makespan (blame chain):\n"
            << analysis::format_blame_chain(
                   g, analysis::blame_chain(g, result));
  return 0;
}
