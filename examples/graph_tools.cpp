// Swiss-army CLI for moldsched graph files: generate instances, inspect
// statistics, schedule them and export DOT/JSON/CSV artifacts.
//
//   # generate an instance file
//   ./graph_tools generate --shape=cholesky --size=6 --out=/tmp/chol.msg
//   # inspect it
//   ./graph_tools stats /tmp/chol.msg
//   # schedule it and export everything
//   ./graph_tools schedule /tmp/chol.msg --P=16 --dot=/tmp/chol.dot
//                 [--json=/tmp/chol.json] [--csv=/tmp/trace.csv]
#include <iostream>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/analysis/report.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/graph/stats.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/io/dot.hpp"
#include "moldsched/io/json.hpp"
#include "moldsched/io/svg.hpp"
#include "moldsched/io/text_format.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/flags.hpp"

using namespace moldsched;

namespace {

model::ModelKind parse_kind(const std::string& name) {
  if (name == "roofline") return model::ModelKind::kRoofline;
  if (name == "communication") return model::ModelKind::kCommunication;
  if (name == "amdahl") return model::ModelKind::kAmdahl;
  if (name == "general") return model::ModelKind::kGeneral;
  throw std::invalid_argument("unknown model: " + name);
}

graph::TaskGraph load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return io::read_graph_text(ss.str());
}

int cmd_generate(const util::Flags& flags) {
  const auto shape = flags.get_string("shape", "cholesky");
  const int size = static_cast<int>(flags.get_int("size", 6));
  const auto kind = parse_kind(flags.get_string("model", "amdahl"));
  const auto out = flags.get_string("out", "");
  if (out.empty()) throw std::invalid_argument("generate needs --out=<path>");

  graph::TaskGraph g;
  if (shape == "cholesky" || shape == "lu" || shape == "fft" ||
      shape == "montage" || shape == "wavefront") {
    graph::WorkflowModelConfig cfg;
    cfg.kind = kind;
    if (shape == "cholesky") g = graph::cholesky(size, cfg);
    if (shape == "lu") g = graph::lu(size, cfg);
    if (shape == "fft") g = graph::fft(std::max(1, size / 2), cfg);
    if (shape == "montage") g = graph::montage(4 * size, cfg);
    if (shape == "wavefront") g = graph::wavefront(size, size, cfg);
  } else {
    util::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
    const int P = static_cast<int>(flags.get_int("P", 32));
    const model::ModelSampler sampler(kind);
    const auto provider = graph::sampling_provider(sampler, rng, P);
    if (shape == "layered")
      g = graph::layered_random(size, 2, 2 * size, 0.3, rng, provider);
    else if (shape == "erdos")
      g = graph::erdos_renyi_dag(10 * size, 0.05, rng, provider);
    else if (shape == "forkjoin")
      g = graph::fork_join(size, 2 * size, provider);
    else
      throw std::invalid_argument("unknown shape: " + shape);
  }

  analysis::write_file(out, io::write_graph_text(g));
  std::cout << "wrote " << g.num_tasks() << " tasks to " << out << '\n';
  return 0;
}

int cmd_stats(const util::Flags& flags) {
  if (flags.positional().size() < 2)
    throw std::invalid_argument("stats needs a graph file argument");
  const auto g = load(flags.positional()[1]);
  std::cout << graph::to_string(graph::compute_stats(g)) << '\n';
  for (const int P : {8, 32, 128}) {
    const auto b = analysis::lower_bounds(g, P);
    std::cout << "  P=" << P << ": A_min/P=" << b.min_total_area / P
              << ", C_min=" << b.min_critical_path
              << ", LB=" << b.lower_bound << '\n';
  }
  return 0;
}

int cmd_schedule(const util::Flags& flags) {
  if (flags.positional().size() < 2)
    throw std::invalid_argument("schedule needs a graph file argument");
  const auto g = load(flags.positional()[1]);
  const int P = static_cast<int>(flags.get_int("P", 32));
  const double mu = flags.get_double(
      "mu", analysis::optimal_mu(model::ModelKind::kGeneral));

  const core::LpaAllocator alloc(mu);
  const auto result = core::schedule_online(g, P, alloc);
  sim::expect_valid_schedule(g, result.trace, P);
  const double lb = analysis::optimal_makespan_lower_bound(g, P);
  std::cout << "makespan " << result.makespan << " on P=" << P
            << " (T/LB = " << result.makespan / lb << ")\n";

  const auto dot = flags.get_string("dot", "");
  if (!dot.empty()) {
    analysis::write_file(dot, io::to_dot_with_schedule(g, result.trace));
    std::cout << "wrote DOT to " << dot << '\n';
  }
  const auto json = flags.get_string("json", "");
  if (!json.empty()) {
    analysis::write_file(json, io::trace_to_json(result.trace));
    std::cout << "wrote JSON to " << json << '\n';
  }
  const auto csv = flags.get_string("csv", "");
  if (!csv.empty()) {
    analysis::write_file(csv, io::trace_to_csv(g, result.trace));
    std::cout << "wrote CSV to " << csv << '\n';
  }
  const auto svg = flags.get_string("svg", "");
  if (!svg.empty()) {
    analysis::write_file(svg, io::render_gantt_svg(result.trace, g, P));
    std::cout << "wrote SVG Gantt to " << svg << '\n';
  }
  return 0;
}

int cmd_verify(const util::Flags& flags) {
  if (flags.positional().size() < 3)
    throw std::invalid_argument(
        "verify needs a graph file and a trace CSV file");
  const auto g = load(flags.positional()[1]);
  std::ifstream in(flags.positional()[2]);
  if (!in) throw std::runtime_error("cannot open " + flags.positional()[2]);
  std::stringstream ss;
  ss << in.rdbuf();
  const auto trace = io::read_trace_csv(ss.str());
  const int P = static_cast<int>(flags.get_int("P", 32));
  const auto report = sim::validate_schedule(g, trace, P);
  std::cout << report.to_string() << '\n';
  if (report.ok()) {
    const double lb = analysis::optimal_makespan_lower_bound(g, P);
    std::cout << "makespan " << trace.makespan() << ", T/LB "
              << trace.makespan() / lb << '\n';
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Flags flags(argc, argv);
    if (flags.positional().empty()) {
      std::cerr << "usage: graph_tools <generate|stats|schedule> ...\n";
      return 2;
    }
    const auto& cmd = flags.positional().front();
    if (cmd == "generate") return cmd_generate(flags);
    if (cmd == "stats") return cmd_stats(flags);
    if (cmd == "schedule") return cmd_schedule(flags);
    if (cmd == "verify") return cmd_verify(flags);
    std::cerr << "unknown command: " << cmd << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
