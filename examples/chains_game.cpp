// Play the Theorem 9 lower-bound game: the equal-allocation online
// strategy against the Lemma 10 adaptive adversary on the linear-chains
// instance with the arbitrary speedup model t(p) = 1/(lg p + 1).
//
//   ./chains_game [--K=4] [--sweep]
#include <cmath>
#include <iostream>

#include "moldsched/graph/chains.hpp"
#include "moldsched/sched/chain_scheduler.hpp"
#include "moldsched/util/flags.hpp"
#include "moldsched/util/table.hpp"

using namespace moldsched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int K = static_cast<int>(flags.get_int("K", 4));

  const auto inst = graph::make_chains_instance(K);
  std::cout << "chains instance: K = " << K << " (D = K), "
            << inst.num_chains << " chains, " << inst.total_tasks
            << " tasks, P = " << inst.P << '\n'
            << "offline schedule finishes at "
            << sched::verify_offline_chain_schedule(inst) << "\n\n";

  const auto result = sched::EqualAllocationChainScheduler(inst).run();
  util::Table t({"i", "t_i (first survivor completes i tasks)",
                 "Lemma 10 gap bound 1/(lg K + i)"});
  double prev = 0.0;
  const double lgK = std::log2(static_cast<double>(K));
  for (int i = 1; i <= K; ++i) {
    const double ti = result.milestones[static_cast<std::size_t>(i - 1)];
    t.new_row()
        .cell(i)
        .cell(ti, 4)
        .cell(1.0 / (lgK + i), 4);
    prev = ti;
  }
  (void)prev;
  t.print(std::cout, "milestones:");
  std::cout << "\nonline makespan : " << result.makespan
            << "\noffline optimum : " << result.offline_makespan
            << "\nratio           : " << result.ratio
            << "\nLemma 10 bound  : " << inst.online_makespan_lower_bound
            << "\n";

  if (flags.get_bool("sweep", false)) {
    std::cout << "\nK sweep (ratio ~ Omega(ln K)):\n";
    for (int k = 2; k <= 18; k += 2) {
      const auto i2 = graph::make_chains_instance(k);
      const auto r2 = sched::EqualAllocationChainScheduler(i2).run();
      std::cout << "  K = " << k << ": ratio = " << r2.ratio
                << " (ln K = " << std::log(static_cast<double>(k)) << ")\n";
    }
  }
  return 0;
}
