// Resilient scheduling demo: run a workflow under silent errors with
// re-execution until success, and inspect attempt counts and wasted work.
//
//   ./resilient_scheduling [--P=16] [--q=0.3] [--lambda=0]
//                          [--seed=1] [--workflow-size=5]
//
// --q sets a per-attempt Bernoulli failure probability; a nonzero
// --lambda switches to area-proportional Poisson failures instead.
#include <iostream>
#include <memory>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/resilience/resilient_scheduler.hpp"
#include "moldsched/util/flags.hpp"
#include "moldsched/util/table.hpp"

using namespace moldsched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const int P = static_cast<int>(flags.get_int("P", 16));
  const double q = flags.get_double("q", 0.3);
  const double lambda = flags.get_double("lambda", 0.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int size = static_cast<int>(flags.get_int("workflow-size", 5));

  graph::WorkflowModelConfig cfg;
  cfg.kind = model::ModelKind::kAmdahl;
  const auto g = graph::cholesky(size, cfg);

  resilience::FailureModelPtr failures;
  if (lambda > 0.0)
    failures = std::make_shared<resilience::PoissonAreaFailures>(lambda);
  else
    failures = std::make_shared<resilience::BernoulliFailures>(q);

  const core::LpaAllocator alloc(analysis::optimal_mu(cfg.kind));
  const resilience::ResilientOnlineScheduler scheduler(g, P, alloc, failures,
                                                       seed);
  const auto result = scheduler.run();

  const auto violations =
      resilience::validate_resilient_schedule(g, result, P);
  if (!violations.empty()) {
    std::cerr << "schedule INVALID: " << violations.front() << '\n';
    return 1;
  }

  std::cout << "cholesky(" << size << "): " << g.num_tasks()
            << " tasks on P=" << P << " under " << failures->describe()
            << "\n\n";

  int total_attempts = 0;
  int max_attempts = 0;
  for (const int a : result.attempts_per_task) {
    total_attempts += a;
    max_attempts = std::max(max_attempts, a);
  }

  util::Table t({"metric", "value"});
  t.new_row().cell("makespan").cell(result.makespan, 2);
  t.new_row().cell("total attempts").cell(total_attempts);
  t.new_row().cell("attempts/task (mean)").cell(
      static_cast<double>(total_attempts) / g.num_tasks(), 2);
  t.new_row().cell("attempts/task (max)").cell(max_attempts);
  t.new_row().cell("total area").cell(result.total_area, 1);
  t.new_row().cell("wasted area (failed attempts)").cell(result.wasted_area,
                                                         1);
  t.new_row().cell("waste fraction").cell(
      result.wasted_area / result.total_area, 3);
  t.print(std::cout);

  // Compare against the failure-free run.
  const resilience::ResilientOnlineScheduler baseline(
      g, P, alloc, std::make_shared<resilience::NoFailures>(), seed);
  const auto clean = baseline.run();
  std::cout << "\nfailure-free makespan: " << clean.makespan
            << " -> inflation " << result.makespan / clean.makespan
            << "x\n";
  return 0;
}
