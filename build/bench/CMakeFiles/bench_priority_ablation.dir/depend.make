# Empty dependencies file for bench_priority_ablation.
# This may be replaced when dependencies are built.
