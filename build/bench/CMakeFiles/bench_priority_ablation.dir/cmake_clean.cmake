file(REMOVE_RECURSE
  "CMakeFiles/bench_priority_ablation.dir/bench_priority_ablation.cpp.o"
  "CMakeFiles/bench_priority_ablation.dir/bench_priority_ablation.cpp.o.d"
  "bench_priority_ablation"
  "bench_priority_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_priority_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
