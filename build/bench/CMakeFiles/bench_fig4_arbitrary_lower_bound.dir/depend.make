# Empty dependencies file for bench_fig4_arbitrary_lower_bound.
# This may be replaced when dependencies are built.
