# Empty dependencies file for bench_workflows.
# This may be replaced when dependencies are built.
