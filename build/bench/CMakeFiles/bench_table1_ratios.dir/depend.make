# Empty dependencies file for bench_table1_ratios.
# This may be replaced when dependencies are built.
