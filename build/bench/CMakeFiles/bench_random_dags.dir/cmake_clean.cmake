file(REMOVE_RECURSE
  "CMakeFiles/bench_random_dags.dir/bench_random_dags.cpp.o"
  "CMakeFiles/bench_random_dags.dir/bench_random_dags.cpp.o.d"
  "bench_random_dags"
  "bench_random_dags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_random_dags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
