# Empty compiler generated dependencies file for bench_random_dags.
# This may be replaced when dependencies are built.
