# Empty dependencies file for bench_fig3_chains_instance.
# This may be replaced when dependencies are built.
