file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_chains_instance.dir/bench_fig3_chains_instance.cpp.o"
  "CMakeFiles/bench_fig3_chains_instance.dir/bench_fig3_chains_instance.cpp.o.d"
  "bench_fig3_chains_instance"
  "bench_fig3_chains_instance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_chains_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
