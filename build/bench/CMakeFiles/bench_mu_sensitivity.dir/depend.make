# Empty dependencies file for bench_mu_sensitivity.
# This may be replaced when dependencies are built.
