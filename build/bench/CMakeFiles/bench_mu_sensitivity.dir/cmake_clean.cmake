file(REMOVE_RECURSE
  "CMakeFiles/bench_mu_sensitivity.dir/bench_mu_sensitivity.cpp.o"
  "CMakeFiles/bench_mu_sensitivity.dir/bench_mu_sensitivity.cpp.o.d"
  "bench_mu_sensitivity"
  "bench_mu_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mu_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
