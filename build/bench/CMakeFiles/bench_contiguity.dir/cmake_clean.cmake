file(REMOVE_RECURSE
  "CMakeFiles/bench_contiguity.dir/bench_contiguity.cpp.o"
  "CMakeFiles/bench_contiguity.dir/bench_contiguity.cpp.o.d"
  "bench_contiguity"
  "bench_contiguity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
