# Empty compiler generated dependencies file for bench_contiguity.
# This may be replaced when dependencies are built.
