file(REMOVE_RECURSE
  "CMakeFiles/bench_ratio_curves.dir/bench_ratio_curves.cpp.o"
  "CMakeFiles/bench_ratio_curves.dir/bench_ratio_curves.cpp.o.d"
  "bench_ratio_curves"
  "bench_ratio_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ratio_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
