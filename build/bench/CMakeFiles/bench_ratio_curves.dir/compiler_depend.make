# Empty compiler generated dependencies file for bench_ratio_curves.
# This may be replaced when dependencies are built.
