# Empty compiler generated dependencies file for bench_fig2_schedule_shapes.
# This may be replaced when dependencies are built.
