file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_schedule_shapes.dir/bench_fig2_schedule_shapes.cpp.o"
  "CMakeFiles/bench_fig2_schedule_shapes.dir/bench_fig2_schedule_shapes.cpp.o.d"
  "bench_fig2_schedule_shapes"
  "bench_fig2_schedule_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_schedule_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
