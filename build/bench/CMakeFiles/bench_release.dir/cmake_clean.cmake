file(REMOVE_RECURSE
  "CMakeFiles/bench_release.dir/bench_release.cpp.o"
  "CMakeFiles/bench_release.dir/bench_release.cpp.o.d"
  "bench_release"
  "bench_release.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_release.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
