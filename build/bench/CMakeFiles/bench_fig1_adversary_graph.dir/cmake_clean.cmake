file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_adversary_graph.dir/bench_fig1_adversary_graph.cpp.o"
  "CMakeFiles/bench_fig1_adversary_graph.dir/bench_fig1_adversary_graph.cpp.o.d"
  "bench_fig1_adversary_graph"
  "bench_fig1_adversary_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_adversary_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
