# Empty compiler generated dependencies file for bench_fig1_adversary_graph.
# This may be replaced when dependencies are built.
