# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/moldsched_util_tests[1]_include.cmake")
include("/root/repo/build/tests/moldsched_model_tests[1]_include.cmake")
include("/root/repo/build/tests/moldsched_graph_tests[1]_include.cmake")
include("/root/repo/build/tests/moldsched_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/moldsched_core_tests[1]_include.cmake")
include("/root/repo/build/tests/moldsched_sched_tests[1]_include.cmake")
include("/root/repo/build/tests/moldsched_resilience_tests[1]_include.cmake")
include("/root/repo/build/tests/moldsched_io_tests[1]_include.cmake")
include("/root/repo/build/tests/moldsched_analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/moldsched_integration_tests[1]_include.cmake")
