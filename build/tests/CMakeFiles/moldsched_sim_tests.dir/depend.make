# Empty dependencies file for moldsched_sim_tests.
# This may be replaced when dependencies are built.
