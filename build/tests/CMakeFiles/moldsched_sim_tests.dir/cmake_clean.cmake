file(REMOVE_RECURSE
  "CMakeFiles/moldsched_sim_tests.dir/sim/block_platform_test.cpp.o"
  "CMakeFiles/moldsched_sim_tests.dir/sim/block_platform_test.cpp.o.d"
  "CMakeFiles/moldsched_sim_tests.dir/sim/event_queue_test.cpp.o"
  "CMakeFiles/moldsched_sim_tests.dir/sim/event_queue_test.cpp.o.d"
  "CMakeFiles/moldsched_sim_tests.dir/sim/gantt_test.cpp.o"
  "CMakeFiles/moldsched_sim_tests.dir/sim/gantt_test.cpp.o.d"
  "CMakeFiles/moldsched_sim_tests.dir/sim/platform_test.cpp.o"
  "CMakeFiles/moldsched_sim_tests.dir/sim/platform_test.cpp.o.d"
  "CMakeFiles/moldsched_sim_tests.dir/sim/trace_test.cpp.o"
  "CMakeFiles/moldsched_sim_tests.dir/sim/trace_test.cpp.o.d"
  "CMakeFiles/moldsched_sim_tests.dir/sim/validator_test.cpp.o"
  "CMakeFiles/moldsched_sim_tests.dir/sim/validator_test.cpp.o.d"
  "moldsched_sim_tests"
  "moldsched_sim_tests.pdb"
  "moldsched_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moldsched_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
