
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/block_platform_test.cpp" "tests/CMakeFiles/moldsched_sim_tests.dir/sim/block_platform_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_sim_tests.dir/sim/block_platform_test.cpp.o.d"
  "/root/repo/tests/sim/event_queue_test.cpp" "tests/CMakeFiles/moldsched_sim_tests.dir/sim/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_sim_tests.dir/sim/event_queue_test.cpp.o.d"
  "/root/repo/tests/sim/gantt_test.cpp" "tests/CMakeFiles/moldsched_sim_tests.dir/sim/gantt_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_sim_tests.dir/sim/gantt_test.cpp.o.d"
  "/root/repo/tests/sim/platform_test.cpp" "tests/CMakeFiles/moldsched_sim_tests.dir/sim/platform_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_sim_tests.dir/sim/platform_test.cpp.o.d"
  "/root/repo/tests/sim/trace_test.cpp" "tests/CMakeFiles/moldsched_sim_tests.dir/sim/trace_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_sim_tests.dir/sim/trace_test.cpp.o.d"
  "/root/repo/tests/sim/validator_test.cpp" "tests/CMakeFiles/moldsched_sim_tests.dir/sim/validator_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_sim_tests.dir/sim/validator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/moldsched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
