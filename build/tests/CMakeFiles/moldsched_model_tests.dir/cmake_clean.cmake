file(REMOVE_RECURSE
  "CMakeFiles/moldsched_model_tests.dir/model/arbitrary_model_test.cpp.o"
  "CMakeFiles/moldsched_model_tests.dir/model/arbitrary_model_test.cpp.o.d"
  "CMakeFiles/moldsched_model_tests.dir/model/extra_models_test.cpp.o"
  "CMakeFiles/moldsched_model_tests.dir/model/extra_models_test.cpp.o.d"
  "CMakeFiles/moldsched_model_tests.dir/model/fit_test.cpp.o"
  "CMakeFiles/moldsched_model_tests.dir/model/fit_test.cpp.o.d"
  "CMakeFiles/moldsched_model_tests.dir/model/model_property_test.cpp.o"
  "CMakeFiles/moldsched_model_tests.dir/model/model_property_test.cpp.o.d"
  "CMakeFiles/moldsched_model_tests.dir/model/model_test.cpp.o"
  "CMakeFiles/moldsched_model_tests.dir/model/model_test.cpp.o.d"
  "CMakeFiles/moldsched_model_tests.dir/model/sampler_test.cpp.o"
  "CMakeFiles/moldsched_model_tests.dir/model/sampler_test.cpp.o.d"
  "moldsched_model_tests"
  "moldsched_model_tests.pdb"
  "moldsched_model_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moldsched_model_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
