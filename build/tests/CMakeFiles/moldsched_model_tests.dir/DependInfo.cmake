
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/arbitrary_model_test.cpp" "tests/CMakeFiles/moldsched_model_tests.dir/model/arbitrary_model_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_model_tests.dir/model/arbitrary_model_test.cpp.o.d"
  "/root/repo/tests/model/extra_models_test.cpp" "tests/CMakeFiles/moldsched_model_tests.dir/model/extra_models_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_model_tests.dir/model/extra_models_test.cpp.o.d"
  "/root/repo/tests/model/fit_test.cpp" "tests/CMakeFiles/moldsched_model_tests.dir/model/fit_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_model_tests.dir/model/fit_test.cpp.o.d"
  "/root/repo/tests/model/model_property_test.cpp" "tests/CMakeFiles/moldsched_model_tests.dir/model/model_property_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_model_tests.dir/model/model_property_test.cpp.o.d"
  "/root/repo/tests/model/model_test.cpp" "tests/CMakeFiles/moldsched_model_tests.dir/model/model_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_model_tests.dir/model/model_test.cpp.o.d"
  "/root/repo/tests/model/sampler_test.cpp" "tests/CMakeFiles/moldsched_model_tests.dir/model/sampler_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_model_tests.dir/model/sampler_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/moldsched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
