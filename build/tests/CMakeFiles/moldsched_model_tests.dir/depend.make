# Empty dependencies file for moldsched_model_tests.
# This may be replaced when dependencies are built.
