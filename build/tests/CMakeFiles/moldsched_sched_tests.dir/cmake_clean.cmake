file(REMOVE_RECURSE
  "CMakeFiles/moldsched_sched_tests.dir/sched/backfill_scheduler_test.cpp.o"
  "CMakeFiles/moldsched_sched_tests.dir/sched/backfill_scheduler_test.cpp.o.d"
  "CMakeFiles/moldsched_sched_tests.dir/sched/baselines_test.cpp.o"
  "CMakeFiles/moldsched_sched_tests.dir/sched/baselines_test.cpp.o.d"
  "CMakeFiles/moldsched_sched_tests.dir/sched/chain_scheduler_test.cpp.o"
  "CMakeFiles/moldsched_sched_tests.dir/sched/chain_scheduler_test.cpp.o.d"
  "CMakeFiles/moldsched_sched_tests.dir/sched/contiguous_scheduler_test.cpp.o"
  "CMakeFiles/moldsched_sched_tests.dir/sched/contiguous_scheduler_test.cpp.o.d"
  "CMakeFiles/moldsched_sched_tests.dir/sched/exact_test.cpp.o"
  "CMakeFiles/moldsched_sched_tests.dir/sched/exact_test.cpp.o.d"
  "CMakeFiles/moldsched_sched_tests.dir/sched/level_scheduler_test.cpp.o"
  "CMakeFiles/moldsched_sched_tests.dir/sched/level_scheduler_test.cpp.o.d"
  "CMakeFiles/moldsched_sched_tests.dir/sched/malleable_scheduler_test.cpp.o"
  "CMakeFiles/moldsched_sched_tests.dir/sched/malleable_scheduler_test.cpp.o.d"
  "CMakeFiles/moldsched_sched_tests.dir/sched/offline_test.cpp.o"
  "CMakeFiles/moldsched_sched_tests.dir/sched/offline_test.cpp.o.d"
  "CMakeFiles/moldsched_sched_tests.dir/sched/registry_test.cpp.o"
  "CMakeFiles/moldsched_sched_tests.dir/sched/registry_test.cpp.o.d"
  "CMakeFiles/moldsched_sched_tests.dir/sched/release_scheduler_test.cpp.o"
  "CMakeFiles/moldsched_sched_tests.dir/sched/release_scheduler_test.cpp.o.d"
  "moldsched_sched_tests"
  "moldsched_sched_tests.pdb"
  "moldsched_sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moldsched_sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
