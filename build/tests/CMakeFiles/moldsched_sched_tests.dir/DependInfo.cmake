
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/backfill_scheduler_test.cpp" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/backfill_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/backfill_scheduler_test.cpp.o.d"
  "/root/repo/tests/sched/baselines_test.cpp" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/baselines_test.cpp.o.d"
  "/root/repo/tests/sched/chain_scheduler_test.cpp" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/chain_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/chain_scheduler_test.cpp.o.d"
  "/root/repo/tests/sched/contiguous_scheduler_test.cpp" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/contiguous_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/contiguous_scheduler_test.cpp.o.d"
  "/root/repo/tests/sched/exact_test.cpp" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/exact_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/exact_test.cpp.o.d"
  "/root/repo/tests/sched/level_scheduler_test.cpp" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/level_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/level_scheduler_test.cpp.o.d"
  "/root/repo/tests/sched/malleable_scheduler_test.cpp" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/malleable_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/malleable_scheduler_test.cpp.o.d"
  "/root/repo/tests/sched/offline_test.cpp" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/offline_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/offline_test.cpp.o.d"
  "/root/repo/tests/sched/registry_test.cpp" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/registry_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/registry_test.cpp.o.d"
  "/root/repo/tests/sched/release_scheduler_test.cpp" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/release_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_sched_tests.dir/sched/release_scheduler_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/moldsched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
