# Empty dependencies file for moldsched_sched_tests.
# This may be replaced when dependencies are built.
