# Empty compiler generated dependencies file for moldsched_resilience_tests.
# This may be replaced when dependencies are built.
