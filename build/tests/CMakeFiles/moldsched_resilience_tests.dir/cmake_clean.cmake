file(REMOVE_RECURSE
  "CMakeFiles/moldsched_resilience_tests.dir/resilience/failure_model_test.cpp.o"
  "CMakeFiles/moldsched_resilience_tests.dir/resilience/failure_model_test.cpp.o.d"
  "CMakeFiles/moldsched_resilience_tests.dir/resilience/resilient_scheduler_test.cpp.o"
  "CMakeFiles/moldsched_resilience_tests.dir/resilience/resilient_scheduler_test.cpp.o.d"
  "moldsched_resilience_tests"
  "moldsched_resilience_tests.pdb"
  "moldsched_resilience_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moldsched_resilience_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
