# Empty compiler generated dependencies file for moldsched_analysis_tests.
# This may be replaced when dependencies are built.
