
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/adversary_study_test.cpp" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/adversary_study_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/adversary_study_test.cpp.o.d"
  "/root/repo/tests/analysis/blame_test.cpp" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/blame_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/blame_test.cpp.o.d"
  "/root/repo/tests/analysis/bounds_test.cpp" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/bounds_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/bounds_test.cpp.o.d"
  "/root/repo/tests/analysis/curves_test.cpp" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/curves_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/curves_test.cpp.o.d"
  "/root/repo/tests/analysis/experiment_test.cpp" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/experiment_test.cpp.o.d"
  "/root/repo/tests/analysis/lemma_check_test.cpp" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/lemma_check_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/lemma_check_test.cpp.o.d"
  "/root/repo/tests/analysis/markdown_report_test.cpp" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/markdown_report_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/markdown_report_test.cpp.o.d"
  "/root/repo/tests/analysis/optimize_test.cpp" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/optimize_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/optimize_test.cpp.o.d"
  "/root/repo/tests/analysis/ratios_test.cpp" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/ratios_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/ratios_test.cpp.o.d"
  "/root/repo/tests/analysis/report_test.cpp" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/report_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_analysis_tests.dir/analysis/report_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/moldsched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
