file(REMOVE_RECURSE
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/adversary_study_test.cpp.o"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/adversary_study_test.cpp.o.d"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/blame_test.cpp.o"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/blame_test.cpp.o.d"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/bounds_test.cpp.o"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/bounds_test.cpp.o.d"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/curves_test.cpp.o"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/curves_test.cpp.o.d"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/experiment_test.cpp.o"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/experiment_test.cpp.o.d"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/lemma_check_test.cpp.o"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/lemma_check_test.cpp.o.d"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/markdown_report_test.cpp.o"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/markdown_report_test.cpp.o.d"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/optimize_test.cpp.o"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/optimize_test.cpp.o.d"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/ratios_test.cpp.o"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/ratios_test.cpp.o.d"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/report_test.cpp.o"
  "CMakeFiles/moldsched_analysis_tests.dir/analysis/report_test.cpp.o.d"
  "moldsched_analysis_tests"
  "moldsched_analysis_tests.pdb"
  "moldsched_analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moldsched_analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
