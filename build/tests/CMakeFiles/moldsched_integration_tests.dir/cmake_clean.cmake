file(REMOVE_RECURSE
  "CMakeFiles/moldsched_integration_tests.dir/integration/adversary_integration_test.cpp.o"
  "CMakeFiles/moldsched_integration_tests.dir/integration/adversary_integration_test.cpp.o.d"
  "CMakeFiles/moldsched_integration_tests.dir/integration/competitive_ratio_property_test.cpp.o"
  "CMakeFiles/moldsched_integration_tests.dir/integration/competitive_ratio_property_test.cpp.o.d"
  "CMakeFiles/moldsched_integration_tests.dir/integration/edge_cases_test.cpp.o"
  "CMakeFiles/moldsched_integration_tests.dir/integration/edge_cases_test.cpp.o.d"
  "CMakeFiles/moldsched_integration_tests.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/moldsched_integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "CMakeFiles/moldsched_integration_tests.dir/integration/exact_differential_test.cpp.o"
  "CMakeFiles/moldsched_integration_tests.dir/integration/exact_differential_test.cpp.o.d"
  "CMakeFiles/moldsched_integration_tests.dir/integration/fuzz_test.cpp.o"
  "CMakeFiles/moldsched_integration_tests.dir/integration/fuzz_test.cpp.o.d"
  "CMakeFiles/moldsched_integration_tests.dir/integration/lemma_property_test.cpp.o"
  "CMakeFiles/moldsched_integration_tests.dir/integration/lemma_property_test.cpp.o.d"
  "CMakeFiles/moldsched_integration_tests.dir/integration/robustness_test.cpp.o"
  "CMakeFiles/moldsched_integration_tests.dir/integration/robustness_test.cpp.o.d"
  "CMakeFiles/moldsched_integration_tests.dir/integration/umbrella_test.cpp.o"
  "CMakeFiles/moldsched_integration_tests.dir/integration/umbrella_test.cpp.o.d"
  "CMakeFiles/moldsched_integration_tests.dir/integration/workflow_ratio_test.cpp.o"
  "CMakeFiles/moldsched_integration_tests.dir/integration/workflow_ratio_test.cpp.o.d"
  "moldsched_integration_tests"
  "moldsched_integration_tests.pdb"
  "moldsched_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moldsched_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
