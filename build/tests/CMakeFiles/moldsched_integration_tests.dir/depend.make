# Empty dependencies file for moldsched_integration_tests.
# This may be replaced when dependencies are built.
