
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/adversary_integration_test.cpp" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/adversary_integration_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/adversary_integration_test.cpp.o.d"
  "/root/repo/tests/integration/competitive_ratio_property_test.cpp" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/competitive_ratio_property_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/competitive_ratio_property_test.cpp.o.d"
  "/root/repo/tests/integration/edge_cases_test.cpp" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/edge_cases_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/exact_differential_test.cpp" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/exact_differential_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/exact_differential_test.cpp.o.d"
  "/root/repo/tests/integration/fuzz_test.cpp" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/fuzz_test.cpp.o.d"
  "/root/repo/tests/integration/lemma_property_test.cpp" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/lemma_property_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/lemma_property_test.cpp.o.d"
  "/root/repo/tests/integration/robustness_test.cpp" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/robustness_test.cpp.o.d"
  "/root/repo/tests/integration/umbrella_test.cpp" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/umbrella_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/umbrella_test.cpp.o.d"
  "/root/repo/tests/integration/workflow_ratio_test.cpp" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/workflow_ratio_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_integration_tests.dir/integration/workflow_ratio_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/moldsched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
