
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/io/dot_test.cpp" "tests/CMakeFiles/moldsched_io_tests.dir/io/dot_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_io_tests.dir/io/dot_test.cpp.o.d"
  "/root/repo/tests/io/fixtures_test.cpp" "tests/CMakeFiles/moldsched_io_tests.dir/io/fixtures_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_io_tests.dir/io/fixtures_test.cpp.o.d"
  "/root/repo/tests/io/json_test.cpp" "tests/CMakeFiles/moldsched_io_tests.dir/io/json_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_io_tests.dir/io/json_test.cpp.o.d"
  "/root/repo/tests/io/svg_test.cpp" "tests/CMakeFiles/moldsched_io_tests.dir/io/svg_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_io_tests.dir/io/svg_test.cpp.o.d"
  "/root/repo/tests/io/text_format_test.cpp" "tests/CMakeFiles/moldsched_io_tests.dir/io/text_format_test.cpp.o" "gcc" "tests/CMakeFiles/moldsched_io_tests.dir/io/text_format_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/moldsched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
