file(REMOVE_RECURSE
  "CMakeFiles/moldsched_io_tests.dir/io/dot_test.cpp.o"
  "CMakeFiles/moldsched_io_tests.dir/io/dot_test.cpp.o.d"
  "CMakeFiles/moldsched_io_tests.dir/io/fixtures_test.cpp.o"
  "CMakeFiles/moldsched_io_tests.dir/io/fixtures_test.cpp.o.d"
  "CMakeFiles/moldsched_io_tests.dir/io/json_test.cpp.o"
  "CMakeFiles/moldsched_io_tests.dir/io/json_test.cpp.o.d"
  "CMakeFiles/moldsched_io_tests.dir/io/svg_test.cpp.o"
  "CMakeFiles/moldsched_io_tests.dir/io/svg_test.cpp.o.d"
  "CMakeFiles/moldsched_io_tests.dir/io/text_format_test.cpp.o"
  "CMakeFiles/moldsched_io_tests.dir/io/text_format_test.cpp.o.d"
  "moldsched_io_tests"
  "moldsched_io_tests.pdb"
  "moldsched_io_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moldsched_io_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
