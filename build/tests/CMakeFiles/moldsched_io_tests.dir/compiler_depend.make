# Empty compiler generated dependencies file for moldsched_io_tests.
# This may be replaced when dependencies are built.
