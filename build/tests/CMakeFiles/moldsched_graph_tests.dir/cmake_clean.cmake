file(REMOVE_RECURSE
  "CMakeFiles/moldsched_graph_tests.dir/graph/adversary_test.cpp.o"
  "CMakeFiles/moldsched_graph_tests.dir/graph/adversary_test.cpp.o.d"
  "CMakeFiles/moldsched_graph_tests.dir/graph/algorithms_test.cpp.o"
  "CMakeFiles/moldsched_graph_tests.dir/graph/algorithms_test.cpp.o.d"
  "CMakeFiles/moldsched_graph_tests.dir/graph/chains_test.cpp.o"
  "CMakeFiles/moldsched_graph_tests.dir/graph/chains_test.cpp.o.d"
  "CMakeFiles/moldsched_graph_tests.dir/graph/generators_test.cpp.o"
  "CMakeFiles/moldsched_graph_tests.dir/graph/generators_test.cpp.o.d"
  "CMakeFiles/moldsched_graph_tests.dir/graph/graph_test.cpp.o"
  "CMakeFiles/moldsched_graph_tests.dir/graph/graph_test.cpp.o.d"
  "CMakeFiles/moldsched_graph_tests.dir/graph/stats_test.cpp.o"
  "CMakeFiles/moldsched_graph_tests.dir/graph/stats_test.cpp.o.d"
  "CMakeFiles/moldsched_graph_tests.dir/graph/workflows_test.cpp.o"
  "CMakeFiles/moldsched_graph_tests.dir/graph/workflows_test.cpp.o.d"
  "moldsched_graph_tests"
  "moldsched_graph_tests.pdb"
  "moldsched_graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moldsched_graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
