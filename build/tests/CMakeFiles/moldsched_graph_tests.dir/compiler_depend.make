# Empty compiler generated dependencies file for moldsched_graph_tests.
# This may be replaced when dependencies are built.
