file(REMOVE_RECURSE
  "CMakeFiles/moldsched_util_tests.dir/util/flags_test.cpp.o"
  "CMakeFiles/moldsched_util_tests.dir/util/flags_test.cpp.o.d"
  "CMakeFiles/moldsched_util_tests.dir/util/parallel_test.cpp.o"
  "CMakeFiles/moldsched_util_tests.dir/util/parallel_test.cpp.o.d"
  "CMakeFiles/moldsched_util_tests.dir/util/rng_test.cpp.o"
  "CMakeFiles/moldsched_util_tests.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/moldsched_util_tests.dir/util/stats_test.cpp.o"
  "CMakeFiles/moldsched_util_tests.dir/util/stats_test.cpp.o.d"
  "CMakeFiles/moldsched_util_tests.dir/util/table_test.cpp.o"
  "CMakeFiles/moldsched_util_tests.dir/util/table_test.cpp.o.d"
  "moldsched_util_tests"
  "moldsched_util_tests.pdb"
  "moldsched_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moldsched_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
