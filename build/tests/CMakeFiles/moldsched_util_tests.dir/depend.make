# Empty dependencies file for moldsched_util_tests.
# This may be replaced when dependencies are built.
