file(REMOVE_RECURSE
  "CMakeFiles/moldsched_core_tests.dir/core/allocator_test.cpp.o"
  "CMakeFiles/moldsched_core_tests.dir/core/allocator_test.cpp.o.d"
  "CMakeFiles/moldsched_core_tests.dir/core/intervals_test.cpp.o"
  "CMakeFiles/moldsched_core_tests.dir/core/intervals_test.cpp.o.d"
  "CMakeFiles/moldsched_core_tests.dir/core/scheduler_test.cpp.o"
  "CMakeFiles/moldsched_core_tests.dir/core/scheduler_test.cpp.o.d"
  "moldsched_core_tests"
  "moldsched_core_tests.pdb"
  "moldsched_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moldsched_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
