# Empty dependencies file for moldsched_core_tests.
# This may be replaced when dependencies are built.
