
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/moldsched/analysis/adversary_study.cpp" "src/CMakeFiles/moldsched.dir/moldsched/analysis/adversary_study.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/analysis/adversary_study.cpp.o.d"
  "/root/repo/src/moldsched/analysis/blame.cpp" "src/CMakeFiles/moldsched.dir/moldsched/analysis/blame.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/analysis/blame.cpp.o.d"
  "/root/repo/src/moldsched/analysis/bounds.cpp" "src/CMakeFiles/moldsched.dir/moldsched/analysis/bounds.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/analysis/bounds.cpp.o.d"
  "/root/repo/src/moldsched/analysis/curves.cpp" "src/CMakeFiles/moldsched.dir/moldsched/analysis/curves.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/analysis/curves.cpp.o.d"
  "/root/repo/src/moldsched/analysis/experiment.cpp" "src/CMakeFiles/moldsched.dir/moldsched/analysis/experiment.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/analysis/experiment.cpp.o.d"
  "/root/repo/src/moldsched/analysis/lemma_check.cpp" "src/CMakeFiles/moldsched.dir/moldsched/analysis/lemma_check.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/analysis/lemma_check.cpp.o.d"
  "/root/repo/src/moldsched/analysis/markdown_report.cpp" "src/CMakeFiles/moldsched.dir/moldsched/analysis/markdown_report.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/analysis/markdown_report.cpp.o.d"
  "/root/repo/src/moldsched/analysis/optimize.cpp" "src/CMakeFiles/moldsched.dir/moldsched/analysis/optimize.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/analysis/optimize.cpp.o.d"
  "/root/repo/src/moldsched/analysis/ratios.cpp" "src/CMakeFiles/moldsched.dir/moldsched/analysis/ratios.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/analysis/ratios.cpp.o.d"
  "/root/repo/src/moldsched/analysis/report.cpp" "src/CMakeFiles/moldsched.dir/moldsched/analysis/report.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/analysis/report.cpp.o.d"
  "/root/repo/src/moldsched/core/allocator.cpp" "src/CMakeFiles/moldsched.dir/moldsched/core/allocator.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/core/allocator.cpp.o.d"
  "/root/repo/src/moldsched/core/intervals.cpp" "src/CMakeFiles/moldsched.dir/moldsched/core/intervals.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/core/intervals.cpp.o.d"
  "/root/repo/src/moldsched/core/online_scheduler.cpp" "src/CMakeFiles/moldsched.dir/moldsched/core/online_scheduler.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/core/online_scheduler.cpp.o.d"
  "/root/repo/src/moldsched/core/queue_policy.cpp" "src/CMakeFiles/moldsched.dir/moldsched/core/queue_policy.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/core/queue_policy.cpp.o.d"
  "/root/repo/src/moldsched/graph/adversary.cpp" "src/CMakeFiles/moldsched.dir/moldsched/graph/adversary.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/graph/adversary.cpp.o.d"
  "/root/repo/src/moldsched/graph/algorithms.cpp" "src/CMakeFiles/moldsched.dir/moldsched/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/graph/algorithms.cpp.o.d"
  "/root/repo/src/moldsched/graph/chains.cpp" "src/CMakeFiles/moldsched.dir/moldsched/graph/chains.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/graph/chains.cpp.o.d"
  "/root/repo/src/moldsched/graph/generators.cpp" "src/CMakeFiles/moldsched.dir/moldsched/graph/generators.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/graph/generators.cpp.o.d"
  "/root/repo/src/moldsched/graph/stats.cpp" "src/CMakeFiles/moldsched.dir/moldsched/graph/stats.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/graph/stats.cpp.o.d"
  "/root/repo/src/moldsched/graph/task_graph.cpp" "src/CMakeFiles/moldsched.dir/moldsched/graph/task_graph.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/graph/task_graph.cpp.o.d"
  "/root/repo/src/moldsched/graph/workflows.cpp" "src/CMakeFiles/moldsched.dir/moldsched/graph/workflows.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/graph/workflows.cpp.o.d"
  "/root/repo/src/moldsched/io/dot.cpp" "src/CMakeFiles/moldsched.dir/moldsched/io/dot.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/io/dot.cpp.o.d"
  "/root/repo/src/moldsched/io/json.cpp" "src/CMakeFiles/moldsched.dir/moldsched/io/json.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/io/json.cpp.o.d"
  "/root/repo/src/moldsched/io/svg.cpp" "src/CMakeFiles/moldsched.dir/moldsched/io/svg.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/io/svg.cpp.o.d"
  "/root/repo/src/moldsched/io/text_format.cpp" "src/CMakeFiles/moldsched.dir/moldsched/io/text_format.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/io/text_format.cpp.o.d"
  "/root/repo/src/moldsched/model/arbitrary_model.cpp" "src/CMakeFiles/moldsched.dir/moldsched/model/arbitrary_model.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/model/arbitrary_model.cpp.o.d"
  "/root/repo/src/moldsched/model/extra_models.cpp" "src/CMakeFiles/moldsched.dir/moldsched/model/extra_models.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/model/extra_models.cpp.o.d"
  "/root/repo/src/moldsched/model/fit.cpp" "src/CMakeFiles/moldsched.dir/moldsched/model/fit.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/model/fit.cpp.o.d"
  "/root/repo/src/moldsched/model/general_model.cpp" "src/CMakeFiles/moldsched.dir/moldsched/model/general_model.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/model/general_model.cpp.o.d"
  "/root/repo/src/moldsched/model/sampler.cpp" "src/CMakeFiles/moldsched.dir/moldsched/model/sampler.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/model/sampler.cpp.o.d"
  "/root/repo/src/moldsched/model/special_models.cpp" "src/CMakeFiles/moldsched.dir/moldsched/model/special_models.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/model/special_models.cpp.o.d"
  "/root/repo/src/moldsched/model/speedup_model.cpp" "src/CMakeFiles/moldsched.dir/moldsched/model/speedup_model.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/model/speedup_model.cpp.o.d"
  "/root/repo/src/moldsched/resilience/failure_model.cpp" "src/CMakeFiles/moldsched.dir/moldsched/resilience/failure_model.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/resilience/failure_model.cpp.o.d"
  "/root/repo/src/moldsched/resilience/resilient_scheduler.cpp" "src/CMakeFiles/moldsched.dir/moldsched/resilience/resilient_scheduler.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/resilience/resilient_scheduler.cpp.o.d"
  "/root/repo/src/moldsched/sched/backfill_scheduler.cpp" "src/CMakeFiles/moldsched.dir/moldsched/sched/backfill_scheduler.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/sched/backfill_scheduler.cpp.o.d"
  "/root/repo/src/moldsched/sched/baselines.cpp" "src/CMakeFiles/moldsched.dir/moldsched/sched/baselines.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/sched/baselines.cpp.o.d"
  "/root/repo/src/moldsched/sched/chain_scheduler.cpp" "src/CMakeFiles/moldsched.dir/moldsched/sched/chain_scheduler.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/sched/chain_scheduler.cpp.o.d"
  "/root/repo/src/moldsched/sched/contiguous_scheduler.cpp" "src/CMakeFiles/moldsched.dir/moldsched/sched/contiguous_scheduler.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/sched/contiguous_scheduler.cpp.o.d"
  "/root/repo/src/moldsched/sched/exact.cpp" "src/CMakeFiles/moldsched.dir/moldsched/sched/exact.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/sched/exact.cpp.o.d"
  "/root/repo/src/moldsched/sched/level_scheduler.cpp" "src/CMakeFiles/moldsched.dir/moldsched/sched/level_scheduler.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/sched/level_scheduler.cpp.o.d"
  "/root/repo/src/moldsched/sched/malleable_scheduler.cpp" "src/CMakeFiles/moldsched.dir/moldsched/sched/malleable_scheduler.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/sched/malleable_scheduler.cpp.o.d"
  "/root/repo/src/moldsched/sched/offline.cpp" "src/CMakeFiles/moldsched.dir/moldsched/sched/offline.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/sched/offline.cpp.o.d"
  "/root/repo/src/moldsched/sched/registry.cpp" "src/CMakeFiles/moldsched.dir/moldsched/sched/registry.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/sched/registry.cpp.o.d"
  "/root/repo/src/moldsched/sched/release_scheduler.cpp" "src/CMakeFiles/moldsched.dir/moldsched/sched/release_scheduler.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/sched/release_scheduler.cpp.o.d"
  "/root/repo/src/moldsched/sim/block_platform.cpp" "src/CMakeFiles/moldsched.dir/moldsched/sim/block_platform.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/sim/block_platform.cpp.o.d"
  "/root/repo/src/moldsched/sim/event_queue.cpp" "src/CMakeFiles/moldsched.dir/moldsched/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/sim/event_queue.cpp.o.d"
  "/root/repo/src/moldsched/sim/gantt.cpp" "src/CMakeFiles/moldsched.dir/moldsched/sim/gantt.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/sim/gantt.cpp.o.d"
  "/root/repo/src/moldsched/sim/platform.cpp" "src/CMakeFiles/moldsched.dir/moldsched/sim/platform.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/sim/platform.cpp.o.d"
  "/root/repo/src/moldsched/sim/trace.cpp" "src/CMakeFiles/moldsched.dir/moldsched/sim/trace.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/sim/trace.cpp.o.d"
  "/root/repo/src/moldsched/sim/validator.cpp" "src/CMakeFiles/moldsched.dir/moldsched/sim/validator.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/sim/validator.cpp.o.d"
  "/root/repo/src/moldsched/util/flags.cpp" "src/CMakeFiles/moldsched.dir/moldsched/util/flags.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/util/flags.cpp.o.d"
  "/root/repo/src/moldsched/util/parallel.cpp" "src/CMakeFiles/moldsched.dir/moldsched/util/parallel.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/util/parallel.cpp.o.d"
  "/root/repo/src/moldsched/util/rng.cpp" "src/CMakeFiles/moldsched.dir/moldsched/util/rng.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/util/rng.cpp.o.d"
  "/root/repo/src/moldsched/util/stats.cpp" "src/CMakeFiles/moldsched.dir/moldsched/util/stats.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/util/stats.cpp.o.d"
  "/root/repo/src/moldsched/util/table.cpp" "src/CMakeFiles/moldsched.dir/moldsched/util/table.cpp.o" "gcc" "src/CMakeFiles/moldsched.dir/moldsched/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
