file(REMOVE_RECURSE
  "libmoldsched.a"
)
