# Empty dependencies file for moldsched.
# This may be replaced when dependencies are built.
