# Empty dependencies file for graph_tools.
# This may be replaced when dependencies are built.
