file(REMOVE_RECURSE
  "CMakeFiles/graph_tools.dir/graph_tools.cpp.o"
  "CMakeFiles/graph_tools.dir/graph_tools.cpp.o.d"
  "graph_tools"
  "graph_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
