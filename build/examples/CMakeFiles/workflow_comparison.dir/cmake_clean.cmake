file(REMOVE_RECURSE
  "CMakeFiles/workflow_comparison.dir/workflow_comparison.cpp.o"
  "CMakeFiles/workflow_comparison.dir/workflow_comparison.cpp.o.d"
  "workflow_comparison"
  "workflow_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
