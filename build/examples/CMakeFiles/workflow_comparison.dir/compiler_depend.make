# Empty compiler generated dependencies file for workflow_comparison.
# This may be replaced when dependencies are built.
