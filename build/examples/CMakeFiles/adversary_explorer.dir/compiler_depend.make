# Empty compiler generated dependencies file for adversary_explorer.
# This may be replaced when dependencies are built.
