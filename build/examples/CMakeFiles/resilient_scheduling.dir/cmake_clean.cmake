file(REMOVE_RECURSE
  "CMakeFiles/resilient_scheduling.dir/resilient_scheduling.cpp.o"
  "CMakeFiles/resilient_scheduling.dir/resilient_scheduling.cpp.o.d"
  "resilient_scheduling"
  "resilient_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
