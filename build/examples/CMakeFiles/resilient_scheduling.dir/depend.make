# Empty dependencies file for resilient_scheduling.
# This may be replaced when dependencies are built.
