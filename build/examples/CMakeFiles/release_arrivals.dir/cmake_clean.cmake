file(REMOVE_RECURSE
  "CMakeFiles/release_arrivals.dir/release_arrivals.cpp.o"
  "CMakeFiles/release_arrivals.dir/release_arrivals.cpp.o.d"
  "release_arrivals"
  "release_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/release_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
