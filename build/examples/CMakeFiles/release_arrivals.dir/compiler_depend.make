# Empty compiler generated dependencies file for release_arrivals.
# This may be replaced when dependencies are built.
