file(REMOVE_RECURSE
  "CMakeFiles/chains_game.dir/chains_game.cpp.o"
  "CMakeFiles/chains_game.dir/chains_game.cpp.o.d"
  "chains_game"
  "chains_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chains_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
