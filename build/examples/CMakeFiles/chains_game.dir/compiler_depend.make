# Empty compiler generated dependencies file for chains_game.
# This may be replaced when dependencies are built.
