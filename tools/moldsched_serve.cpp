// moldsched_serve — the scheduling service front end.
//
// Binds a TCP port (0 = ephemeral) and serves the length-prefixed JSON
// protocol of svc::Server: session.open / task.release / session.close,
// with admission control and an idle-session reaper. Prints one
//   listening on <host>:<port>
// line once bound (the smoke test and the load generator parse it), then
// runs until SIGINT/SIGTERM — or until a client sends server.stop when
// --allow-remote-stop is set.
#include <csignal>
#include <iostream>
#include <string>

#include "moldsched/analysis/report.hpp"
#include "moldsched/engine/executor.hpp"
#include "moldsched/obs/metrics.hpp"
#include "moldsched/svc/server.hpp"
#include "moldsched/util/flags.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int) { g_signal = 1; }

int usage(std::ostream& os, int code) {
  os << "usage: moldsched_serve [options]\n"
        "\n"
        "options:\n"
        "  --host H             IPv4 address to bind (default 127.0.0.1)\n"
        "  --port N             TCP port; 0 picks an ephemeral port "
        "(default 0)\n"
        "  --threads N          executor worker threads (default: hardware "
        "concurrency)\n"
        "  --max-sessions N     live-session limit (default 64)\n"
        "  --max-tasks N        per-session task quota (default 100000)\n"
        "  --max-inflight N     bounded request queue size across all\n"
        "                       connections; beyond it requests are\n"
        "                       rejected with 'overloaded' (default 256)\n"
        "  --idle-timeout S     reap sessions idle longer than S seconds\n"
        "                       (default 300)\n"
        "  --allow-remote-stop  honor the server.stop op (off by default)\n"
        "  --metrics FILE       write the svc.* metrics registry as JSON\n"
        "                       on shutdown\n"
        "  --quiet              print only the 'listening on' line\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace moldsched;
  try {
    const util::Flags flags(argc, argv);
    if (flags.has("help") || flags.has("h")) return usage(std::cout, 0);

    svc::ServerLimits limits;
    limits.max_sessions = static_cast<int>(flags.get_int("max-sessions", 64));
    limits.max_tasks_per_session =
        static_cast<int>(flags.get_int("max-tasks", 100000));
    limits.max_in_flight =
        static_cast<int>(flags.get_int("max-inflight", 256));
    limits.idle_timeout_s = flags.get_double("idle-timeout", 300.0);
    limits.allow_remote_stop = flags.get_bool("allow-remote-stop", false);
    const std::string host = flags.get_string("host", "127.0.0.1");
    const int port = static_cast<int>(flags.get_int("port", 0));
    const auto threads =
        static_cast<unsigned>(flags.get_int("threads", 0));
    const std::string metrics_path = flags.get_string("metrics", "");
    const bool quiet = flags.get_bool("quiet", false);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    engine::Executor executor(threads);
    svc::Server server(limits, executor);
    const int bound = server.listen(host, port);
    std::cout << "listening on " << host << ":" << bound << std::endl;
    if (!quiet)
      std::cout << "limits: sessions " << limits.max_sessions << ", tasks "
                << limits.max_tasks_per_session << ", in-flight "
                << limits.max_in_flight << ", idle timeout "
                << limits.idle_timeout_s << " s, remote stop "
                << (limits.allow_remote_stop ? "on" : "off") << '\n';

    // wait_for returns true once the server stopped (remote server.stop);
    // a signal breaks the loop and stops it from here.
    while (g_signal == 0 && !server.wait_for(0.2)) {
    }
    server.stop();
    server.wait();

    if (!metrics_path.empty()) {
      analysis::write_file(metrics_path,
                           obs::default_registry().to_json() + "\n");
      if (!quiet) std::cout << "wrote metrics " << metrics_path << '\n';
    }
    if (!quiet) std::cout << "stopped\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "moldsched_serve: " << e.what() << '\n';
    return 1;
  }
}
