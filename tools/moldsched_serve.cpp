// moldsched_serve — the scheduling service front end.
//
// Binds a TCP port (0 = ephemeral) and serves the length-prefixed JSON
// protocol of svc::Server: session.open / task.release / session.close,
// with admission control and an idle-session reaper. Prints one
//   listening on <host>:<port>
// line once bound (the smoke test and the load generator parse it), then
// runs until SIGINT/SIGTERM — or until a client sends server.stop when
// --allow-remote-stop is set.
//
// Telemetry plane (all opt-in):
//   --admin-port        HTTP admin listener: /metrics (Prometheus),
//                       /metrics.json, /flight, /healthz. Prints an
//                       "admin on <host>:<port>" line once bound.
//   --phase-metrics     per-request phase timing into svc.phase.*
//   --trace FILE        Chrome trace of request spans, written on exit
//   --flight N          flight recorder retaining the last N requests
//   --slow-ms T         auto-dump the flight recorder when a request
//                       exceeds T ms (needs --flight and --flight-dump)
//   --flight-dump FILE  JSONL target for flight dumps
//   --metrics-interval  periodic atomic-rename dumps of --metrics FILE,
//                       so metrics survive a crash or SIGKILL
// Signals: SIGUSR1 dumps the flight recorder to --flight-dump, SIGUSR2
// dumps the metrics registry to --metrics, both on demand.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "moldsched/analysis/report.hpp"
#include "moldsched/engine/executor.hpp"
#include "moldsched/obs/metrics.hpp"
#include "moldsched/obs/span.hpp"
#include "moldsched/obs/trace_writer.hpp"
#include "moldsched/svc/admin.hpp"
#include "moldsched/svc/server.hpp"
#include "moldsched/util/flags.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;
volatile std::sig_atomic_t g_dump_flight = 0;
volatile std::sig_atomic_t g_dump_metrics = 0;

void on_signal(int) { g_signal = 1; }
void on_sigusr1(int) { g_dump_flight = 1; }
void on_sigusr2(int) { g_dump_metrics = 1; }

/// Write-then-rename so readers (and post-crash forensics) only ever
/// see complete files.
bool atomic_write(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) return false;
    out << content;
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

int usage(std::ostream& os, int code) {
  os << "usage: moldsched_serve [options]\n"
        "\n"
        "options:\n"
        "  --host H             IPv4 address to bind (default 127.0.0.1)\n"
        "  --port N             TCP port; 0 picks an ephemeral port "
        "(default 0)\n"
        "  --threads N          executor worker threads (default: hardware "
        "concurrency)\n"
        "  --max-sessions N     live-session limit (default 64)\n"
        "  --max-tasks N        per-session task quota (default 100000)\n"
        "  --max-inflight N     bounded request queue size across all\n"
        "                       connections; beyond it requests are\n"
        "                       rejected with 'overloaded' (default 256)\n"
        "  --idle-timeout S     reap sessions idle longer than S seconds\n"
        "                       (default 300)\n"
        "  --allow-remote-stop  honor the server.stop op (off by default)\n"
        "  --metrics FILE       write the svc.* metrics registry as JSON\n"
        "                       on shutdown (and on SIGUSR2)\n"
        "  --metrics-interval S rewrite --metrics FILE every S seconds\n"
        "                       via atomic rename (default 0 = off)\n"
        "  --admin-port N       HTTP admin listener on --admin-host\n"
        "                       (/metrics, /metrics.json, /flight,\n"
        "                       /healthz); 0 picks an ephemeral port\n"
        "  --admin-host H       admin bind address (default: --host)\n"
        "  --phase-metrics      per-request phase histograms svc.phase.*\n"
        "  --trace FILE         Chrome trace of request spans on exit\n"
        "  --flight N           keep the last N requests in the flight\n"
        "                       recorder (default 0 = off)\n"
        "  --flight-dump FILE   JSONL target for SIGUSR1 / slow dumps\n"
        "                       (default flight.jsonl when --flight is on)\n"
        "  --slow-ms T          auto-dump flight records when a request\n"
        "                       takes longer than T ms (default 0 = off)\n"
        "  --quiet              print only the listener lines\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace moldsched;
  try {
    const util::Flags flags(argc, argv);
    if (flags.has("help") || flags.has("h")) return usage(std::cout, 0);

    svc::ServerLimits limits;
    limits.max_sessions = static_cast<int>(flags.get_int("max-sessions", 64));
    limits.max_tasks_per_session =
        static_cast<int>(flags.get_int("max-tasks", 100000));
    limits.max_in_flight =
        static_cast<int>(flags.get_int("max-inflight", 256));
    limits.idle_timeout_s = flags.get_double("idle-timeout", 300.0);
    limits.allow_remote_stop = flags.get_bool("allow-remote-stop", false);
    const std::string host = flags.get_string("host", "127.0.0.1");
    const int port = static_cast<int>(flags.get_int("port", 0));
    const auto threads =
        static_cast<unsigned>(flags.get_int("threads", 0));
    const std::string metrics_path = flags.get_string("metrics", "");
    const double metrics_interval = flags.get_double("metrics-interval", 0.0);
    const bool has_admin = flags.has("admin-port");
    const int admin_port = static_cast<int>(flags.get_int("admin-port", 0));
    const std::string admin_host = flags.get_string("admin-host", host);
    const std::string trace_path = flags.get_string("trace", "");
    const auto flight_capacity =
        static_cast<std::size_t>(flags.get_int("flight", 0));
    std::string flight_dump = flags.get_string("flight-dump", "");
    if (flight_dump.empty() && flight_capacity > 0)
      flight_dump = "flight.jsonl";
    const bool quiet = flags.get_bool("quiet", false);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGUSR1, on_sigusr1);
    std::signal(SIGUSR2, on_sigusr2);

    svc::ServerTelemetry telemetry;
    telemetry.phases = flags.get_bool("phase-metrics", false);
    telemetry.flight_capacity = flight_capacity;
    telemetry.slow_ms = flags.get_double("slow-ms", 0.0);
    telemetry.slow_dump_path = flight_dump;
    std::unique_ptr<obs::TraceWriter> trace_writer;
    std::unique_ptr<obs::TraceSpanObserver> span_observer;
    if (!trace_path.empty()) {
      trace_writer = std::make_unique<obs::TraceWriter>();
      span_observer = std::make_unique<obs::TraceSpanObserver>(*trace_writer);
      telemetry.spans = span_observer.get();
    }

    engine::Executor executor(threads);
    svc::Server server(limits, telemetry, executor);
    const int bound = server.listen(host, port);
    std::cout << "listening on " << host << ":" << bound << std::endl;

    std::unique_ptr<svc::AdminServer> admin;
    if (has_admin) {
      admin =
          std::make_unique<svc::AdminServer>(obs::default_registry(), &server);
      const int admin_bound = admin->listen(admin_host, admin_port);
      std::cout << "admin on " << admin_host << ":" << admin_bound
                << std::endl;
    }
    if (!quiet)
      std::cout << "limits: sessions " << limits.max_sessions << ", tasks "
                << limits.max_tasks_per_session << ", in-flight "
                << limits.max_in_flight << ", idle timeout "
                << limits.idle_timeout_s << " s, remote stop "
                << (limits.allow_remote_stop ? "on" : "off") << '\n';

    // wait_for returns true once the server stopped (remote server.stop);
    // a signal breaks the loop and stops it from here. Signal handlers
    // only set flags; the dumps happen here, on the main thread.
    double since_metrics_dump = 0.0;
    while (g_signal == 0 && !server.wait_for(0.2)) {
      if (g_dump_flight != 0) {
        g_dump_flight = 0;
        if (!flight_dump.empty() &&
            atomic_write(flight_dump, server.flight_jsonl()) && !quiet)
          std::cout << "wrote flight dump " << flight_dump << std::endl;
      }
      if (g_dump_metrics != 0) {
        g_dump_metrics = 0;
        if (!metrics_path.empty() &&
            atomic_write(metrics_path,
                         obs::default_registry().to_json() + "\n") &&
            !quiet)
          std::cout << "wrote metrics " << metrics_path << std::endl;
      }
      if (metrics_interval > 0 && !metrics_path.empty()) {
        since_metrics_dump += 0.2;
        if (since_metrics_dump >= metrics_interval) {
          since_metrics_dump = 0.0;
          atomic_write(metrics_path,
                       obs::default_registry().to_json() + "\n");
        }
      }
    }
    server.stop();
    server.wait();
    if (admin) admin->stop();

    if (!metrics_path.empty()) {
      atomic_write(metrics_path, obs::default_registry().to_json() + "\n");
      if (!quiet) std::cout << "wrote metrics " << metrics_path << '\n';
    }
    if (trace_writer) {
      analysis::write_file(trace_path, trace_writer->to_json());
      if (!quiet) std::cout << "wrote trace " << trace_path << '\n';
    }
    if (!quiet) std::cout << "stopped\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "moldsched_serve: " << e.what() << '\n';
    return 1;
  }
}
