// moldsched_run — the unified experiment CLI.
//
// Runs a named experiment suite (table1, ratio-curves, random-dags,
// workflows, resilience, selfcheck, release, improved) on the
// persistent work-stealing
// executor, streams one JSONL record per job, and writes the legacy
// results/*.csv tables plus a machine-readable BENCH_<suite>.json perf
// record. See EXPERIMENTS.md for the mapping from the old bench
// binaries to suite invocations.
#include <algorithm>
#include <cstdint>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include <memory>

#include "moldsched/adv/archive.hpp"
#include "moldsched/analysis/report.hpp"
#include "moldsched/engine/engine.hpp"
#include "moldsched/obs/obs.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/util/flags.hpp"
#include "moldsched/util/table.hpp"

namespace {

using namespace moldsched;

int usage(std::ostream& os, int code) {
  os << "usage: moldsched_run --suite <name> [options]\n"
        "       moldsched_run --list\n"
        "       moldsched_run --suite <name> --dry-run [--filter S]\n"
        "       moldsched_run --replay FILE.jsonl [--scheduler NAME]\n"
        "\n"
        "options:\n"
        "  --replay FILE      re-run every archived repro instance in the\n"
        "                     JSONL file (e.g. results/pisa_worst.jsonl),\n"
        "                     validate the schedules, check the replayed\n"
        "                     makespans are bit-identical to the archived\n"
        "                     ones, and print the T/LB ratios\n"
        "  --scheduler NAME   with --replay: run this registered scheduler\n"
        "                     instead of each record's own target/reference\n"
        "  --suite NAME       suite to run (repeatable via comma list)\n"
        "  --list             list the available suites and exit\n"
        "  --dry-run          print the suite's job list instead of running\n"
        "  --threads N        worker threads (default: hardware concurrency)\n"
        "  --repeats N        repetitions per stochastic point (default: "
        "per-suite)\n"
        "  --seed S           base seed for per-job RNG derivation "
        "(default 1234)\n"
        "  --filter S         run only jobs whose key contains substring S\n"
        "  --results-dir D    output directory (default: results)\n"
        "  --jsonl PATH       override the per-job JSONL path\n"
        "  --job-timeout T    per-job wall-clock budget in seconds\n"
        "  --budget T         total wall-clock budget in seconds\n"
        "  --resume           skip jobs already recorded ok in the JSONL\n"
        "  --no-outputs       skip the CSV finalizers (JSONL only)\n"
        "  --no-bench-json    skip writing BENCH_<suite>.json\n"
        "  --trace FILE       write a Chrome trace-event JSON (Perfetto /\n"
        "                     chrome://tracing) of the run: engine worker\n"
        "                     lanes plus one process per traced simulation\n"
        "  --metrics FILE     write the metrics registry (counters, gauges,\n"
        "                     histograms) as JSON after the run\n"
        "  --quiet            suppress per-job progress and the verbose\n"
        "                     tables; the per-suite summary footer and the\n"
        "                     written-file paths still print\n"
        "\n"
        "suites:\n";
  for (const auto& info : engine::suites())
    os << "  " << info.name << std::string(14 - std::min<std::size_t>(13, info.name.size()), ' ')
       << info.description << '\n';
  os << "\nschedulers (sched::registry, usable wherever a scheduler name "
        "is accepted):\n ";
  for (const auto& name : sched::full_suite_names()) os << ' ' << name;
  os << '\n';
  return code;
}

std::string joined_suite_names() {
  std::string out;
  for (const auto& info : engine::suites()) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  return out;
}

/// util::Flags accepts any `--name`; reject typos (e.g. `--thread`)
/// instead of silently running with the default value.
int reject_unknown_flags(int argc, const char* const* argv) {
  static const char* const kKnown[] = {
      "suite",       "list",        "dry-run",     "threads",
      "repeats",     "seed",        "filter",      "results-dir",
      "jsonl",       "job-timeout", "budget",      "resume",
      "no-outputs",  "no-bench-json", "quiet",     "trace",
      "metrics",     "replay",      "scheduler",   "help",
      "h"};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const auto name = arg.substr(2, arg.find('=') - 2);
    if (std::find_if(std::begin(kKnown), std::end(kKnown),
                     [&](const char* k) { return name == k; }) ==
        std::end(kKnown)) {
      std::cerr << "moldsched_run: unknown flag '--" << name << "'\n\n";
      return usage(std::cerr, 2);
    }
  }
  return 0;
}

/// --replay: re-run every archived instance, validate, and check the
/// replayed makespans against the archived ones bit for bit.
int run_replay(const std::string& path, const std::string& scheduler) {
  const auto records = adv::read_archive(path);
  if (records.empty()) {
    std::cout << "replay: no records in " << path << '\n';
    return 0;
  }
  int failures = 0;
  util::Table t({"record", "pair", "P", "tasks", "scheduler", "makespan",
                 "T/LB", "valid", "bit-identical", "ratio vs"});
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& rec = records[i];
    std::vector<std::string> names;
    if (!scheduler.empty())
      names.push_back(scheduler);
    else
      names = {rec.target, rec.reference};
    for (const auto& name : names) {
      const auto out = adv::replay_record(rec, name);
      const bool pass = out.valid && (!out.checked || out.bit_identical) &&
                        (!out.ratio_checked || out.ratio_bit_identical);
      if (!pass) ++failures;
      t.new_row()
          .cell(static_cast<long>(i))
          .cell(rec.target + " vs " + rec.reference)
          .cell(static_cast<long>(rec.P))
          .cell(static_cast<long>(rec.graph.num_tasks()))
          .cell(out.scheduler)
          .cell(out.makespan, 6)
          .cell(out.ratio_to_lb, 3)
          .cell(out.valid ? "yes" : "NO")
          .cell(out.checked ? (out.bit_identical ? "yes" : "NO") : "-")
          .cell(out.ratio_checked
                    ? out.denominator +
                          (out.ratio_bit_identical ? " ok" : " MISMATCH")
                    : "-");
      if (!out.valid)
        std::cerr << "replay: record " << i << " (" << out.scheduler
                  << "): invalid schedule\n"
                  << out.violations << '\n';
      if (out.checked && !out.bit_identical)
        std::cerr << "replay: record " << i << " (" << out.scheduler
                  << "): makespan " << out.makespan
                  << " differs from archived " << out.recorded_makespan
                  << '\n';
      if (out.ratio_checked && !out.ratio_bit_identical)
        std::cerr << "replay: record " << i << " (" << out.scheduler << " / "
                  << out.denominator << "): replayed ratio "
                  << out.replayed_ratio << " differs from archived "
                  << rec.ratio << '\n';
    }
  }
  t.print(std::cout, "replay of " + path +
                         " (T/LB = makespan / Lemma-2 lower bound)");
  std::cout << (failures == 0 ? "replay: all records verified\n"
                              : "replay: FAILURES\n");
  return failures == 0 ? 0 : 1;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto comma = s.find(',', start);
    const auto end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (const int code = reject_unknown_flags(argc, argv)) return code;
    const util::Flags flags(argc, argv);
    if (flags.has("help") || flags.has("h")) return usage(std::cout, 0);
    if (flags.has("list")) {
      for (const auto& info : engine::suites())
        std::cout << info.name << ": " << info.description << '\n';
      return 0;
    }

    const std::string replay_path = flags.get_string("replay", "");
    if (!replay_path.empty())
      return run_replay(replay_path, flags.get_string("scheduler", ""));

    const auto suite_names = split_csv(flags.get_string("suite", ""));
    if (suite_names.empty()) {
      std::cerr << "moldsched_run: --suite is required\n\n";
      return usage(std::cerr, 2);
    }
    for (const auto& name : suite_names) {
      if (!engine::has_suite(name)) {
        std::cerr << "moldsched_run: unknown suite '" << name
                  << "' (available: " << joined_suite_names() << ")\n\n";
        return usage(std::cerr, 2);
      }
    }

    engine::SuiteOptions options;
    options.threads =
        static_cast<unsigned>(flags.get_int("threads", 0));
    options.repeats = static_cast<int>(flags.get_int("repeats", 0));
    options.base_seed =
        static_cast<std::uint64_t>(flags.get_int("seed", 1234));
    options.filter = flags.get_string("filter", "");
    options.results_dir = flags.get_string("results-dir", "results");
    options.jsonl_path = flags.get_string("jsonl", "");
    options.job_timeout_s = flags.get_double("job-timeout", 0.0);
    options.total_budget_s = flags.get_double("budget", 0.0);
    options.resume = flags.get_bool("resume", false);
    options.write_outputs = !flags.get_bool("no-outputs", false);
    const bool quiet = flags.get_bool("quiet", false);
    const bool bench_json = !flags.get_bool("no-bench-json", false);
    const std::string trace_path = flags.get_string("trace", "");
    const std::string metrics_path = flags.get_string("metrics", "");

    if (flags.has("dry-run")) {
      for (const auto& name : suite_names) {
        const auto jobs = engine::suite_jobs(name, options);
        for (const auto& job : jobs)
          std::cout << name << " #" << job.job_id << "  " << job.key()
                    << "  seed=" << job.seed << '\n';
        std::cout << "# " << name << ": " << jobs.size() << " job(s)\n";
      }
      return 0;
    }

    // --quiet keeps the per-suite summary footer and the wrote-file
    // paths; it drops only per-job progress and the verbose tables.
    options.human_out = quiet ? nullptr : &std::cout;

    // Arm process-wide observability before any suite runs.
    std::unique_ptr<obs::TraceWriter> tracer;
    if (!trace_path.empty()) {
      tracer = std::make_unique<obs::TraceWriter>();
      tracer->set_process_name(obs::TraceWriter::kEnginePid, "engine");
      obs::set_global_tracer(tracer.get());
    }
    if (!metrics_path.empty()) obs::set_metrics_collection(true);

    if (!quiet) {
      // The heartbeat reads live registry counters — cheap (a shard sum
      // per counter) and serialized by the runner's progress mutex.
      auto& registry = obs::default_registry();
      obs::Counter& ok_jobs = registry.counter("engine.jobs.ok");
      obs::Counter& steals = registry.counter("engine.executor.steals");
      options.progress = [&ok_jobs, &steals](const engine::JobRecord& rec,
                                             std::size_t done,
                                             std::size_t total) {
        std::cerr << "[" << done << "/" << total << "] " << rec.status
                  << "  " << rec.spec.key() << "  (ok " << ok_jobs.value()
                  << ", steals " << steals.value() << ")" << '\n';
      };
    }

    int failures = 0;
    for (const auto& name : suite_names) {
      if (!quiet) std::cout << "=== suite " << name << " ===\n\n";
      const auto report = engine::run_suite(name, options);
      std::cout << "suite " << name << ": " << report.records.size()
                << " job(s), " << report.ok << " ok, " << report.errors
                << " error, " << report.timeouts << " timeout, "
                << report.cancelled << " cancelled";
      if (report.resumed > 0) std::cout << ", " << report.resumed << " resumed";
      std::cout << "  (" << report.threads << " threads, "
                << util::format_double(report.wall_s, 2) << " s)\n";
      for (const auto& path : report.outputs)
        std::cout << "  wrote " << path << '\n';
      if (bench_json) {
        const std::string path =
            options.results_dir + "/BENCH_" + name + ".json";
        analysis::write_file(path, engine::bench_json(report));
        std::cout << "  wrote " << path << '\n';
      }
      std::cout << '\n';
      failures += static_cast<int>(report.errors + report.timeouts +
                                   report.cancelled);
    }

    if (tracer) {
      obs::set_global_tracer(nullptr);
      tracer->write_file(trace_path);
      std::cout << "wrote trace " << trace_path << '\n';
    }
    if (!metrics_path.empty()) {
      analysis::write_file(metrics_path,
                           obs::default_registry().to_json() + "\n");
      std::cout << "wrote metrics " << metrics_path << '\n';
    }
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "moldsched_run: " << e.what() << '\n';
    return 1;
  }
}
