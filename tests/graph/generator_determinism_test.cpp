// RNG reproducibility audit for every graph generator: the same seed
// must produce the byte-identical graph (checked through the lossless
// svc wire codec), and child-seed derivation must be order-independent —
// generating instance 7 never depends on whether instances 0..6 were
// generated first. This is the property the engine's job grids and the
// adversarial search's parallel restarts rely on.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "moldsched/check/corpus.hpp"
#include "moldsched/graph/chains.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/svc/wire.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::graph {
namespace {

constexpr int kP = 16;

/// Every randomized generator, wrapped as seed -> graph. Each invocation
/// builds fresh Rngs from the seed, so a generator that leaked state
/// between calls would show up as a byte diff.
std::vector<std::pair<std::string,
                      std::function<TaskGraph(std::uint64_t)>>>
seeded_generators() {
  using Builder = std::function<TaskGraph(std::uint64_t)>;
  std::vector<std::pair<std::string, Builder>> out;
  const auto with_sampler = [](model::ModelKind kind, auto body) {
    return [kind, body](std::uint64_t seed) {
      const model::ModelSampler sampler(kind);
      util::Rng structure(util::derive_seed(seed, 0));
      util::Rng models(util::derive_seed(seed, 1));
      return body(sampler, structure, models);
    };
  };
  out.emplace_back(
      "chain", with_sampler(model::ModelKind::kGeneral,
                            [](const auto& s, auto&, auto& m) {
                              return chain(9, sampling_provider(s, m, kP));
                            }));
  out.emplace_back(
      "independent",
      with_sampler(model::ModelKind::kAmdahl,
                   [](const auto& s, auto&, auto& m) {
                     return independent(12, sampling_provider(s, m, kP));
                   }));
  out.emplace_back(
      "fork_join",
      with_sampler(model::ModelKind::kRoofline,
                   [](const auto& s, auto&, auto& m) {
                     return fork_join(3, 4, sampling_provider(s, m, kP));
                   }));
  out.emplace_back(
      "diamond",
      with_sampler(model::ModelKind::kCommunication,
                   [](const auto& s, auto&, auto& m) {
                     return diamond(6, sampling_provider(s, m, kP));
                   }));
  out.emplace_back(
      "layered_random",
      with_sampler(model::ModelKind::kGeneral,
                   [](const auto& s, auto& r, auto& m) {
                     return layered_random(4, 2, 5, 0.4, r,
                                           sampling_provider(s, m, kP));
                   }));
  out.emplace_back(
      "erdos_renyi_dag",
      with_sampler(model::ModelKind::kGeneral,
                   [](const auto& s, auto& r, auto& m) {
                     return erdos_renyi_dag(14, 0.3, r,
                                            sampling_provider(s, m, kP));
                   }));
  out.emplace_back(
      "random_out_tree",
      with_sampler(model::ModelKind::kAmdahl,
                   [](const auto& s, auto& r, auto& m) {
                     return random_out_tree(13, 3, r,
                                            sampling_provider(s, m, kP));
                   }));
  out.emplace_back(
      "random_in_tree",
      with_sampler(model::ModelKind::kCommunication,
                   [](const auto& s, auto& r, auto& m) {
                     return random_in_tree(13, 3, r,
                                           sampling_provider(s, m, kP));
                   }));
  out.emplace_back(
      "series_parallel",
      with_sampler(model::ModelKind::kGeneral,
                   [](const auto& s, auto& r, auto& m) {
                     return series_parallel(15, r,
                                            sampling_provider(s, m, kP));
                   }));
  for (int family = 0; family < check::num_corpus_families(); ++family) {
    out.emplace_back("corpus:" + check::corpus_families()[family],
                     [family](std::uint64_t seed) {
                       util::Rng rng(util::derive_seed(seed, 2));
                       return check::corpus_graph(
                           family, model::ModelKind::kGeneral, rng, kP);
                     });
  }
  return out;
}

TEST(GeneratorDeterminismTest, SameSeedSameBytesForEveryGenerator) {
  for (const auto& [name, build] : seeded_generators()) {
    for (const std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
      const auto first = svc::encode_graph(build(seed));
      const auto second = svc::encode_graph(build(seed));
      EXPECT_EQ(first, second) << name << " seed " << seed;
    }
    // And different seeds actually change something.
    EXPECT_NE(svc::encode_graph(build(1)), svc::encode_graph(build(2)))
        << name;
  }
}

TEST(GeneratorDeterminismTest, ChildSeedsAreOrderIndependent) {
  // Generating instances in any order must give the same bytes per
  // index: child seeds come from derive_seed(base, i), not from a shared
  // advancing stream.
  const auto generators = seeded_generators();
  const auto& [name, build] = generators.front();
  constexpr std::uint64_t kBase = 77;
  std::vector<std::string> forward;
  for (std::uint64_t i = 0; i < 4; ++i)
    forward.push_back(svc::encode_graph(build(util::derive_seed(kBase, i))));
  for (std::uint64_t i = 4; i-- > 0;) {
    EXPECT_EQ(svc::encode_graph(build(util::derive_seed(kBase, i))),
              forward[i])
        << name << " index " << i;
  }
}

TEST(GeneratorDeterminismTest, DeterministicFamiliesAreBitStable) {
  // Config-driven generators take no RNG at all; two calls must still be
  // byte-identical (guards against hidden global state).
  const WorkflowModelConfig config;
  const std::vector<std::pair<std::string, std::function<TaskGraph()>>>
      fixed = {
          {"cholesky", [&] { return cholesky(4, config); }},
          {"lu", [&] { return lu(4, config); }},
          {"fft", [&] { return fft(3, config); }},
          {"montage", [&] { return montage(4, config); }},
          {"wavefront", [&] { return wavefront(3, 4, config); }},
      };
  for (const auto& [name, build] : fixed)
    EXPECT_EQ(svc::encode_graph(build()), svc::encode_graph(build())) << name;

  // chains_graph carries a FunctionModel (not wire-serializable), so
  // compare a structural fingerprint instead of codec bytes.
  const auto fingerprint = [] {
    const auto g = chains_graph(make_chains_instance(5));
    std::string fp;
    for (TaskId v = 0; v < g.num_tasks(); ++v) {
      fp += g.name(v) + "|" + g.model_of(v).describe() + "|";
      for (const TaskId s : g.successors(v)) fp += std::to_string(s) + ",";
      fp += ";";
    }
    return fp;
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

}  // namespace
}  // namespace moldsched::graph
