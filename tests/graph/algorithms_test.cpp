#include "moldsched/graph/algorithms.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/model/special_models.hpp"

namespace moldsched::graph {
namespace {

model::ModelPtr unit_model() {
  return std::make_shared<model::RooflineModel>(1.0, 1);
}

/// a -> b -> d, a -> c -> d (diamond) with an isolated task e.
TaskGraph diamond_plus_isolated() {
  TaskGraph g;
  const auto a = g.add_task(unit_model(), "a");
  const auto b = g.add_task(unit_model(), "b");
  const auto c = g.add_task(unit_model(), "c");
  const auto d = g.add_task(unit_model(), "d");
  (void)g.add_task(unit_model(), "e");
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  return g;
}

TEST(AlgorithmsTest, TopologicalOrderRespectsEdges) {
  const auto g = diamond_plus_isolated();
  const auto order = topological_order(g);
  ASSERT_EQ(order.size(), 5u);
  std::vector<int> pos(5);
  for (std::size_t i = 0; i < order.size(); ++i)
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  for (TaskId v = 0; v < g.num_tasks(); ++v)
    for (const TaskId s : g.successors(v))
      EXPECT_LT(pos[static_cast<std::size_t>(v)],
                pos[static_cast<std::size_t>(s)]);
}

TEST(AlgorithmsTest, TopologicalOrderIsDeterministicSmallestIdFirst) {
  const auto g = diamond_plus_isolated();
  const auto order = topological_order(g);
  // Sources are a (0) and e (4); a comes first, then its children in id
  // order interleaved with e by id.
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);  // b ready after a; e has id 4
}

TEST(AlgorithmsTest, CycleDetection) {
  TaskGraph g;
  const auto a = g.add_task(unit_model());
  const auto b = g.add_task(unit_model());
  g.add_edge(a, b);
  EXPECT_TRUE(is_acyclic(g));
  g.add_edge(b, a);
  EXPECT_FALSE(is_acyclic(g));
  EXPECT_THROW((void)topological_order(g), std::logic_error);
}

TEST(AlgorithmsTest, TopLevelsOfDiamond) {
  const auto g = diamond_plus_isolated();
  const std::vector<double> times{1.0, 2.0, 3.0, 1.0, 5.0};
  const auto top = top_levels(g, times);
  EXPECT_DOUBLE_EQ(top[0], 0.0);
  EXPECT_DOUBLE_EQ(top[1], 1.0);       // after a
  EXPECT_DOUBLE_EQ(top[2], 1.0);
  EXPECT_DOUBLE_EQ(top[3], 4.0);       // a + c = 1 + 3
  EXPECT_DOUBLE_EQ(top[4], 0.0);       // isolated
}

TEST(AlgorithmsTest, BottomLevelsOfDiamond) {
  const auto g = diamond_plus_isolated();
  const std::vector<double> times{1.0, 2.0, 3.0, 1.0, 5.0};
  const auto bottom = bottom_levels(g, times);
  EXPECT_DOUBLE_EQ(bottom[3], 1.0);
  EXPECT_DOUBLE_EQ(bottom[1], 3.0);    // b + d
  EXPECT_DOUBLE_EQ(bottom[2], 4.0);    // c + d
  EXPECT_DOUBLE_EQ(bottom[0], 5.0);    // a + c + d
  EXPECT_DOUBLE_EQ(bottom[4], 5.0);
}

TEST(AlgorithmsTest, LongestPathLength) {
  const auto g = diamond_plus_isolated();
  const std::vector<double> times{1.0, 2.0, 3.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(longest_path_length(g, times), 5.0);
  // Crank up the isolated task: it becomes the critical path by itself.
  const std::vector<double> times2{1.0, 2.0, 3.0, 1.0, 50.0};
  EXPECT_DOUBLE_EQ(longest_path_length(g, times2), 50.0);
}

TEST(AlgorithmsTest, CriticalPathTasksFollowHeaviestRoute) {
  const auto g = diamond_plus_isolated();
  const std::vector<double> times{1.0, 2.0, 3.0, 1.0, 0.5};
  const auto path = critical_path_tasks(g, times);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0);  // a
  EXPECT_EQ(path[1], 2);  // c (heavier branch)
  EXPECT_EQ(path[2], 3);  // d
  // The path length matches longest_path_length.
  double len = 0.0;
  for (const TaskId v : path) len += times[static_cast<std::size_t>(v)];
  EXPECT_DOUBLE_EQ(len, longest_path_length(g, times));
}

TEST(AlgorithmsTest, CriticalPathIsARealPath) {
  const auto g = diamond_plus_isolated();
  const std::vector<double> times{1.0, 2.0, 3.0, 1.0, 0.5};
  const auto path = critical_path_tasks(g, times);
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
}

TEST(AlgorithmsTest, LongestHopCount) {
  const auto g = diamond_plus_isolated();
  EXPECT_EQ(longest_hop_count(g), 3);  // a -> b/c -> d
  TaskGraph single;
  (void)single.add_task(unit_model());
  EXPECT_EQ(longest_hop_count(single), 1);
}

TEST(AlgorithmsTest, SizeMismatchThrows) {
  const auto g = diamond_plus_isolated();
  const std::vector<double> wrong{1.0, 2.0};
  EXPECT_THROW((void)top_levels(g, wrong), std::invalid_argument);
  EXPECT_THROW((void)bottom_levels(g, wrong), std::invalid_argument);
  EXPECT_THROW((void)longest_path_length(g, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace moldsched::graph
