#include "moldsched/graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "moldsched/graph/algorithms.hpp"
#include "moldsched/model/special_models.hpp"

namespace moldsched::graph {
namespace {

ModelProvider unit_provider() {
  return constant_provider(std::make_shared<model::RooflineModel>(1.0, 1));
}

TEST(GeneratorsTest, ChainShape) {
  const auto g = chain(5, unit_provider());
  EXPECT_EQ(g.num_tasks(), 5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(longest_hop_count(g), 5);
  EXPECT_THROW((void)chain(0, unit_provider()), std::invalid_argument);
}

TEST(GeneratorsTest, SingleTaskChain) {
  const auto g = chain(1, unit_provider());
  EXPECT_EQ(g.num_tasks(), 1);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GeneratorsTest, IndependentShape) {
  const auto g = independent(7, unit_provider());
  EXPECT_EQ(g.num_tasks(), 7);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.sources().size(), 7u);
  EXPECT_THROW((void)independent(-1, unit_provider()), std::invalid_argument);
}

TEST(GeneratorsTest, ForkJoinShape) {
  const auto g = fork_join(2, 3, unit_provider());
  // 1 + (3 + 1) * 2 tasks: fork0, 3 mids + join per stage.
  EXPECT_EQ(g.num_tasks(), 9);
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(longest_hop_count(g), 5);  // fork, mid, join, mid, join
  EXPECT_THROW((void)fork_join(0, 3, unit_provider()), std::invalid_argument);
  EXPECT_THROW((void)fork_join(1, 0, unit_provider()), std::invalid_argument);
}

TEST(GeneratorsTest, LayeredRandomIsAcyclicWithNoOrphans) {
  util::Rng rng(1);
  const auto g = layered_random(6, 2, 5, 0.4, rng, unit_provider());
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_GE(g.num_tasks(), 12);
  EXPECT_LE(g.num_tasks(), 30);
  // Every task beyond the first layer has a predecessor; count sources
  // and compare with the first layer width (between 2 and 5).
  EXPECT_LE(g.sources().size(), 5u);
  EXPECT_GE(g.sources().size(), 2u);
}

TEST(GeneratorsTest, LayeredRandomRejectsBadArgs) {
  util::Rng rng(1);
  EXPECT_THROW((void)layered_random(0, 1, 2, 0.5, rng, unit_provider()),
               std::invalid_argument);
  EXPECT_THROW((void)layered_random(2, 3, 2, 0.5, rng, unit_provider()),
               std::invalid_argument);
  EXPECT_THROW((void)layered_random(2, 1, 2, 1.5, rng, unit_provider()),
               std::invalid_argument);
}

TEST(GeneratorsTest, ErdosRenyiEdgeCountScalesWithProbability) {
  util::Rng rng(2);
  const auto sparse = erdos_renyi_dag(40, 0.02, rng, unit_provider());
  const auto dense = erdos_renyi_dag(40, 0.5, rng, unit_provider());
  EXPECT_TRUE(is_acyclic(sparse));
  EXPECT_TRUE(is_acyclic(dense));
  EXPECT_LT(sparse.num_edges(), dense.num_edges());
  // Dense should be near 0.5 * n(n-1)/2 = 390.
  EXPECT_GT(dense.num_edges(), 300u);
  EXPECT_LT(dense.num_edges(), 480u);
}

TEST(GeneratorsTest, ErdosRenyiZeroAndOneProbability) {
  util::Rng rng(3);
  EXPECT_EQ(erdos_renyi_dag(10, 0.0, rng, unit_provider()).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi_dag(10, 1.0, rng, unit_provider()).num_edges(), 45u);
}

TEST(GeneratorsTest, OutTreeHasOneSourceAndParentArray) {
  util::Rng rng(4);
  const auto g = random_out_tree(30, 2, rng, unit_provider());
  EXPECT_EQ(g.num_tasks(), 30);
  EXPECT_EQ(g.num_edges(), 29u);
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_TRUE(is_acyclic(g));
  // Child cap respected.
  for (TaskId v = 0; v < g.num_tasks(); ++v) EXPECT_LE(g.out_degree(v), 2);
  // Every non-root has exactly one predecessor.
  for (TaskId v = 1; v < g.num_tasks(); ++v) EXPECT_EQ(g.in_degree(v), 1);
}

TEST(GeneratorsTest, InTreeHasOneSink) {
  util::Rng rng(5);
  const auto g = random_in_tree(30, 3, rng, unit_provider());
  EXPECT_EQ(g.num_tasks(), 30);
  EXPECT_EQ(g.num_edges(), 29u);
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_TRUE(is_acyclic(g));
  for (TaskId v = 0; v < g.num_tasks(); ++v) EXPECT_LE(g.in_degree(v), 3);
}

TEST(GeneratorsTest, DiamondShape) {
  const auto g = diamond(4, unit_provider());
  EXPECT_EQ(g.num_tasks(), 6);
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(longest_hop_count(g), 3);
  EXPECT_THROW((void)diamond(0, unit_provider()), std::invalid_argument);
}

TEST(GeneratorsTest, SeriesParallelApproximatesBudgetAndIsAcyclic) {
  util::Rng rng(6);
  for (const int n : {1, 2, 5, 20, 60}) {
    const auto g = series_parallel(n, rng, unit_provider());
    EXPECT_TRUE(is_acyclic(g));
    EXPECT_GE(g.num_tasks(), n);       // parallel nodes may add entries/exits
    EXPECT_LE(g.num_tasks(), 3 * n + 2);
  }
}

TEST(GeneratorsTest, SamplingProviderDrawsFreshModels) {
  util::Rng rng(7);
  const model::ModelSampler sampler(model::ModelKind::kAmdahl);
  const auto provider = sampling_provider(sampler, rng, 16);
  const auto a = provider();
  const auto b = provider();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->kind(), model::ModelKind::kAmdahl);
}

TEST(GeneratorsTest, ConstantProviderSharesModel) {
  const auto m = std::make_shared<model::RooflineModel>(2.0, 2);
  const auto provider = constant_provider(m);
  EXPECT_EQ(provider().get(), m.get());
  EXPECT_EQ(provider().get(), m.get());
  EXPECT_THROW((void)constant_provider(nullptr), std::invalid_argument);
}

TEST(GeneratorsTest, DeterministicUnderSameSeed) {
  util::Rng rng1(9);
  util::Rng rng2(9);
  const auto a = erdos_renyi_dag(25, 0.2, rng1, unit_provider());
  const auto b = erdos_renyi_dag(25, 0.2, rng2, unit_provider());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (TaskId v = 0; v < a.num_tasks(); ++v) {
    const auto sa = a.successors(v);
    const auto sb = b.successors(v);
    EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin(), sb.end()))
        << "successor mismatch at task " << v;
  }
}

}  // namespace
}  // namespace moldsched::graph
