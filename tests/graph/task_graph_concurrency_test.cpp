// Concurrent use of a shared const TaskGraph: the adversarial search
// evaluates one start graph from many engine workers at once, so the
// lazy CSR adjacency build must be race-free (double-checked flag +
// build mutex). These tests run under the ThreadSanitizer CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "moldsched/graph/generators.hpp"
#include "moldsched/graph/task_graph.hpp"
#include "moldsched/model/special_models.hpp"

namespace moldsched::graph {
namespace {

TaskGraph fresh_graph() {
  // Freshly built, so no CSR view exists yet — every reader thread
  // races into the first lazy build.
  return layered_uniform(20, 50, 3, 1234,
                         constant_provider(std::make_shared<model::RooflineModel>(
                             1.0, 4)));
}

std::uint64_t adjacency_checksum(const TaskGraph& g) {
  std::uint64_t sum = 0;
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    for (const TaskId s : g.successors(v))
      sum += static_cast<std::uint64_t>(v) * 31u +
             static_cast<std::uint64_t>(s);
    for (const TaskId u : g.predecessors(v))
      sum += static_cast<std::uint64_t>(u) * 17u +
             static_cast<std::uint64_t>(v);
  }
  return sum;
}

TEST(TaskGraphConcurrencyTest, ConcurrentReadersRaceIntoOneLazyBuild) {
  const TaskGraph g = fresh_graph();
  ASSERT_FALSE(g.adjacency_built());

  constexpr int kThreads = 8;
  const std::uint64_t expected = [] {
    const TaskGraph reference = fresh_graph();
    return adjacency_checksum(reference);
  }();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, &mismatches, expected] {
      if (adjacency_checksum(g) != expected) mismatches.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(g.adjacency_built());
}

TEST(TaskGraphConcurrencyTest, ConcurrentCopyAndMutateStayIndependent) {
  const TaskGraph g = fresh_graph();

  constexpr int kThreads = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, &failures, t] {
      // Clone-then-edit, the perturbation pattern: each thread mutates
      // only its private copy while others still read the original.
      TaskGraph mine = g;
      const TaskId v = mine.add_task(
          std::make_shared<model::RooflineModel>(2.0, 2), "extra");
      mine.add_edge(t, v);
      if (mine.num_tasks() != g.num_tasks() + 1) failures.fetch_add(1);
      if (mine.successors(t).size() !=
          g.successors(t).size() + 1)
        failures.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(TaskGraphConcurrencyTest, DegreeQueriesNeverForceABuild) {
  const TaskGraph g = fresh_graph();
  std::vector<std::thread> threads;
  std::atomic<long> total{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g, &total] {
      long sum = 0;
      for (TaskId v = 0; v < g.num_tasks(); ++v)
        sum += g.in_degree(v) + g.out_degree(v);
      total.fetch_add(sum);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(g.adjacency_built());
  EXPECT_EQ(total.load(), 4 * 2 * static_cast<long>(g.num_edges()));
}

}  // namespace
}  // namespace moldsched::graph
