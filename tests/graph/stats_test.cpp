#include "moldsched/graph/stats.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/graph/generators.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/model/special_models.hpp"

namespace moldsched::graph {
namespace {

ModelProvider unit_provider() {
  return constant_provider(std::make_shared<model::RooflineModel>(1.0, 1));
}

TEST(GraphStatsTest, ChainStats) {
  const auto s = compute_stats(chain(5, unit_provider()));
  EXPECT_EQ(s.num_tasks, 5);
  EXPECT_EQ(s.num_edges, 4);
  EXPECT_EQ(s.num_sources, 1);
  EXPECT_EQ(s.num_sinks, 1);
  EXPECT_EQ(s.longest_path_tasks, 5);
  EXPECT_EQ(s.num_levels, 5);
  EXPECT_EQ(s.max_level_width, 1);
  EXPECT_EQ(s.max_in_degree, 1);
  EXPECT_EQ(s.max_out_degree, 1);
  EXPECT_DOUBLE_EQ(s.avg_degree, 8.0 / 5.0);
}

TEST(GraphStatsTest, DiamondStats) {
  const auto s = compute_stats(diamond(6, unit_provider()));
  EXPECT_EQ(s.num_tasks, 8);
  EXPECT_EQ(s.num_edges, 12);
  EXPECT_EQ(s.longest_path_tasks, 3);
  EXPECT_EQ(s.num_levels, 3);
  EXPECT_EQ(s.max_level_width, 6);
  EXPECT_EQ(s.max_out_degree, 6);
  EXPECT_EQ(s.max_in_degree, 6);
}

TEST(GraphStatsTest, IndependentStats) {
  const auto s = compute_stats(independent(10, unit_provider()));
  EXPECT_EQ(s.num_levels, 1);
  EXPECT_EQ(s.max_level_width, 10);
  EXPECT_DOUBLE_EQ(s.edge_density, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_degree, 0.0);
}

TEST(GraphStatsTest, DensityOfCompleteDag) {
  util::Rng rng(1);
  const auto g = erdos_renyi_dag(10, 1.0, rng, unit_provider());
  const auto s = compute_stats(g);
  EXPECT_DOUBLE_EQ(s.edge_density, 1.0);
}

TEST(GraphStatsTest, WorkflowStatsAreConsistent) {
  WorkflowModelConfig cfg;
  cfg.kind = model::ModelKind::kAmdahl;
  const auto s = compute_stats(cholesky(5, cfg));
  EXPECT_EQ(s.num_tasks, 35);
  EXPECT_EQ(s.num_sources, 1);
  EXPECT_EQ(s.num_sinks, 1);
  EXPECT_GT(s.longest_path_tasks, 5);
  EXPECT_EQ(s.num_levels, s.longest_path_tasks);
}

TEST(GraphStatsTest, ToStringMentionsKeyNumbers) {
  const auto s = compute_stats(chain(3, unit_provider()));
  const auto text = to_string(s);
  EXPECT_NE(text.find("3 tasks"), std::string::npos);
  EXPECT_NE(text.find("D=3"), std::string::npos);
}

TEST(GraphStatsTest, RejectsEmptyGraph) {
  TaskGraph g;
  EXPECT_THROW((void)compute_stats(g), std::logic_error);
}

}  // namespace
}  // namespace moldsched::graph
