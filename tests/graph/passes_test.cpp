#include "moldsched/graph/passes.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "moldsched/graph/generators.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/obs/metrics.hpp"

namespace moldsched::graph::passes {
namespace {

model::ModelPtr unit_model() {
  return std::make_shared<model::RooflineModel>(1.0, 1);
}

ModelProvider unit_provider() { return constant_provider(unit_model()); }

TEST(TransitiveReductionTest, RemovesShortcutEdge) {
  TaskGraph g;
  const TaskId a = g.add_task(unit_model(), "a");
  const TaskId b = g.add_task(unit_model(), "b");
  const TaskId c = g.add_task(unit_model(), "c");
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(a, c);  // implied by a -> b -> c

  const auto result = transitive_reduction(g);
  EXPECT_EQ(result.edges_removed, 1u);
  EXPECT_EQ(result.graph.num_edges(), 2u);
  EXPECT_TRUE(result.graph.has_edge(a, b));
  EXPECT_TRUE(result.graph.has_edge(b, c));
  EXPECT_FALSE(result.graph.has_edge(a, c));
  // Tasks, ids, names and models carry over untouched.
  ASSERT_EQ(result.graph.num_tasks(), 3);
  EXPECT_EQ(result.graph.name(a), "a");
  EXPECT_EQ(result.graph.name(c), "c");
  EXPECT_EQ(result.graph.model_ptr(b), g.model_ptr(b));
}

TEST(TransitiveReductionTest, KeepsAlreadyMinimalGraphs) {
  const auto chain_graph = chain(6, unit_provider());
  const auto reduced = transitive_reduction(chain_graph);
  EXPECT_EQ(reduced.edges_removed, 0u);
  EXPECT_EQ(reduced.graph.num_edges(), chain_graph.num_edges());

  const auto diamond_graph = diamond(4, unit_provider());
  EXPECT_EQ(transitive_reduction(diamond_graph).edges_removed, 0u);
}

TEST(TransitiveReductionTest, RemovesLongRangeShortcuts) {
  // Chain 0..5 plus every forward shortcut: reduction recovers the chain.
  TaskGraph g;
  constexpr int kN = 6;
  for (int i = 0; i < kN; ++i) g.add_task(unit_model());
  for (TaskId i = 0; i < kN; ++i)
    for (TaskId j = i + 1; j < kN; ++j) g.add_edge(i, j);

  const auto result = transitive_reduction(g);
  EXPECT_EQ(result.graph.num_edges(), static_cast<std::size_t>(kN - 1));
  for (TaskId i = 0; i + 1 < kN; ++i)
    EXPECT_TRUE(result.graph.has_edge(i, i + 1));
}

TEST(TransitiveReductionTest, ThrowsOnCycle) {
  TaskGraph g;
  const TaskId a = g.add_task(unit_model());
  const TaskId b = g.add_task(unit_model());
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_THROW((void)transitive_reduction(g), std::logic_error);
}

TEST(TransitiveReductionTest, PreservesSparseNameDefaults) {
  // Unnamed tasks (synthesized "task<id>") must stay unnamed in the
  // reduced graph rather than being re-added as explicit names.
  TaskGraph g;
  g.add_task(unit_model());
  g.add_task(unit_model());
  g.add_edge(0, 1);
  const auto result = transitive_reduction(g);
  EXPECT_EQ(result.graph.name(0), "task0");
  EXPECT_EQ(result.graph.name(1), "task1");
}

TEST(TransitiveReductionTest, BumpsObsCounters) {
  auto& runs = obs::default_registry().counter(
      "graph.pass.transitive_reduction.runs");
  auto& removed = obs::default_registry().counter(
      "graph.pass.transitive_reduction.edges_removed");
  const auto runs_before = runs.value();
  const auto removed_before = removed.value();

  TaskGraph g;
  g.add_task(unit_model());
  g.add_task(unit_model());
  g.add_task(unit_model());
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  (void)transitive_reduction(g);

  EXPECT_EQ(runs.value(), runs_before + 1);
  EXPECT_EQ(removed.value(), removed_before + 1);
}

TEST(CriticalPathTest, ChainSumsAllTimes) {
  const auto g = chain(5, unit_provider());
  const std::vector<double> times{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto cp = critical_path(g, times);
  EXPECT_DOUBLE_EQ(cp.length, 15.0);
  ASSERT_EQ(cp.tasks.size(), 5u);
  for (TaskId v = 0; v < 5; ++v) EXPECT_EQ(cp.tasks[static_cast<std::size_t>(v)], v);
}

TEST(CriticalPathTest, PicksHeavierBranch) {
  // Diamond with one heavy middle task.
  TaskGraph g;
  const TaskId src = g.add_task(unit_model());
  const TaskId light = g.add_task(unit_model());
  const TaskId heavy = g.add_task(unit_model());
  const TaskId sink = g.add_task(unit_model());
  g.add_edge(src, light);
  g.add_edge(src, heavy);
  g.add_edge(light, sink);
  g.add_edge(heavy, sink);

  const std::vector<double> times{1.0, 0.5, 7.0, 1.0};
  const auto cp = critical_path(g, times);
  EXPECT_DOUBLE_EQ(cp.length, 9.0);
  const std::vector<TaskId> expected{src, heavy, sink};
  EXPECT_EQ(cp.tasks, expected);
}

TEST(CriticalPathTest, RejectsBadInputs) {
  const auto g = chain(3, unit_provider());
  EXPECT_THROW((void)critical_path(g, {1.0}), std::invalid_argument);
  TaskGraph empty;
  EXPECT_THROW((void)critical_path(empty, {}), std::logic_error);
}

TEST(CriticalPathTest, MinTimeWeightsMatchModels) {
  const auto g = diamond(3, unit_provider());
  constexpr int kP = 8;
  const auto weights = min_time_weights(g, kP);
  ASSERT_EQ(weights.size(), static_cast<std::size_t>(g.num_tasks()));
  for (TaskId v = 0; v < g.num_tasks(); ++v)
    EXPECT_DOUBLE_EQ(weights[static_cast<std::size_t>(v)],
                     g.model_of(v).min_time(kP));
  EXPECT_THROW((void)min_time_weights(g, 0), std::invalid_argument);
}

TEST(TopologicalLayersTest, ChainHasOneTaskPerLayer) {
  const auto g = chain(4, unit_provider());
  const auto layering = topological_layers(g);
  EXPECT_EQ(layering.num_layers(), 4);
  for (TaskId v = 0; v < 4; ++v) {
    EXPECT_EQ(layering.layer_of[static_cast<std::size_t>(v)], v);
    const auto layer = layering.layer(v);
    ASSERT_EQ(layer.size(), 1u);
    EXPECT_EQ(layer[0], v);
  }
}

TEST(TopologicalLayersTest, IndependentTasksShareLayerZero) {
  const auto g = independent(5, unit_provider());
  const auto layering = topological_layers(g);
  EXPECT_EQ(layering.num_layers(), 1);
  const auto layer0 = layering.layer(0);
  ASSERT_EQ(layer0.size(), 5u);
  // Ascending id within the layer.
  EXPECT_TRUE(std::is_sorted(layer0.begin(), layer0.end()));
}

TEST(TopologicalLayersTest, AsapPlacementOnDiamondWithTail) {
  TaskGraph g;
  const TaskId src = g.add_task(unit_model());
  const TaskId mid = g.add_task(unit_model());
  const TaskId sink = g.add_task(unit_model());
  const TaskId lone = g.add_task(unit_model());  // source, layer 0
  g.add_edge(src, mid);
  g.add_edge(mid, sink);
  g.add_edge(src, sink);  // shortcut does not demote sink below ASAP

  const auto layering = topological_layers(g);
  EXPECT_EQ(layering.num_layers(), 3);
  EXPECT_EQ(layering.layer_of[static_cast<std::size_t>(src)], 0);
  EXPECT_EQ(layering.layer_of[static_cast<std::size_t>(lone)], 0);
  EXPECT_EQ(layering.layer_of[static_cast<std::size_t>(mid)], 1);
  EXPECT_EQ(layering.layer_of[static_cast<std::size_t>(sink)], 2);
  // Offsets partition the id space exactly once.
  EXPECT_EQ(layering.order.size(), 4u);
  EXPECT_EQ(layering.offsets.front(), 0u);
  EXPECT_EQ(layering.offsets.back(), 4u);
}

TEST(TopologicalLayersTest, EmptyGraphYieldsEmptyLayering) {
  TaskGraph g;
  const auto layering = topological_layers(g);
  EXPECT_EQ(layering.num_layers(), 0);
  EXPECT_TRUE(layering.order.empty());
}

TEST(TopologicalLayersTest, ThrowsOnCycle) {
  TaskGraph g;
  g.add_task(unit_model());
  g.add_task(unit_model());
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW((void)topological_layers(g), std::logic_error);
}

TEST(LayeredUniformTest, ShapeSeedAndReservesAreExact) {
  const auto g = layered_uniform(10, 50, 3, 99, unit_provider());
  EXPECT_EQ(g.num_tasks(), 500);
  EXPECT_EQ(g.num_edges(), layered_uniform_edges(10, 50, 3));

  // Every non-source task has exactly `degree` distinct predecessors in
  // the previous layer.
  const auto layering = topological_layers(g);
  EXPECT_EQ(layering.num_layers(), 10);
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(layering.layer_of[static_cast<std::size_t>(v)], v / 50);
    if (v >= 50) {
      ASSERT_EQ(g.in_degree(v), 3);
    }
  }

  // Deterministic in the seed.
  const auto h = layered_uniform(10, 50, 3, 99, unit_provider());
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    const auto sg = g.successors(v);
    const auto sh = h.successors(v);
    ASSERT_TRUE(std::equal(sg.begin(), sg.end(), sh.begin(), sh.end()));
  }

  // No names stored: every task reports the synthesized default.
  EXPECT_EQ(g.name(0), "task0");
  EXPECT_EQ(g.name(499), "task499");
}

TEST(LayeredUniformTest, DegreeClampsToWidth) {
  const auto g = layered_uniform(3, 2, 8, 1, unit_provider());
  EXPECT_EQ(g.num_tasks(), 6);
  EXPECT_EQ(g.num_edges(), 8u);  // (3-1) * 2 * min(8, 2)
  for (TaskId v = 2; v < 6; ++v) EXPECT_EQ(g.in_degree(v), 2);
}

}  // namespace
}  // namespace moldsched::graph::passes
