#include "moldsched/graph/chains.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "moldsched/graph/algorithms.hpp"

namespace moldsched::graph {
namespace {

TEST(ChainsInstanceTest, Figure3Numbers) {
  // The paper's Figure 3: ell = 2, K = 4, n = 15 chains.
  const auto inst = make_chains_instance(4);
  EXPECT_EQ(inst.K, 4);
  EXPECT_EQ(inst.ell, 2);
  EXPECT_EQ(inst.num_chains, 15);
  EXPECT_EQ(inst.P, 4 * 8);  // K * 2^{K-1} = 32
  // Groups: 8 chains of length 1, 4 of 2, 2 of 3, 1 of 4.
  ASSERT_EQ(inst.chains_per_group.size(), 4u);
  EXPECT_EQ(inst.chains_per_group[0], 8);
  EXPECT_EQ(inst.chains_per_group[1], 4);
  EXPECT_EQ(inst.chains_per_group[2], 2);
  EXPECT_EQ(inst.chains_per_group[3], 1);
  EXPECT_EQ(inst.total_tasks, 8 + 8 + 6 + 4);
  EXPECT_DOUBLE_EQ(inst.offline_makespan, 1.0);
}

TEST(ChainsInstanceTest, LowerBoundMatchesLemma10Sum) {
  const auto inst = make_chains_instance(4);
  // sum_{i=1..4} 1/(2+i) = 1/3 + 1/4 + 1/5 + 1/6 = 0.95.
  EXPECT_NEAR(inst.online_makespan_lower_bound, 0.95, 1e-12);
}

TEST(ChainsInstanceTest, NonPowerOfTwoKUsesRealLog) {
  const auto inst = make_chains_instance(6);
  EXPECT_EQ(inst.ell, -1);
  double expect = 0.0;
  for (int i = 1; i <= 6; ++i) expect += 1.0 / (std::log2(6.0) + i);
  EXPECT_NEAR(inst.online_makespan_lower_bound, expect, 1e-12);
}

TEST(ChainsInstanceTest, CountsAreConsistent) {
  for (const int K : {1, 2, 3, 5, 8, 10}) {
    const auto inst = make_chains_instance(K);
    std::int64_t chains = 0;
    std::int64_t tasks = 0;
    for (int i = 1; i <= K; ++i) {
      chains += inst.chains_per_group[static_cast<std::size_t>(i - 1)];
      tasks += i * inst.chains_per_group[static_cast<std::size_t>(i - 1)];
    }
    EXPECT_EQ(chains, inst.num_chains);
    EXPECT_EQ(chains, (std::int64_t{1} << K) - 1);
    EXPECT_EQ(tasks, inst.total_tasks);
  }
}

TEST(ChainsInstanceTest, RejectsBadK) {
  EXPECT_THROW((void)make_chains_instance(0), std::invalid_argument);
  EXPECT_THROW((void)make_chains_instance(63), std::invalid_argument);
}

TEST(ChainsGraphTest, MaterializesFigure3Graph) {
  const auto inst = make_chains_instance(4);
  const auto g = chains_graph(inst);
  EXPECT_EQ(g.num_tasks(), 26);
  EXPECT_EQ(g.num_edges(), 26u - 15u);  // tasks minus one per chain
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_EQ(g.sources().size(), 15u);
  EXPECT_EQ(g.sinks().size(), 15u);
  // D = K: the longest chain has K tasks (Theorem 9's parameter).
  EXPECT_EQ(longest_hop_count(g), 4);
}

TEST(ChainsGraphTest, TaskNamingMatchesFigure3Convention) {
  const auto inst = make_chains_instance(2);
  const auto g = chains_graph(inst);
  // K=2: 2 chains of length 1 (ids 1, 2), 1 chain of length 2 (id 3).
  EXPECT_EQ(g.num_tasks(), 4);
  EXPECT_EQ(g.name(0), "1(1)");
  EXPECT_EQ(g.name(1), "2(1)");
  EXPECT_EQ(g.name(2), "3(1)");
  EXPECT_EQ(g.name(3), "3(2)");
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(ChainsGraphTest, RespectsTaskCap) {
  const auto inst = make_chains_instance(10);
  EXPECT_THROW((void)chains_graph(inst, 100), std::invalid_argument);
  EXPECT_NO_THROW((void)chains_graph(inst));
}

TEST(ChainsGraphTest, AllTasksShareTheLogModel) {
  const auto inst = make_chains_instance(3);
  const auto g = chains_graph(inst);
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(g.model_ptr(v).get(), inst.task_model.get());
    EXPECT_DOUBLE_EQ(g.model_of(v).time(2), 0.5);
  }
}

}  // namespace
}  // namespace moldsched::graph
