#include "moldsched/graph/workflows.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "moldsched/graph/algorithms.hpp"

namespace moldsched::graph {
namespace {

WorkflowModelConfig amdahl_cfg() {
  WorkflowModelConfig c;
  c.kind = model::ModelKind::kAmdahl;
  return c;
}

TEST(WorkflowModelTest, WorkScalesWithRelWork) {
  const auto cfg = amdahl_cfg();
  const auto small = make_workflow_model(cfg, 1.0);
  const auto big = make_workflow_model(cfg, 4.0);
  // Sequential time scales ~4x.
  EXPECT_NEAR(big->time(1) / small->time(1), 4.0, 1e-9);
}

TEST(WorkflowModelTest, ProducesEveryParameterizableKind) {
  for (const auto kind :
       {model::ModelKind::kRoofline, model::ModelKind::kCommunication,
        model::ModelKind::kAmdahl, model::ModelKind::kGeneral}) {
    WorkflowModelConfig cfg;
    cfg.kind = kind;
    const auto m = make_workflow_model(cfg, 2.0);
    EXPECT_EQ(m->kind(), kind);
    EXPECT_GT(m->time(1), 0.0);
  }
}

TEST(WorkflowModelTest, RejectsBadInput) {
  const auto cfg = amdahl_cfg();
  EXPECT_THROW((void)make_workflow_model(cfg, 0.0), std::invalid_argument);
  EXPECT_THROW((void)make_workflow_model(cfg, -1.0), std::invalid_argument);
  WorkflowModelConfig arb;
  arb.kind = model::ModelKind::kArbitrary;
  EXPECT_THROW((void)make_workflow_model(arb, 1.0), std::invalid_argument);
  WorkflowModelConfig bad = amdahl_cfg();
  bad.base_work = 0.0;
  EXPECT_THROW((void)make_workflow_model(bad, 1.0), std::invalid_argument);
}

TEST(CholeskyTest, TaskCountMatchesClosedForm) {
  // Kernel counts for nt tiles: potrf nt, trsm nt(nt-1)/2,
  // syrk nt(nt-1)/2, gemm nt(nt-1)(nt-2)/6.
  for (const int nt : {1, 2, 3, 5}) {
    const auto g = cholesky(nt, amdahl_cfg());
    const int expected = nt + nt * (nt - 1) / 2 + nt * (nt - 1) / 2 +
                         nt * (nt - 1) * (nt - 2) / 6;
    EXPECT_EQ(g.num_tasks(), expected) << "nt=" << nt;
    EXPECT_TRUE(is_acyclic(g));
  }
}

TEST(CholeskyTest, SingleSourceIsFirstPotrf) {
  const auto g = cholesky(4, amdahl_cfg());
  const auto sources = g.sources();
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(g.name(sources[0]), "potrf(0)");
  // Final task: potrf(nt-1) is the unique sink.
  const auto sinks = g.sinks();
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(g.name(sinks[0]), "potrf(3)");
}

TEST(CholeskyTest, CriticalPathGrowsLinearlyInTiles) {
  const auto g3 = cholesky(3, amdahl_cfg());
  const auto g6 = cholesky(6, amdahl_cfg());
  EXPECT_GT(longest_hop_count(g6), longest_hop_count(g3));
}

TEST(LuTest, TaskCountMatchesClosedForm) {
  // getrf nt, trsm 2 * nt(nt-1)/2, gemm sum (nt-1-k)^2.
  for (const int nt : {1, 2, 3, 4}) {
    int gemm = 0;
    for (int k = 0; k < nt; ++k) gemm += (nt - 1 - k) * (nt - 1 - k);
    const int expected = nt + nt * (nt - 1) + gemm;
    const auto g = lu(nt, amdahl_cfg());
    EXPECT_EQ(g.num_tasks(), expected) << "nt=" << nt;
    EXPECT_TRUE(is_acyclic(g));
  }
}

TEST(LuTest, RejectsBadTileCount) {
  EXPECT_THROW((void)lu(0, amdahl_cfg()), std::invalid_argument);
}

TEST(FftTest, ButterflyShape) {
  const int log2n = 3;
  const auto g = fft(log2n, amdahl_cfg());
  const int n = 1 << log2n;
  EXPECT_EQ(g.num_tasks(), n * (log2n + 1));
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_EQ(g.sources().size(), static_cast<std::size_t>(n));
  EXPECT_EQ(g.sinks().size(), static_cast<std::size_t>(n));
  EXPECT_EQ(longest_hop_count(g), log2n + 1);
  // Every non-input task has exactly two predecessors.
  int two_pred = 0;
  for (TaskId v = 0; v < g.num_tasks(); ++v)
    if (g.in_degree(v) == 2) ++two_pred;
  EXPECT_EQ(two_pred, n * log2n);
}

TEST(FftTest, RejectsBadSizes) {
  EXPECT_THROW((void)fft(0, amdahl_cfg()), std::invalid_argument);
  EXPECT_THROW((void)fft(25, amdahl_cfg()), std::invalid_argument);
}

TEST(MontageTest, LayerStructure) {
  const int width = 5;
  const auto g = montage(width, amdahl_cfg());
  // width projections + (width-1) diffs + fit + width backgrounds + coadd.
  EXPECT_EQ(g.num_tasks(), width + (width - 1) + 1 + width + 1);
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_EQ(g.sources().size(), static_cast<std::size_t>(width));
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_THROW((void)montage(1, amdahl_cfg()), std::invalid_argument);
}

TEST(WavefrontTest, GridStructure) {
  const auto g = wavefront(3, 4, amdahl_cfg());
  EXPECT_EQ(g.num_tasks(), 12);
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
  // Longest path: rows + cols - 1 hops.
  EXPECT_EQ(longest_hop_count(g), 3 + 4 - 1);
  EXPECT_THROW((void)wavefront(0, 2, amdahl_cfg()), std::invalid_argument);
}

TEST(WorkflowEdgeCases, MinimalSizesProduceValidGraphs) {
  const auto cfg = amdahl_cfg();
  // The smallest legal instance of every builder is a well-formed DAG.
  const auto chol = cholesky(1, cfg);
  EXPECT_EQ(chol.num_tasks(), 1);
  EXPECT_EQ(chol.num_edges(), 0u);
  const auto l = lu(1, cfg);
  EXPECT_EQ(l.num_tasks(), 1);
  const auto f = fft(1, cfg);
  EXPECT_EQ(f.num_tasks(), 4);  // n = 2 inputs + 2 butterfly outputs
  const auto m = montage(2, cfg);
  EXPECT_EQ(m.num_tasks(), 2 + 1 + 1 + 2 + 1);
  const auto w = wavefront(1, 1, cfg);
  EXPECT_EQ(w.num_tasks(), 1);
  EXPECT_EQ(w.num_edges(), 0u);
  for (const auto* g : {&chol, &l, &f, &m, &w}) EXPECT_TRUE(is_acyclic(*g));
}

TEST(WorkflowEdgeCases, EveryBuilderStreamsInIdOrder) {
  // The scheduling service streams tasks by ascending id, which requires
  // every edge to point from a smaller to a larger id. All workflow
  // builders emit tasks in a topological order, so this is a structural
  // invariant worth pinning.
  const auto cfg = amdahl_cfg();
  const TaskGraph graphs[] = {cholesky(4, cfg), lu(3, cfg), fft(3, cfg),
                              montage(5, cfg), wavefront(4, 5, cfg)};
  for (const auto& g : graphs)
    for (TaskId v = 0; v < g.num_tasks(); ++v)
      for (const TaskId u : g.predecessors(v))
        EXPECT_LT(u, v) << "edge " << u << "->" << v;
}

}  // namespace
}  // namespace moldsched::graph
