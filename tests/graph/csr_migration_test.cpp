// CSR migration equivalence: the structure-of-arrays TaskGraph rebuild
// must be observationally identical to the original pointer-ish
// representation. The golden FNV-1a hashes below were captured from the
// pre-CSR implementation (PR 8 tree) and pin, for every generator
// family, the deterministic workflows, the check:: corpus recipe and the
// frozen opt::small_corpus:
//   * the canonical svc wire bytes of the generated graph, and
//   * the hexfloat canonical schedule produced by Algorithm 1 under LPA.
// A representation change that perturbs adjacency order, model identity,
// task naming or scheduling behavior in any way shows up as a hash diff.
//
// Regenerate (only when *intentionally* changing an instance) with:
//   MOLDSCHED_PRINT_GOLDENS=1 ./moldsched_graph_tests
//     --gtest_filter='CsrMigrationTest.*'
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "moldsched/check/corpus.hpp"
#include "moldsched/check/differential.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/opt/oracle.hpp"
#include "moldsched/svc/wire.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::graph {
namespace {

constexpr int kP = 16;
constexpr double kMu = 0.25;
constexpr std::uint64_t kSeed = 42;

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Every graph the pins cover, as name -> (graph, P, mu). Generators are
/// re-invoked per call with seeds derived exactly like the engine does.
std::vector<std::tuple<std::string, TaskGraph, int, double>> pinned_graphs() {
  std::vector<std::tuple<std::string, TaskGraph, int, double>> out;
  const auto add = [&out](std::string name, TaskGraph g, int P = kP,
                          double mu = kMu) {
    out.emplace_back(std::move(name), std::move(g), P, mu);
  };
  const auto seeded = [](model::ModelKind kind, auto body) {
    const model::ModelSampler sampler(kind);
    util::Rng structure(util::derive_seed(kSeed, 0));
    util::Rng models(util::derive_seed(kSeed, 1));
    return body(sampler, structure, models);
  };
  using model::ModelKind;
  add("chain", seeded(ModelKind::kGeneral, [](const auto& s, auto&, auto& m) {
        return chain(9, sampling_provider(s, m, kP));
      }));
  add("independent",
      seeded(ModelKind::kAmdahl, [](const auto& s, auto&, auto& m) {
        return independent(12, sampling_provider(s, m, kP));
      }));
  add("fork_join",
      seeded(ModelKind::kRoofline, [](const auto& s, auto&, auto& m) {
        return fork_join(3, 4, sampling_provider(s, m, kP));
      }));
  add("diamond",
      seeded(ModelKind::kCommunication, [](const auto& s, auto&, auto& m) {
        return diamond(6, sampling_provider(s, m, kP));
      }));
  add("layered_random",
      seeded(ModelKind::kGeneral, [](const auto& s, auto& r, auto& m) {
        return layered_random(4, 2, 5, 0.4, r, sampling_provider(s, m, kP));
      }));
  add("erdos_renyi_dag",
      seeded(ModelKind::kGeneral, [](const auto& s, auto& r, auto& m) {
        return erdos_renyi_dag(14, 0.3, r, sampling_provider(s, m, kP));
      }));
  add("random_out_tree",
      seeded(ModelKind::kAmdahl, [](const auto& s, auto& r, auto& m) {
        return random_out_tree(13, 3, r, sampling_provider(s, m, kP));
      }));
  add("random_in_tree",
      seeded(ModelKind::kCommunication, [](const auto& s, auto& r, auto& m) {
        return random_in_tree(13, 3, r, sampling_provider(s, m, kP));
      }));
  add("series_parallel",
      seeded(ModelKind::kGeneral, [](const auto& s, auto& r, auto& m) {
        return series_parallel(15, r, sampling_provider(s, m, kP));
      }));
  const WorkflowModelConfig config;
  add("cholesky", cholesky(4, config));
  add("lu", lu(4, config));
  add("fft", fft(3, config));
  add("montage", montage(4, config));
  add("wavefront", wavefront(3, 4, config));
  for (int family = 0; family < check::num_corpus_families(); ++family) {
    util::Rng rng(util::derive_seed(kSeed, 2));
    add("corpus:" + check::corpus_families()[static_cast<std::size_t>(family)],
        check::corpus_graph(family, ModelKind::kGeneral, rng, kP));
  }
  for (auto& inst : opt::small_corpus())
    add("opt:" + inst.name, std::move(inst.graph), inst.P, inst.mu);
  return out;
}

std::map<std::string, std::pair<std::string, std::string>> current_hashes() {
  std::map<std::string, std::pair<std::string, std::string>> out;
  for (const auto& [name, g, P, mu] : pinned_graphs()) {
    const std::string wire = hex64(fnv1a(svc::encode_graph(g)));
    const core::LpaAllocator lpa(mu);
    const auto result = core::schedule_online(g, P, lpa);
    const std::string sched =
        hex64(fnv1a(check::canonical_schedule(result)));
    out.emplace(name, std::make_pair(wire, sched));
  }
  return out;
}

// {name, wire-bytes hash, canonical-schedule hash}; captured pre-CSR.
struct GoldenRow {
  const char* name;
  const char* wire;
  const char* schedule;
};

constexpr GoldenRow kGolden[] = {
    // clang-format off
    {"chain", "0x7412136a5da99508", "0x9d11053d7e4f65fe"},
    {"cholesky", "0x77c440eab25cad5f", "0x9fc28e133ec746f9"},
    {"corpus:chain", "0xf4a5f23476240fff", "0xfb039ec2ec7355a8"},
    {"corpus:diamond", "0xe0b71e98d623403c", "0xf88d773dbf2e35ab"},
    {"corpus:erdos_renyi", "0x114098a383fbcb7e", "0x076ba28920d4dbe0"},
    {"corpus:fork_join", "0xd1ab567ea6e10e4c", "0x0e6fc895af99a8a6"},
    {"corpus:independent", "0xc6b96d7b2cd01786", "0xb077d62b66cd2c90"},
    {"corpus:ingested", "0x19176bf22064f2be", "0x1713b3ce17cd44d3"},
    {"corpus:layered_random", "0xcc1ab8165bb95d82", "0x0750bfd682fc2bbc"},
    {"corpus:random_in_tree", "0x114098a383fbcb7e", "0x076ba28920d4dbe0"},
    {"corpus:random_out_tree", "0x114098a383fbcb7e", "0x076ba28920d4dbe0"},
    {"corpus:series_parallel", "0xf3dfc7e7b0bfcb0e", "0xcecf70192a6a5fa7"},
    {"diamond", "0x00eb3e228d492a9a", "0x135cda35c793181c"},
    {"erdos_renyi_dag", "0x1ba97cbb5ca70e94", "0x78e22ced0d80019d"},
    {"fft", "0xa8f8c2bc71f284af", "0x77c150919c3402ba"},
    {"fork_join", "0x931cb9bf7c0c098c", "0x3c5b7ac566d1287b"},
    {"independent", "0x55e03d3dc99a5ae1", "0xf8ccc2d454cec03d"},
    {"layered_random", "0xa09bb76bd4440bec", "0x7f41409459e8efd0"},
    {"lu", "0xc8b0dbe6f07d37c3", "0x689f05dc49953d86"},
    {"montage", "0x032fbf97cfb95fb8", "0xd01b67b200726aab"},
    {"opt:chain-amdahl", "0xfde5a72935297e16", "0xb3f685ed59f14c54"},
    {"opt:diamond-comm", "0x727a8f2400103a66", "0x0e4175c7dcbba86e"},
    {"opt:forkjoin-roofline", "0xb4232863f4b04331", "0xfff60a14d8020254"},
    {"opt:independent-mixed", "0x8dbf2ea282ca7a7a", "0xb01e3568e0b45d62"},
    {"opt:ladder-general", "0x899a23745b95aa75", "0x947a1f0184862c0b"},
    {"opt:sampled-diamond-amdahl", "0xf6ed0f8c12aa3772", "0x053a8aa721b075cd"},
    {"opt:sampled-er-arbitrary", "0xd8032465418c1696", "0xeed03e28cb89cbe1"},
    {"opt:sampled-forkjoin-amdahl", "0x6c7fc4c0a9c6c9b2", "0x7314544426a9222a"},
    {"opt:sampled-layered-roofline", "0x4128f09388d9c8d4", "0x37004dd3ab5b8c96"},
    {"opt:sampled-outtree-general", "0x30caca4b4fb20542", "0x98e6ee796fa4fc3d"},
    {"opt:sampled-sp-comm", "0x87230dd90ad3d7f3", "0xb326599dfa7bb39e"},
    {"opt:table-tree", "0x02856a6af69558b9", "0x899277a837e641a8"},
    {"random_in_tree", "0xb6602ba4bffb78a7", "0xac092e99766bbb49"},
    {"random_out_tree", "0x93a82b3ee25870fd", "0x11672a54d689181f"},
    {"series_parallel", "0xf4ee5daaf0ca2d6a", "0x92e2e6738b9dda38"},
    {"wavefront", "0x7af143a2ac46f4ad", "0x2fb29917123f84ce"},
    // clang-format on
};

TEST(CsrMigrationTest, WireBytesAndSchedulesMatchPreCsrGoldens) {
  const auto hashes = current_hashes();
  if (std::getenv("MOLDSCHED_PRINT_GOLDENS") != nullptr) {
    for (const auto& [name, pair] : hashes)
      std::cout << "    {\"" << name << "\", \"" << pair.first << "\", \""
                << pair.second << "\"},\n";
    GTEST_SKIP() << "golden print mode";
  }
  ASSERT_NE(std::size(kGolden), 0u)
      << "golden table is empty — regenerate with MOLDSCHED_PRINT_GOLDENS=1";
  std::size_t covered = 0;
  for (const auto& row : kGolden) {
    const auto it = hashes.find(row.name);
    ASSERT_NE(it, hashes.end()) << "pinned instance vanished: " << row.name;
    EXPECT_EQ(it->second.first, row.wire) << row.name << " wire bytes";
    EXPECT_EQ(it->second.second, row.schedule)
        << row.name << " canonical schedule";
    ++covered;
  }
  EXPECT_EQ(covered, hashes.size())
      << "new instance families lack golden pins";
}

TEST(CsrMigrationTest, DifferentialCheckHoldsOnEveryPinnedInstance) {
  for (const auto& [name, g, P, mu] : pinned_graphs()) {
    const auto report = check::differential_check(g, P, mu);
    EXPECT_TRUE(report.ok()) << name << ": " << report.to_string();
  }
}

// The PR 6 generator-determinism regression, extended over the CSR
// builder: interleaving adjacency queries (which force CSR builds)
// with further mutation must not change the final bytes, and a
// pre-sized build must equal the incremental one.
TEST(CsrMigrationTest, InterleavedQueriesDoNotPerturbBytes) {
  const model::ModelSampler sampler(model::ModelKind::kGeneral);
  const auto build = [&sampler](bool interleave) {
    util::Rng models(util::derive_seed(kSeed, 1));
    const auto provider = sampling_provider(sampler, models, kP);
    TaskGraph g;
    std::vector<TaskId> prev;
    for (int layer = 0; layer < 5; ++layer) {
      std::vector<TaskId> cur;
      for (int i = 0; i < 4; ++i) {
        const TaskId v = g.add_task(provider());
        for (const TaskId u : prev) g.add_edge(u, v);
        cur.push_back(v);
      }
      if (interleave) {
        // Adjacency queries mid-build: forces a CSR (re)build per layer.
        for (const TaskId v : cur)
          EXPECT_EQ(static_cast<std::size_t>(g.in_degree(v)),
                    g.predecessors(v).size());
      }
      prev = std::move(cur);
    }
    return svc::encode_graph(g);
  };
  EXPECT_EQ(build(false), build(true));
}

}  // namespace
}  // namespace moldsched::graph
