#include "moldsched/graph/task_graph.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/model/special_models.hpp"

namespace moldsched::graph {
namespace {

model::ModelPtr unit_model() {
  return std::make_shared<model::RooflineModel>(1.0, 1);
}

TEST(TaskGraphTest, AddTaskAssignsSequentialIds) {
  TaskGraph g;
  EXPECT_EQ(g.add_task(unit_model(), "a"), 0);
  EXPECT_EQ(g.add_task(unit_model(), "b"), 1);
  EXPECT_EQ(g.add_task(unit_model()), 2);
  EXPECT_EQ(g.num_tasks(), 3);
  EXPECT_EQ(g.name(0), "a");
  EXPECT_EQ(g.name(2), "task2");  // auto-named
}

TEST(TaskGraphTest, NullModelRejected) {
  TaskGraph g;
  EXPECT_THROW(g.add_task(nullptr), std::invalid_argument);
}

TEST(TaskGraphTest, EdgesTrackPredsAndSuccs) {
  TaskGraph g;
  const auto a = g.add_task(unit_model());
  const auto b = g.add_task(unit_model());
  const auto c = g.add_task(unit_model());
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, c);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(a), 2);
  EXPECT_EQ(g.in_degree(c), 2);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_FALSE(g.has_edge(b, a));
  ASSERT_EQ(g.predecessors(c).size(), 2u);
  EXPECT_EQ(g.predecessors(c)[0], a);
  EXPECT_EQ(g.successors(a)[1], c);
}

TEST(TaskGraphTest, RejectsBadEdges) {
  TaskGraph g;
  const auto a = g.add_task(unit_model());
  const auto b = g.add_task(unit_model());
  EXPECT_THROW(g.add_edge(a, a), std::invalid_argument);   // self-loop
  g.add_edge(a, b);
  EXPECT_THROW(g.add_edge(a, b), std::invalid_argument);   // duplicate
  EXPECT_THROW(g.add_edge(a, 99), std::out_of_range);      // unknown id
  EXPECT_THROW(g.add_edge(-1, b), std::out_of_range);
}

TEST(TaskGraphTest, OutOfRangeAccessThrows) {
  TaskGraph g;
  (void)g.add_task(unit_model());
  EXPECT_THROW((void)g.name(5), std::out_of_range);
  EXPECT_THROW((void)g.model_of(-1), std::out_of_range);
  EXPECT_THROW((void)g.predecessors(1), std::out_of_range);
}

TEST(TaskGraphTest, SourcesAndSinks) {
  TaskGraph g;
  const auto a = g.add_task(unit_model());
  const auto b = g.add_task(unit_model());
  const auto c = g.add_task(unit_model());
  const auto d = g.add_task(unit_model());
  g.add_edge(a, c);
  g.add_edge(b, c);
  g.add_edge(c, d);
  EXPECT_EQ(g.sources(), (std::vector<TaskId>{a, b}));
  EXPECT_EQ(g.sinks(), (std::vector<TaskId>{d}));
}

TEST(TaskGraphTest, ValidateRejectsEmptyGraph) {
  TaskGraph g;
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(TaskGraphTest, ValidateRejectsCycle) {
  TaskGraph g;
  const auto a = g.add_task(unit_model());
  const auto b = g.add_task(unit_model());
  const auto c = g.add_task(unit_model());
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(c, a);
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(TaskGraphTest, ValidateAcceptsDag) {
  TaskGraph g;
  const auto a = g.add_task(unit_model());
  const auto b = g.add_task(unit_model());
  g.add_edge(a, b);
  EXPECT_NO_THROW(g.validate());
}

TEST(TaskGraphTest, ModelAccessors) {
  TaskGraph g;
  const auto m = unit_model();
  const auto a = g.add_task(m);
  EXPECT_EQ(g.model_ptr(a).get(), m.get());
  EXPECT_DOUBLE_EQ(g.model_of(a).time(1), 1.0);
}

}  // namespace
}  // namespace moldsched::graph
