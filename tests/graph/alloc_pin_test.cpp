// Allocation-count pins for the CSR graph build (its own test binary:
// it overrides global operator new/delete to count heap allocations,
// which must not leak into other suites or the sanitizer jobs).
//
// The contract under test: after TaskGraph::reserve (which the
// layered_uniform generator issues from its exact task/edge counts),
// graph construction performs a small fixed number of allocations —
// the reserve calls themselves — and the CSR adjacency build performs
// ZERO. That is what makes the 10^7-task tier build at memory
// bandwidth instead of allocator throughput.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "moldsched/graph/generators.hpp"
#include "moldsched/graph/task_graph.hpp"
#include "moldsched/model/special_models.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<long> g_allocs{0};

}  // namespace

// GCC flags free() inside a replaced operator delete as a mismatched
// pair; the replacement operators below are malloc/free-backed by
// construction, so the diagnostic is a false positive here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace moldsched::graph {
namespace {

/// Runs fn with allocation counting on; returns the number of global
/// operator new calls it made.
template <typename Fn>
long count_allocs(Fn&& fn) {
  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  fn();
  g_counting.store(false, std::memory_order_relaxed);
  return g_allocs.load(std::memory_order_relaxed);
}

TEST(GraphAllocPinTest, ReservedCsrBuildAllocatesNothing) {
  const auto provider =
      constant_provider(std::make_shared<model::RooflineModel>(1.0, 2));
  {
    // Warm-up: the first build in the process registers the
    // graph.build.* metrics, which allocates once. Every later build
    // reuses the cached handles.
    const auto warm = layered_uniform(2, 2, 1, 1, provider);
    warm.build_adjacency();
  }
  const auto g = layered_uniform(10, 100, 2, 42, provider);
  ASSERT_FALSE(g.adjacency_built());
  const long allocs = count_allocs([&g] { g.build_adjacency(); });
  EXPECT_EQ(allocs, 0) << "CSR build should fill pre-reserved arrays only";
  EXPECT_TRUE(g.adjacency_built());
}

TEST(GraphAllocPinTest, ReservedConstructionAllocationCountIsPinned) {
  const auto model = std::make_shared<model::RooflineModel>(1.0, 2);
  const auto provider = constant_provider(model);
  const long allocs = count_allocs([&provider] {
    const auto g = layered_uniform(10, 100, 2, 42, provider);
    if (g.num_tasks() != 1000) std::abort();
  });
  // The pinned budget: 17 TaskGraph::reserve vectors (18 with the
  // std::function provider copy and the generator's pick buffer, minus
  // what small-buffer optimizations elide). The exact number is part of
  // the contract — a regression to per-push growth would blow far past
  // it, and a new per-task allocation would add O(n).
  EXPECT_LE(allocs, 24) << "construction should allocate O(1) blocks";
  EXPECT_GE(allocs, 17) << "reserve() itself allocates the arrays";
}

TEST(GraphAllocPinTest, UnreservedGraphStillBuildsCorrectly) {
  // Sanity: without reserve the build allocates (exact-size arrays) but
  // produces identical adjacency. Guards against the zero-alloc path
  // taking a different code route.
  TaskGraph h;
  const auto m = std::make_shared<model::RooflineModel>(1.0, 2);
  for (int i = 0; i < 4; ++i) h.add_task(m);
  h.add_edge(0, 1);
  h.add_edge(0, 2);
  h.add_edge(1, 3);
  h.add_edge(2, 3);
  const long allocs = count_allocs([&h] { h.build_adjacency(); });
  EXPECT_GT(allocs, 0);
  ASSERT_EQ(h.predecessors(3).size(), 2u);
  EXPECT_EQ(h.predecessors(3)[0], 1);
  EXPECT_EQ(h.predecessors(3)[1], 2);
}

}  // namespace
}  // namespace moldsched::graph
