#include "moldsched/graph/adversary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "moldsched/graph/algorithms.hpp"
#include "moldsched/model/special_models.hpp"

namespace moldsched::graph {
namespace {

constexpr double kMuRoofline = 0.38196601125010515;

TEST(DeltaOfMuTest, KnownValues) {
  // delta((3-sqrt(5))/2) = 1 exactly.
  EXPECT_NEAR(delta_of_mu(kMuRoofline), 1.0, 1e-12);
  // delta(0.25) = 0.5 / (0.25 * 0.75) = 8/3.
  EXPECT_NEAR(delta_of_mu(0.25), 8.0 / 3.0, 1e-12);
}

TEST(DeltaOfMuTest, RejectsOutOfRange) {
  EXPECT_THROW((void)delta_of_mu(0.0), std::invalid_argument);
  EXPECT_THROW((void)delta_of_mu(-0.1), std::invalid_argument);
  EXPECT_THROW((void)delta_of_mu(0.39), std::invalid_argument);
}

TEST(GenericGraphTest, StructureMatchesFigure1) {
  const auto a = std::make_shared<model::RooflineModel>(1.0, 4);
  const auto b = std::make_shared<model::RooflineModel>(2.0, 4);
  const auto c = std::make_shared<model::RooflineModel>(3.0, 4);
  const int X = 3;
  const int Y = 2;
  const auto g = generic_lower_bound_graph(X, Y, a, b, c);

  EXPECT_EQ(g.num_tasks(), (X + 1) * Y + 1);
  // Edges: A_i -> {layer i+1} for i < Y gives (X+1)(Y-1); plus A_Y -> C.
  EXPECT_EQ(g.num_edges(), static_cast<std::size_t>((X + 1) * (Y - 1) + 1));
  // Longest path: A_1, A_2, ..., A_Y, C.
  EXPECT_EQ(longest_hop_count(g), Y + 1);

  // Within each layer, B tasks have smaller ids than the A task.
  // Layer 1: ids 0..X-1 are B, id X is A_1.
  for (int j = 0; j < X; ++j)
    EXPECT_EQ(g.name(j).front(), 'B') << g.name(j);
  EXPECT_EQ(g.name(X), "A1");
  // Layer 2 hangs off A_1.
  EXPECT_EQ(g.out_degree(X), X + 1);
  // C is the last task.
  EXPECT_EQ(g.name(g.num_tasks() - 1), "C");
}

TEST(GenericGraphTest, DegenerateSingleTask) {
  const auto c = std::make_shared<model::RooflineModel>(1.0, 1);
  const auto g = generic_lower_bound_graph(0, 0, nullptr, nullptr, c);
  EXPECT_EQ(g.num_tasks(), 1);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GenericGraphTest, RejectsBadArguments) {
  const auto m = std::make_shared<model::RooflineModel>(1.0, 1);
  EXPECT_THROW((void)generic_lower_bound_graph(-1, 0, m, m, m),
               std::invalid_argument);
  EXPECT_THROW((void)generic_lower_bound_graph(1, 1, nullptr, m, m),
               std::invalid_argument);
  EXPECT_THROW((void)generic_lower_bound_graph(0, 0, nullptr, nullptr, nullptr),
               std::invalid_argument);
}

TEST(RooflineAdversaryTest, SingleTaskInstance) {
  const auto inst = roofline_adversary(100, kMuRoofline);
  EXPECT_EQ(inst.graph.num_tasks(), 1);
  EXPECT_EQ(inst.P, 100);
  EXPECT_DOUBLE_EQ(inst.t_opt_upper, 1.0);
  // ceil(mu * 100) = 39.
  EXPECT_EQ(inst.expected_alloc_c, 39);
  EXPECT_NEAR(inst.predicted_online_makespan, 100.0 / 39.0, 1e-12);
  EXPECT_NEAR(inst.ratio_limit, 1.0 / kMuRoofline, 1e-12);
  EXPECT_THROW((void)roofline_adversary(1, kMuRoofline),
               std::invalid_argument);
}

TEST(CommunicationAdversaryTest, ParametersMatchTheorem6) {
  const double mu = 0.324;
  const int P = 64;
  const auto inst = communication_adversary(P, mu);
  EXPECT_EQ(inst.Y, P - 3);
  EXPECT_EQ(inst.X, static_cast<int>(std::floor((1.0 - mu) * P / 2.0)) + 1);
  EXPECT_EQ(inst.graph.num_tasks(), (inst.X + 1) * inst.Y + 1);
  EXPECT_EQ(inst.expected_alloc_b, 2);
  EXPECT_EQ(inst.expected_alloc_c, 1);
  EXPECT_EQ(inst.expected_alloc_a, static_cast<int>(std::ceil(mu * P)));
  // One layer cannot fit: X * p_B + p_A > P.
  EXPECT_GT(inst.X * inst.expected_alloc_b + inst.expected_alloc_a, P);
  // The online makespan prediction must exceed the alternative schedule.
  EXPECT_GT(inst.predicted_online_makespan, inst.t_opt_upper);
  EXPECT_THROW((void)communication_adversary(3, mu), std::invalid_argument);
}

TEST(CommunicationAdversaryTest, RatioLimitNearPaperValue) {
  // Theorem 6: with mu ~ 0.324 the limit exceeds 3.51.
  const auto inst = communication_adversary(1000, 0.3243);
  EXPECT_GT(inst.ratio_limit, 3.51);
  EXPECT_LT(inst.ratio_limit, 3.6);
}

TEST(AmdahlAdversaryTest, ParametersMatchTheorem7) {
  const double mu = 0.271;
  const int K = 12;
  const auto inst = amdahl_adversary(K, mu);
  EXPECT_EQ(inst.P, K * K);
  EXPECT_EQ(inst.expected_alloc_c, 1);
  EXPECT_GE(inst.Y, 1);
  // p_B stays within the proof's window [K/(delta-1) - 2, K/(delta-1) + 1].
  const double center = K / (inst.delta - 1.0);
  EXPECT_GE(inst.expected_alloc_b, center - 2.0 - 1e-9);
  EXPECT_LE(inst.expected_alloc_b, center + 1.0 + 1e-9);
  // Layers don't fit in parallel.
  EXPECT_GT(inst.X * inst.expected_alloc_b + inst.expected_alloc_a, inst.P);
  // The alternative schedule really fits: X*Y B-tasks + C in parallel.
  const int p_c_alt = static_cast<int>(std::ceil((inst.delta - 1.0) * K));
  EXPECT_LE(static_cast<long>(inst.X) * inst.Y + p_c_alt,
            static_cast<long>(inst.P));
  EXPECT_THROW((void)amdahl_adversary(3, mu), std::invalid_argument);
}

TEST(AmdahlAdversaryTest, RatioLimitNearPaperValue) {
  const auto inst = amdahl_adversary(30, 0.271);
  EXPECT_GT(inst.ratio_limit, 4.73);
  EXPECT_LT(inst.ratio_limit, 4.8);
}

TEST(GeneralAdversaryTest, ParametersMatchTheorem8) {
  const double mu = 0.211;
  const int K = 12;
  const auto inst = general_adversary(K, mu);
  EXPECT_EQ(inst.P, K * K);
  // 5*delta - 2*delta^2 - 2 <= 0 must hold for the construction.
  const double d = inst.delta;
  EXPECT_LE(5.0 * d - 2.0 * d * d - 2.0, 1e-9);
  EXPECT_GT(inst.ratio_limit, 5.25);
  EXPECT_LT(inst.ratio_limit, 5.3);
  // Models are tagged as the general family.
  EXPECT_EQ(inst.graph.model_of(inst.graph.num_tasks() - 1).kind(),
            model::ModelKind::kGeneral);
}

TEST(AdversaryTest, WorstCaseQueueOrderBTasksFirst) {
  const auto inst = communication_adversary(16, 0.324);
  // In every layer the B tasks must carry smaller ids than the A task so
  // FIFO list scheduling serves them first.
  int layer_base = 0;
  for (int layer = 1; layer <= inst.Y; ++layer) {
    for (int j = 0; j < inst.X; ++j)
      EXPECT_EQ(inst.graph.name(layer_base + j).front(), 'B');
    EXPECT_EQ(inst.graph.name(layer_base + inst.X).front(), 'A');
    layer_base += inst.X + 1;
  }
}

TEST(AdversaryTest, EveryAdversaryStreamsInIdOrder) {
  // The scheduling service streams tasks by ascending id; every Figure
  // 1-4 adversary must therefore emit edges from smaller to larger ids.
  const TaskGraph graphs[] = {
      roofline_adversary(16, 0.25).graph,
      communication_adversary(16, 0.3).graph,
      amdahl_adversary(5, 0.25).graph,
      general_adversary(5, 0.25).graph,
  };
  for (const auto& g : graphs)
    for (TaskId v = 0; v < g.num_tasks(); ++v)
      for (const TaskId u : g.predecessors(v))
        EXPECT_LT(u, v) << "edge " << u << "->" << v;
}

}  // namespace
}  // namespace moldsched::graph
