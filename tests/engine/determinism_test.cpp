// The engine's determinism contract: a suite's canonical results depend
// only on (suite, base_seed, repeats) — never on the thread count, the
// execution order, or a --filter that removed other jobs.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "moldsched/engine/engine.hpp"

namespace moldsched::engine {
namespace {

std::string temp_jsonl(const std::string& tag) {
  return testing::TempDir() + "/moldsched_determinism_" + tag + ".jsonl";
}

SuiteReport run_quiet(const std::string& suite, unsigned threads,
                      std::uint64_t base_seed, const std::string& tag,
                      const std::string& filter = "") {
  SuiteOptions options;
  options.threads = threads;
  options.repeats = 1;
  options.base_seed = base_seed;
  options.filter = filter;
  // Unique per (tag, seed): ctest -j runs parameterized instances as
  // concurrent processes that must not share a JSONL file.
  options.jsonl_path = temp_jsonl(tag + "_" + std::to_string(base_seed));
  options.write_outputs = false;  // JSONL only; no results/*.csv
  auto report = run_suite(suite, options);
  std::filesystem::remove(options.jsonl_path);
  return report;
}

class DeterminismTest : public testing::TestWithParam<std::uint64_t> {};

// The ISSUE's property: byte-identical sorted canonical JSONL at one
// thread and at several, across base seeds. "release" exercises the
// seed-derivation path (arrival streams are drawn per job), "resilience"
// the per-job failure seeds.
TEST_P(DeterminismTest, ReleaseSuiteIsThreadCountInvariant) {
  const std::uint64_t seed = GetParam();
  const auto serial = run_quiet("release", 1, seed, "rel_serial");
  const auto parallel = run_quiet("release", 4, seed, "rel_parallel");
  ASSERT_EQ(serial.records.size(), parallel.records.size());
  EXPECT_GT(serial.ok, 0u);
  EXPECT_EQ(sorted_canonical_jsonl(serial.records),
            sorted_canonical_jsonl(parallel.records));
}

TEST_P(DeterminismTest, ResilienceSuiteIsThreadCountInvariant) {
  const std::uint64_t seed = GetParam();
  const auto serial = run_quiet("resilience", 1, seed, "res_serial");
  const auto parallel = run_quiet("resilience", 4, seed, "res_parallel");
  EXPECT_GT(serial.ok, 0u);
  EXPECT_EQ(sorted_canonical_jsonl(serial.records),
            sorted_canonical_jsonl(parallel.records));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest,
                         testing::Values(1234ULL, 99ULL, 31337ULL));

TEST(DeterminismTest, FilteredRunMatchesTheFullRunsSubset) {
  const auto full = run_quiet("release", 2, 1234, "full");
  const auto filtered =
      run_quiet("release", 2, 1234, "filtered", "rate@0.2/lpa");
  ASSERT_FALSE(filtered.records.empty());
  ASSERT_LT(filtered.records.size(), full.records.size());
  std::map<std::uint64_t, std::string> by_id;
  for (const auto& rec : full.records)
    by_id[rec.spec.job_id] = rec.canonical_json();
  for (const auto& rec : filtered.records) {
    ASSERT_TRUE(by_id.count(rec.spec.job_id));
    EXPECT_EQ(rec.canonical_json(), by_id[rec.spec.job_id]);
  }
}

TEST(DeterminismTest, DifferentSeedsProduceDifferentResults) {
  const auto a = run_quiet("release", 2, 1, "seed_a");
  const auto b = run_quiet("release", 2, 2, "seed_b");
  EXPECT_NE(sorted_canonical_jsonl(a.records),
            sorted_canonical_jsonl(b.records));
}

TEST(RunJobsTest, JobTimeoutMarksSlowJobs) {
  JobGrid grid;
  grid.suite = "slow";
  grid.instances = {"sleepy", "quick"};
  auto jobs = grid.jobs();

  RunOptions options;
  options.threads = 1;
  options.job_timeout_s = 0.02;
  const auto records = run_jobs(
      jobs,
      [](const JobSpec& spec, const CancelToken& token) {
        JobRecord rec;
        rec.spec = spec;
        if (spec.instance == "sleepy") {
          // Cooperative loop: poll the token as compute jobs would.
          while (!token.cancelled())
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          EXPECT_LE(token.seconds_left(), 0.0);
        }
        rec.set("x", 1.0);
        return rec;
      },
      options);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].status, "timeout");
  EXPECT_GE(records[0].wall_ms, 20.0);
  EXPECT_EQ(records[1].status, "ok");
}

TEST(RunJobsTest, ExhaustedBudgetCancelsRemainingJobs) {
  JobGrid grid;
  grid.suite = "budget";
  grid.instances = {"a", "b", "c", "d"};
  auto jobs = grid.jobs();

  RunOptions options;
  options.threads = 1;
  options.total_budget_s = 1e-9;  // expires before any job starts
  const auto records = run_jobs(
      jobs,
      [](const JobSpec& spec, const CancelToken&) {
        JobRecord rec;
        rec.spec = spec;
        return rec;
      },
      options);
  for (const auto& rec : records) EXPECT_EQ(rec.status, "cancelled");
}

TEST(RunJobsTest, RunnerExceptionsBecomeErrorRecords) {
  JobGrid grid;
  grid.suite = "err";
  grid.instances = {"bad", "good"};
  std::size_t progress_calls = 0;
  RunOptions options;
  options.threads = 1;
  options.progress = [&](const JobRecord&, std::size_t, std::size_t) {
    ++progress_calls;
  };
  const auto records = run_jobs(
      grid.jobs(),
      [](const JobSpec& spec, const CancelToken&) -> JobRecord {
        if (spec.instance == "bad")
          throw std::runtime_error("deliberate failure");
        JobRecord rec;
        rec.spec = spec;
        return rec;
      },
      options);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].status, "error");
  EXPECT_EQ(records[0].error, "deliberate failure");
  EXPECT_EQ(records[1].status, "ok");
  EXPECT_EQ(progress_calls, 2u);
}

TEST(SuiteRegistryTest, AllSuitesAreListedAndBuildJobs) {
  const auto& infos = suites();
  ASSERT_GE(infos.size(), 6u);
  for (const auto& info : infos) {
    EXPECT_TRUE(has_suite(info.name));
    EXPECT_FALSE(info.description.empty());
    EXPECT_FALSE(suite_jobs(info.name).empty()) << info.name;
  }
  EXPECT_FALSE(has_suite("nope"));
  EXPECT_THROW((void)suite_jobs("nope"), std::invalid_argument);
  try {
    SuiteOptions options;
    (void)run_suite("nope", options);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("table1"), std::string::npos)
        << "error should list the known suites: " << e.what();
  }
}

}  // namespace
}  // namespace moldsched::engine
