#include "moldsched/engine/result_sink.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace moldsched::engine {
namespace {

JobRecord sample_record(std::uint64_t id = 3) {
  JobRecord rec;
  rec.spec.job_id = id;
  rec.spec.suite = "demo";
  rec.spec.instance = "layered";
  rec.spec.scheduler = "lpa";
  rec.spec.model = model::ModelKind::kAmdahl;
  rec.spec.P = 32;
  rec.spec.param = 7;
  rec.spec.repeat = 2;
  rec.spec.seed = 18446744073709551557ULL;  // needs full uint64 precision
  rec.set("makespan", 123.4567890123456789);
  rec.set("ratio", 1.0 / 3.0);
  rec.wall_ms = 42.5;
  return rec;
}

TEST(JobRecordTest, SetOverwritesAndMetricLooksUp) {
  JobRecord rec;
  rec.set("x", 1.0);
  rec.set("y", 2.0);
  rec.set("x", 3.0);
  ASSERT_EQ(rec.metrics.size(), 2u);
  EXPECT_EQ(rec.metrics[0].first, "x");  // order preserved on overwrite
  EXPECT_EQ(rec.metric("x"), 3.0);
  EXPECT_EQ(rec.metric("y"), 2.0);
  EXPECT_FALSE(rec.metric("z").has_value());
}

TEST(JobRecordTest, JsonRoundTripPreservesEverything) {
  const auto rec = sample_record();
  const auto line = rec.to_json();
  EXPECT_EQ(validate_record_line(line), std::nullopt)
      << *validate_record_line(line);

  const auto back = parse_record_line(line);
  EXPECT_EQ(back.spec.job_id, rec.spec.job_id);
  EXPECT_EQ(back.spec.suite, rec.spec.suite);
  EXPECT_EQ(back.spec.instance, rec.spec.instance);
  EXPECT_EQ(back.spec.scheduler, rec.spec.scheduler);
  EXPECT_EQ(back.spec.model, rec.spec.model);
  EXPECT_EQ(back.spec.P, rec.spec.P);
  EXPECT_EQ(back.spec.param, rec.spec.param);
  EXPECT_EQ(back.spec.repeat, rec.spec.repeat);
  EXPECT_EQ(back.spec.seed, rec.spec.seed);  // no double round-trip loss
  EXPECT_EQ(back.status, "ok");
  ASSERT_EQ(back.metrics.size(), rec.metrics.size());
  for (std::size_t i = 0; i < rec.metrics.size(); ++i) {
    EXPECT_EQ(back.metrics[i].first, rec.metrics[i].first);
    // %.17g is exact for doubles.
    EXPECT_EQ(back.metrics[i].second, rec.metrics[i].second);
  }
  EXPECT_DOUBLE_EQ(back.wall_ms, rec.wall_ms);
}

TEST(JobRecordTest, ErrorRecordsCarryTheMessage) {
  JobRecord rec = sample_record();
  rec.status = "error";
  rec.error = "bad \"quote\" and \\ backslash\nnewline";
  const auto back = parse_record_line(rec.to_json());
  EXPECT_EQ(back.status, "error");
  EXPECT_EQ(back.error, rec.error);
}

TEST(JobRecordTest, CanonicalJsonOmitsTiming) {
  const auto rec = sample_record();
  EXPECT_NE(rec.to_json().find("wall_ms"), std::string::npos);
  EXPECT_EQ(rec.canonical_json().find("wall_ms"), std::string::npos);

  JobRecord slower = rec;
  slower.wall_ms = 9999.0;
  EXPECT_EQ(rec.canonical_json(), slower.canonical_json());
  EXPECT_NE(rec.to_json(), slower.to_json());
}

TEST(ValidateRecordLineTest, RejectsMalformedInput) {
  EXPECT_NE(validate_record_line(""), std::nullopt);
  EXPECT_NE(validate_record_line("not json"), std::nullopt);
  EXPECT_NE(validate_record_line("{}"), std::nullopt);
  // Truncated line, as a crash mid-append would leave behind.
  const auto full = sample_record().to_json();
  EXPECT_NE(validate_record_line(full.substr(0, full.size() / 2)),
            std::nullopt);
  // Unknown status.
  JobRecord rec = sample_record();
  rec.status = "exploded";
  EXPECT_NE(validate_record_line(rec.to_json()), std::nullopt);
  EXPECT_THROW((void)parse_record_line("{}"), std::invalid_argument);
}

TEST(SortedCanonicalJsonlTest, SortsByJobIdAndIsOrderInvariant) {
  std::vector<JobRecord> a = {sample_record(5), sample_record(1),
                              sample_record(9)};
  std::vector<JobRecord> b = {a[2], a[0], a[1]};
  b[0].wall_ms = 1.0;  // timing noise must not affect the canonical form
  const auto ja = sorted_canonical_jsonl(a);
  EXPECT_EQ(ja, sorted_canonical_jsonl(b));
  const auto first_id = ja.find("\"job_id\":1");
  const auto second_id = ja.find("\"job_id\":5");
  const auto third_id = ja.find("\"job_id\":9");
  EXPECT_LT(first_id, second_id);
  EXPECT_LT(second_id, third_id);
  EXPECT_EQ(ja.back(), '\n');
}

TEST(JsonlSinkTest, AppendsFlushedValidLines) {
  const std::string path =
      testing::TempDir() + "/moldsched_sink_test.jsonl";
  std::filesystem::remove(path);
  {
    JsonlSink sink(path);
    sink.write(sample_record(0));
    sink.write(sample_record(1));
    EXPECT_EQ(sink.lines_written(), 2u);
  }
  {
    JsonlSink sink(path);  // append mode by default
    sink.write(sample_record(2));
  }
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(validate_record_line(line), std::nullopt) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 3u);

  JsonlSink truncating(path, /*truncate=*/true);
  truncating.write(sample_record(7));
  std::ifstream in2(path);
  lines = 0;
  while (std::getline(in2, line)) ++lines;
  EXPECT_EQ(lines, 1u);
  std::filesystem::remove(path);
}

TEST(SummarizeMetricTest, GroupsBySchedulerInFirstSeenOrder) {
  std::vector<JobRecord> records;
  for (int i = 0; i < 6; ++i) {
    JobRecord rec = sample_record(static_cast<std::uint64_t>(i));
    rec.spec.scheduler = i % 2 == 0 ? "lpa" : "min-time";
    rec.metrics.clear();
    rec.set("ratio", 1.0 + i);
    records.push_back(std::move(rec));
  }
  records[5].status = "error";  // excluded from aggregation

  const auto summaries = summarize_metric(records, "ratio");
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].group, "lpa");
  EXPECT_EQ(summaries[0].count, 3u);
  EXPECT_DOUBLE_EQ(summaries[0].mean, (1.0 + 3.0 + 5.0) / 3.0);
  EXPECT_DOUBLE_EQ(summaries[0].min, 1.0);
  EXPECT_DOUBLE_EQ(summaries[0].max, 5.0);
  EXPECT_GT(summaries[0].ci95, 0.0);
  EXPECT_EQ(summaries[1].group, "min-time");
  EXPECT_EQ(summaries[1].count, 2u);

  const auto table = summary_table(summaries, "Scheduler", "ratio");
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_NE(table.to_csv().find("lpa"), std::string::npos);
}

}  // namespace
}  // namespace moldsched::engine
