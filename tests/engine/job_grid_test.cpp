#include "moldsched/engine/job.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "moldsched/util/rng.hpp"

namespace moldsched::engine {
namespace {

JobGrid sample_grid() {
  JobGrid grid;
  grid.suite = "demo";
  grid.instances = {"a", "b", "c"};
  grid.schedulers = {"lpa", "min-time"};
  grid.models = {model::ModelKind::kRoofline, model::ModelKind::kAmdahl};
  grid.procs = {8, 32};
  grid.repeats = 3;
  grid.base_seed = 42;
  return grid;
}

TEST(JobGridTest, SizeIsTheProductOfAllAxes) {
  EXPECT_EQ(sample_grid().size(), 3u * 2u * 2u * 2u * 3u);
}

TEST(JobGridTest, EmptyAxesContributeOneNeutralValue) {
  JobGrid grid;
  grid.suite = "minimal";
  grid.instances = {"only"};
  EXPECT_EQ(grid.size(), 1u);
  const auto spec = grid.at(0);
  EXPECT_EQ(spec.instance, "only");
  EXPECT_EQ(spec.scheduler, "");
  EXPECT_EQ(spec.repeat, 0);
}

TEST(JobGridTest, AtEnumeratesRepeatFastestModelSlowest) {
  const auto grid = sample_grid();
  const auto first = grid.at(0);
  const auto second = grid.at(1);
  EXPECT_EQ(second.repeat, first.repeat + 1);
  EXPECT_EQ(second.instance, first.instance);
  EXPECT_EQ(second.model, first.model);

  const std::size_t half = grid.size() / 2;
  EXPECT_NE(grid.at(0).model, grid.at(half).model);
}

TEST(JobGridTest, AtIsPureAndIdsAreStable) {
  const auto grid = sample_grid();
  const auto jobs = grid.jobs();
  ASSERT_EQ(jobs.size(), grid.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].job_id, i);
    const auto again = grid.at(i);
    EXPECT_EQ(again.key(), jobs[i].key());
    EXPECT_EQ(again.seed, jobs[i].seed);
  }
}

TEST(JobGridTest, SeedsAreDistinctAndDerivedFromIdOnly) {
  const auto grid = sample_grid();
  std::set<std::uint64_t> seeds;
  for (const auto& job : grid.jobs()) {
    EXPECT_EQ(job.seed, JobGrid::derive_seed(grid.base_seed, job.job_id));
    seeds.insert(job.seed);
  }
  EXPECT_EQ(seeds.size(), grid.size()) << "seed collision";
}

TEST(JobGridTest, DeriveSeedIsAFixedFunction) {
  // Golden values: the derivation must stay stable across releases, or
  // recorded experiments stop being reproducible.
  EXPECT_EQ(JobGrid::derive_seed(0, 0), 16294208416658607535ULL);
  EXPECT_EQ(JobGrid::derive_seed(1234, 0),
            JobGrid::derive_seed(1234, 0));
  EXPECT_NE(JobGrid::derive_seed(1234, 0), JobGrid::derive_seed(1234, 1));
  EXPECT_NE(JobGrid::derive_seed(1234, 0), JobGrid::derive_seed(1235, 0));
}

TEST(JobGridTest, FilterKeepsOriginalIdsAndSeeds) {
  const auto grid = sample_grid();
  const auto all = grid.jobs();
  const auto filtered = grid.jobs_matching("b/min-time");
  ASSERT_FALSE(filtered.empty());
  EXPECT_LT(filtered.size(), all.size());
  for (const auto& job : filtered) {
    EXPECT_NE(job.key().find("b/min-time"), std::string::npos);
    EXPECT_EQ(job.seed, all[job.job_id].seed);
    EXPECT_EQ(job.key(), all[job.job_id].key());
  }
  EXPECT_EQ(grid.jobs_matching("").size(), all.size());
  EXPECT_TRUE(grid.jobs_matching("no-such-job").empty());
}

TEST(JobGridTest, KeyMentionsEveryDistinguishingAxis) {
  const auto grid = sample_grid();
  std::set<std::string> keys;
  for (const auto& job : grid.jobs())
    EXPECT_TRUE(keys.insert(job.key()).second)
        << "duplicate key " << job.key();
}

TEST(JobGridTest, InvalidRepeatsThrow) {
  auto grid = sample_grid();
  grid.repeats = 0;
  EXPECT_THROW((void)grid.size(), std::invalid_argument);
  EXPECT_THROW((void)grid.jobs(), std::invalid_argument);
}

TEST(JobGridTest, AtOutOfRangeThrows) {
  const auto grid = sample_grid();
  EXPECT_THROW((void)grid.at(grid.size()), std::out_of_range);
}

TEST(JobGridTest, DeriveSeedMatchesTheSharedUtilMix) {
  // JobGrid::derive_seed delegates to util::derive_seed; recorded job
  // seeds in resumable JSONL files depend on the two staying identical.
  for (std::uint64_t base : {0ULL, 42ULL, 0x9e3779b97f4a7c15ULL})
    for (std::uint64_t id = 0; id < 64; ++id)
      EXPECT_EQ(JobGrid::derive_seed(base, id), util::derive_seed(base, id))
          << base << "/" << id;
}

}  // namespace
}  // namespace moldsched::engine
