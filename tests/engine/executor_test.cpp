#include "moldsched/engine/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace moldsched::engine {
namespace {

TEST(CancelTokenTest, DefaultNeverCancels) {
  const CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.seconds_left(), std::numeric_limits<double>::infinity());
}

TEST(CancelTokenTest, RequestCancelIsSharedAcrossCopies) {
  const CancelToken token;
  const CancelToken copy = token;
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(copy.cancelled());
  EXPECT_EQ(copy.seconds_left(), 0.0);
}

TEST(CancelTokenTest, ExpiredDeadlineCancels) {
  const auto token = CancelToken::deadline_in(-1.0);
  EXPECT_TRUE(token.cancelled());
  EXPECT_LE(token.seconds_left(), 0.0);
}

TEST(CancelTokenTest, FutureDeadlineDoesNotCancelYet) {
  const auto token = CancelToken::deadline_in(3600.0);
  EXPECT_FALSE(token.cancelled());
  EXPECT_GT(token.seconds_left(), 3000.0);
}

TEST(CancelTokenTest, ParentCancellationPropagates) {
  const CancelToken parent;
  const auto child = CancelToken::deadline_in(3600.0, parent);
  EXPECT_FALSE(child.cancelled());
  parent.request_cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(CancelToken::deadline_in(3600.0).cancelled());
}

TEST(ExecutorTest, ExplicitThreadCountIsHonoured) {
  Executor pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(ExecutorTest, SubmitAndWaitIdleRunsEverything) {
  Executor pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_GE(pool.tasks_executed(), 100u);
}

TEST(ExecutorTest, TasksSeeWorkerThreadFlag) {
  Executor pool(2);
  std::atomic<bool> on_worker{false};
  pool.submit([&] { on_worker.store(pool.on_worker_thread()); });
  pool.wait_idle();
  EXPECT_TRUE(on_worker.load());
}

TEST(ExecutorTest, ParallelForCoversEveryIndexExactlyOnce) {
  Executor pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ExecutorTest, ParallelForExplicitChunking) {
  Executor pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); }, 4,
                    /*chunk=*/7);
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, 100);
}

TEST(ExecutorTest, ParallelForSerialWhenOneWorker) {
  Executor pool(4);
  std::vector<int> order;
  pool.parallel_for(10, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  }, 1);
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ExecutorTest, ParallelForRethrowsFirstExceptionInIterationOrder) {
  Executor pool(4);
  try {
    pool.parallel_for(64, [](std::size_t i) {
      if (i == 7 || i == 23 || i == 55)
        throw std::runtime_error("boom at " + std::to_string(i));
    }, 4, /*chunk=*/1);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 7");
  }
}

TEST(ExecutorTest, NestedParallelForFromWorkerDoesNotDeadlock) {
  Executor pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { counter.fetch_add(1); }, 2);
  }, 2);
  EXPECT_EQ(counter.load(), 32);
}

TEST(ExecutorTest, GlobalPoolIsASingleton) {
  EXPECT_EQ(&Executor::global(), &Executor::global());
  EXPECT_GE(Executor::global().thread_count(), 1u);
}

TEST(ExecutorTest, EmptyFunctionThrows) {
  Executor pool(2);
  EXPECT_THROW(pool.parallel_for(3, nullptr), std::invalid_argument);
  EXPECT_THROW(pool.submit(nullptr), std::invalid_argument);
}

TEST(ExecutorTest, ZeroCountIsANoOp) {
  Executor pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace moldsched::engine
