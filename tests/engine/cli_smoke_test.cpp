// End-to-end smoke test of the moldsched_run CLI: runs the table1 suite
// in a scratch directory, validates every JSONL record against the
// schema, and checks the generated table1.csv against the committed
// reference within 1e-9.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "moldsched/engine/result_sink.hpp"
#include "moldsched/io/json.hpp"
#include "moldsched/obs/trace_writer.hpp"

namespace moldsched::engine {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Splits one CSV line; the table1 CSV has no quoted cells.
std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, ',')) out.push_back(cell);
  return out;
}

class CliSmokeTest : public testing::Test {
 protected:
  void SetUp() override {
    // One scratch dir per test: ctest -j runs these processes
    // concurrently, and they must not clobber each other's results.
    const auto* info = testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(testing::TempDir()) /
           (std::string("moldsched_cli_smoke_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] int run_cli(const std::string& args) const {
    const std::string cmd = std::string(MOLDSCHED_RUN_BINARY) + " " + args +
                            " --results-dir=" + (dir_ / "results").string() +
                            " > " + (dir_ / "stdout.log").string() + " 2> " +
                            (dir_ / "stderr.log").string();
    return std::system(cmd.c_str());
  }

  fs::path dir_;
};

TEST_F(CliSmokeTest, Table1SuiteEndToEnd) {
  ASSERT_EQ(run_cli("--suite table1 --repeats 1 --threads 2"), 0)
      << read_file(dir_ / "stderr.log");

  // Every JSONL line satisfies the record schema and succeeded.
  std::ifstream jsonl(dir_ / "results" / "table1.jsonl");
  ASSERT_TRUE(jsonl.is_open());
  std::string line;
  std::size_t records = 0;
  while (std::getline(jsonl, line)) {
    const auto problem = validate_record_line(line);
    EXPECT_EQ(problem, std::nullopt) << line;
    if (!problem) {
      const auto rec = parse_record_line(line);
      EXPECT_EQ(rec.status, "ok") << rec.error;
      EXPECT_EQ(rec.spec.suite, "table1");
    }
    ++records;
  }
  EXPECT_EQ(records, 32u);

  // The perf record exists and is non-trivial.
  const auto bench = read_file(dir_ / "results" / "BENCH_table1.json");
  EXPECT_NE(bench.find("\"suite\": \"table1\""), std::string::npos);
  EXPECT_NE(bench.find("\"ok\": 32"), std::string::npos);

  // The regenerated Table 1 matches the committed reference within 1e-9.
  std::ifstream got(dir_ / "results" / "table1.csv");
  std::ifstream want(fs::path(MOLDSCHED_SOURCE_DIR) / "results" /
                     "table1.csv");
  ASSERT_TRUE(got.is_open());
  ASSERT_TRUE(want.is_open());
  std::string got_line, want_line;
  std::size_t rows = 0;
  while (std::getline(want, want_line)) {
    ASSERT_TRUE(static_cast<bool>(std::getline(got, got_line)))
        << "generated CSV is shorter than the reference";
    const auto got_cells = split_csv_line(got_line);
    const auto want_cells = split_csv_line(want_line);
    ASSERT_EQ(got_cells.size(), want_cells.size()) << want_line;
    for (std::size_t c = 0; c < want_cells.size(); ++c) {
      char* end = nullptr;
      const double expected = std::strtod(want_cells[c].c_str(), &end);
      if (end == want_cells[c].c_str() + want_cells[c].size() &&
          !want_cells[c].empty()) {
        EXPECT_NEAR(std::strtod(got_cells[c].c_str(), nullptr), expected,
                    1e-9)
            << "row " << rows << " column " << c;
      } else {
        EXPECT_EQ(got_cells[c], want_cells[c]);
      }
    }
    ++rows;
  }
  EXPECT_FALSE(static_cast<bool>(std::getline(got, got_line)))
      << "generated CSV is longer than the reference";
  EXPECT_EQ(rows, 5u);  // header + four model rows
}

TEST_F(CliSmokeTest, ListAndDryRunModes) {
  ASSERT_EQ(run_cli("--list"), 0);
  const auto listing = read_file(dir_ / "stdout.log");
  for (const char* name : {"table1", "ratio-curves", "random-dags",
                           "workflows", "resilience", "selfcheck", "release",
                           "pisa", "exact", "ingest"})
    EXPECT_NE(listing.find(name), std::string::npos) << name;

  ASSERT_EQ(run_cli("--suite release --dry-run --repeats 1"), 0);
  const auto plan = read_file(dir_ / "stdout.log");
  EXPECT_NE(plan.find("# release: 48 job(s)"), std::string::npos) << plan;
}

TEST_F(CliSmokeTest, SelfcheckSuiteEndToEnd) {
  ASSERT_EQ(run_cli("--suite selfcheck --repeats 1 --threads 2"), 0)
      << read_file(dir_ / "stderr.log");

  // 10 corpus families x 5 model kinds x 1 repeat, all differentially
  // verified with zero mismatches.
  std::ifstream jsonl(dir_ / "results" / "selfcheck.jsonl");
  ASSERT_TRUE(jsonl.is_open());
  std::string line;
  std::size_t records = 0;
  while (std::getline(jsonl, line)) {
    const auto problem = validate_record_line(line);
    EXPECT_EQ(problem, std::nullopt) << line;
    if (!problem) {
      const auto rec = parse_record_line(line);
      EXPECT_EQ(rec.status, "ok") << rec.error;
      EXPECT_EQ(rec.spec.suite, "selfcheck");
      bool saw_mismatch_metric = false;
      for (const auto& [name, value] : rec.metrics) {
        if (name == "mismatches") {
          saw_mismatch_metric = true;
          EXPECT_EQ(value, 0.0) << line;
        }
      }
      EXPECT_TRUE(saw_mismatch_metric) << line;
    }
    ++records;
  }
  EXPECT_EQ(records, 50u);

  // The per-kind summary table was generated.
  const auto csv = read_file(dir_ / "results" / "selfcheck.csv");
  EXPECT_NE(csv.find("model"), std::string::npos);
  EXPECT_NE(csv.find("arbitrary"), std::string::npos);
}

TEST_F(CliSmokeTest, BenchHotPathsEmitsParseableJson) {
  const auto out = (dir_ / "BENCH_hotpaths.json").string();
  const std::string cmd = std::string(MOLDSCHED_BENCH_HOTPATHS_BINARY) +
                          " --rounds 1 --reuse 1 --out " + out + " > " +
                          (dir_ / "stdout.log").string() + " 2> " +
                          (dir_ / "stderr.log").string();
  ASSERT_EQ(std::system(cmd.c_str()), 0) << read_file(dir_ / "stderr.log");

  const auto doc = io::parse_json(read_file(out));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("bench").string, "hotpaths");
  const auto& entries = doc.at("entries");
  ASSERT_TRUE(entries.is_array());
  ASSERT_EQ(entries.array.size(), 4u);
  bool saw_random_dags = false;
  for (const auto& entry : entries.array) {
    EXPECT_TRUE(entry.at("name").is_string());
    EXPECT_TRUE(entry.at("speedup").is_number());
    EXPECT_GT(entry.at("baseline_ns_per_op").number, 0.0);
    EXPECT_GT(entry.at("optimized_ns_per_op").number, 0.0);
    if (entry.at("name").string == "allocator_random_dags")
      saw_random_dags = true;
  }
  EXPECT_TRUE(saw_random_dags);
}

TEST_F(CliSmokeTest, UnknownSuiteFailsWithUsage) {
  EXPECT_NE(run_cli("--suite no-such-suite"), 0);
  const auto err = read_file(dir_ / "stderr.log");
  EXPECT_NE(err.find("unknown suite"), std::string::npos);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST_F(CliSmokeTest, FilterRunsASubsetAndResumeSkipsIt) {
  ASSERT_EQ(run_cli("--suite workflows --filter cholesky --no-outputs"), 0);
  std::ifstream jsonl(dir_ / "results" / "workflows.jsonl");
  std::string line;
  std::size_t records = 0;
  while (std::getline(jsonl, line)) {
    const auto rec = parse_record_line(line);
    EXPECT_EQ(rec.spec.instance, "cholesky");
    ++records;
  }
  EXPECT_EQ(records, 16u);  // 4 models x 4 schedulers

  // --resume re-runs nothing: all jobs are already ok in the JSONL.
  ASSERT_EQ(
      run_cli("--suite workflows --filter cholesky --no-outputs --resume"),
      0);
  const auto log = read_file(dir_ / "stdout.log");
  EXPECT_NE(log.find("16 resumed"), std::string::npos) << log;
}

TEST_F(CliSmokeTest, TraceAndMetricsExportsValidate) {
  const auto trace_path = (dir_ / "trace.json").string();
  const auto metrics_path = (dir_ / "metrics.json").string();
  ASSERT_EQ(run_cli("--suite table1 --repeats 1 --threads 2 --trace=" +
                    trace_path + " --metrics=" + metrics_path),
            0)
      << read_file(dir_ / "stderr.log");

  // Count the JSONL records and check the timing satellite: every line
  // carries queue_ms alongside wall_ms.
  std::ifstream jsonl(dir_ / "results" / "table1.jsonl");
  ASSERT_TRUE(jsonl.is_open());
  std::string line;
  std::size_t records = 0;
  while (std::getline(jsonl, line)) {
    EXPECT_NE(line.find("\"queue_ms\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"wall_ms\":"), std::string::npos) << line;
    const auto rec = parse_record_line(line);
    EXPECT_GE(rec.queue_ms, 0.0);
    ++records;
  }
  EXPECT_EQ(records, 32u);

  // The trace validates against the strict Chrome schema and contains
  // engine worker-lane job spans plus at least one sim process with
  // per-processor task spans.
  const auto trace = read_file(trace_path);
  obs::TraceStats stats;
  const auto problem = obs::validate_chrome_trace(trace, &stats);
  ASSERT_FALSE(problem.has_value()) << *problem;
  EXPECT_GT(stats.spans, 0u);
  ASSERT_GE(stats.pids.size(), 2u);  // engine + >= 1 traced simulation
  EXPECT_EQ(stats.pids[0], obs::TraceWriter::kEnginePid);
  EXPECT_NE(trace.find("\"cat\":\"engine\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"sim\""), std::string::npos);
  EXPECT_NE(trace.find("proc 0"), std::string::npos);

  // The metrics registry export counts exactly the jobs the JSONL holds.
  const auto metrics = read_file(metrics_path);
  EXPECT_NE(metrics.find("\"engine.jobs.total\": " +
                         std::to_string(records)),
            std::string::npos)
      << metrics;
  EXPECT_NE(
      metrics.find("\"engine.jobs.ok\": " + std::to_string(records)),
      std::string::npos);
  EXPECT_NE(metrics.find("\"sim.sims\""), std::string::npos);
  EXPECT_NE(metrics.find("\"engine.job.wall_ms\""), std::string::npos);

  const auto log = read_file(dir_ / "stdout.log");
  EXPECT_NE(log.find("wrote trace " + trace_path), std::string::npos);
  EXPECT_NE(log.find("wrote metrics " + metrics_path), std::string::npos);
}

TEST_F(CliSmokeTest, PisaSuiteIsDeterministicAndReplayVerifies) {
  // One reference column of the tournament (7 ordered pairs) keeps the
  // smoke run fast while exercising the full search -> shrink ->
  // archive -> finalize path.
  const std::string filtered =
      "--suite pisa --filter vs/sequential --repeats 1";
  ASSERT_EQ(run_cli(filtered + " --threads 2"), 0)
      << read_file(dir_ / "stderr.log");

  std::ifstream jsonl(dir_ / "results" / "pisa.jsonl");
  ASSERT_TRUE(jsonl.is_open());
  std::string line;
  std::size_t records = 0;
  while (std::getline(jsonl, line)) {
    const auto problem = validate_record_line(line);
    EXPECT_EQ(problem, std::nullopt) << line;
    if (!problem) {
      const auto rec = parse_record_line(line);
      EXPECT_EQ(rec.status, "ok") << rec.error;
      EXPECT_EQ(rec.spec.instance, "vs/sequential");
      bool saw_best = false;
      bool saw_validated = false;
      for (const auto& [name, value] : rec.metrics) {
        if (name == "best_ratio") {
          saw_best = true;
          EXPECT_GT(value, 0.0) << line;
        }
        if (name == "validated") {
          saw_validated = true;
          EXPECT_EQ(value, 1.0) << line;
        }
      }
      EXPECT_TRUE(saw_best) << line;
      EXPECT_TRUE(saw_validated) << line;
    }
    ++records;
  }
  EXPECT_EQ(records, 7u);  // every target vs the sequential reference

  // Outputs: dominance matrix, per-pair CSV, report, and the archive
  // with one worst instance per pair.
  EXPECT_NE(read_file(dir_ / "results" / "pisa_dominance.csv")
                .find("target\\reference"),
            std::string::npos);
  EXPECT_NE(read_file(dir_ / "results" / "pisa_report.md")
                .find("# PISA adversarial tournament"),
            std::string::npos);
  const auto archive = read_file(dir_ / "results" / "pisa_worst.jsonl");
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(archive.begin(), archive.end(), '\n')),
            7u);

  // Determinism: re-running the same seed (different thread count)
  // reproduces the archive byte for byte.
  ASSERT_EQ(run_cli(filtered + " --threads 1"), 0)
      << read_file(dir_ / "stderr.log");
  EXPECT_EQ(read_file(dir_ / "results" / "pisa_worst.jsonl"), archive);

  // Replay: the archived instances verify bit-identically through their
  // own pair, and a third scheduler can be substituted.
  const auto archive_path = (dir_ / "results" / "pisa_worst.jsonl").string();
  ASSERT_EQ(run_cli("--replay " + archive_path), 0)
      << read_file(dir_ / "stderr.log");
  EXPECT_NE(read_file(dir_ / "stdout.log").find("replay: all records verified"),
            std::string::npos);
  ASSERT_EQ(run_cli("--replay " + archive_path + " --scheduler improved-lpa"),
            0)
      << read_file(dir_ / "stderr.log");

  // A missing archive is a hard error, not a silent success.
  EXPECT_NE(run_cli("--replay " + (dir_ / "no-such.jsonl").string()), 0);
}

TEST_F(CliSmokeTest, ExactSuiteEmitsTrueRatioCorpusReport) {
  ASSERT_EQ(run_cli("--suite exact --repeats 1 --threads 2"), 0)
      << read_file(dir_ / "stderr.log");

  // One job per (frozen instance x (registry column + oracle)), all ok.
  std::ifstream jsonl(dir_ / "results" / "exact.jsonl");
  ASSERT_TRUE(jsonl.is_open());
  std::string line;
  std::size_t records = 0;
  std::size_t oracle_records = 0;
  std::size_t certified = 0;
  while (std::getline(jsonl, line)) {
    const auto problem = validate_record_line(line);
    EXPECT_EQ(problem, std::nullopt) << line;
    if (!problem) {
      const auto rec = parse_record_line(line);
      EXPECT_EQ(rec.status, "ok") << rec.error;
      if (rec.spec.scheduler == "oracle") {
        ++oracle_records;
        for (const auto& [name, value] : rec.metrics)
          if (name == "certified" && value == 1.0) ++certified;
      }
    }
    ++records;
  }
  EXPECT_GT(oracle_records, 0u);
  // Every frozen corpus instance must certify: the suite exists to
  // provide true denominators, not brackets.
  EXPECT_EQ(certified, oracle_records);
  EXPECT_EQ(records % oracle_records, 0u);

  const auto csv = read_file(dir_ / "results" / "exact_true_ratios.csv");
  EXPECT_NE(csv.find("ratio_vs_opt"), std::string::npos);
  EXPECT_NE(csv.find("chain-amdahl"), std::string::npos);
  const auto report = read_file(dir_ / "results" / "exact_report.md");
  EXPECT_NE(report.find("# Exact suite"), std::string::npos);
  EXPECT_NE(report.find("T/T_opt"), std::string::npos);
  EXPECT_NE(report.find("LB slack"), std::string::npos);

  // A true ratio can never undercut 1: every makespan is feasible.
  std::istringstream rows(csv);
  std::string row;
  std::getline(rows, row);  // header
  while (std::getline(rows, row)) {
    const auto cells = split_csv_line(row);
    ASSERT_EQ(cells.size(), 7u) << row;
    const double ratio_opt = std::strtod(cells[6].c_str(), nullptr);
    EXPECT_GE(ratio_opt, 1.0 - 1e-12) << row;
  }
}

TEST_F(CliSmokeTest, IngestSuiteIsBitIdenticalAcrossRuns) {
  ASSERT_EQ(run_cli("--suite ingest --threads 2"), 0)
      << read_file(dir_ / "stderr.log");

  // 8 bundled workloads x the 13-scheduler registry, all ok.
  std::ifstream jsonl(dir_ / "results" / "ingest.jsonl");
  ASSERT_TRUE(jsonl.is_open());
  std::string line;
  std::size_t records = 0;
  while (std::getline(jsonl, line)) {
    const auto problem = validate_record_line(line);
    EXPECT_EQ(problem, std::nullopt) << line;
    if (!problem) {
      const auto rec = parse_record_line(line);
      EXPECT_EQ(rec.status, "ok") << rec.error;
      EXPECT_EQ(rec.spec.suite, "ingest");
    }
    ++records;
  }
  EXPECT_EQ(records, 104u);

  const auto fit_csv = read_file(dir_ / "results" / "ingest_fit_quality.csv");
  EXPECT_NE(fit_csv.find("instance,task,name,source,kind"),
            std::string::npos);
  EXPECT_NE(fit_csv.find("fallback"), std::string::npos);
  const auto ratios = read_file(dir_ / "results" / "ingest_ratios.csv");
  EXPECT_NE(ratios.find("Scheduler,ratio mean"), std::string::npos);

  // Determinism contract: a second run (different thread count) emits
  // byte-identical fit-quality and ratio CSVs.
  ASSERT_EQ(run_cli("--suite ingest --threads 1"), 0)
      << read_file(dir_ / "stderr.log");
  EXPECT_EQ(read_file(dir_ / "results" / "ingest_fit_quality.csv"), fit_csv);
  EXPECT_EQ(read_file(dir_ / "results" / "ingest_ratios.csv"), ratios);
}

TEST_F(CliSmokeTest, QuietStillPrintsSummaryFooterAndWrotePaths) {
  ASSERT_EQ(run_cli("--suite table1 --repeats 1 --threads 2 --quiet"), 0)
      << read_file(dir_ / "stderr.log");
  const auto out = read_file(dir_ / "stdout.log");
  // The footer and the written-file paths survive --quiet...
  EXPECT_NE(out.find("suite table1: 32 job(s), 32 ok"), std::string::npos)
      << out;
  EXPECT_NE(out.find("wrote "), std::string::npos);
  // ...while the banner, verbose tables and per-job progress are gone.
  EXPECT_EQ(out.find("=== suite"), std::string::npos);
  const auto err = read_file(dir_ / "stderr.log");
  EXPECT_EQ(err.find("[1/"), std::string::npos) << err;
}

}  // namespace
}  // namespace moldsched::engine
