#include "moldsched/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace moldsched::util {
namespace {

TEST(AccumulatorTest, EmptyDefaults) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(AccumulatorTest, SingleValue) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 5.0);
}

TEST(AccumulatorTest, KnownMoments) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.sum(), 40.0, 1e-9);
}

TEST(AccumulatorTest, NumericallyStableOnShiftedData) {
  Accumulator acc;
  const double offset = 1e9;
  for (const double x : {1.0, 2.0, 3.0}) acc.add(offset + x);
  EXPECT_NEAR(acc.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(acc.variance(), 1.0, 1e-6);
}

TEST(AccumulatorTest, NegativeValues) {
  Accumulator acc;
  acc.add(-2.0);
  acc.add(2.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), -2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 2.0);
}

TEST(PercentileTest, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenPoints) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.75), 7.5);
}

TEST(PercentileTest, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(PercentileTest, RejectsBadInput) {
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 1.1), std::invalid_argument);
}

TEST(SummarizeTest, AllFieldsConsistent) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
  EXPECT_LE(s.p95, s.max);
  EXPECT_GE(s.p95, s.p75);
}

TEST(SummarizeTest, RejectsEmpty) {
  EXPECT_THROW((void)summarize({}), std::invalid_argument);
}

TEST(GeometricMeanTest, KnownValue) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0, 16.0}), 4.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(GeometricMeanTest, SingleElement) {
  EXPECT_DOUBLE_EQ(geometric_mean({7.0}), 7.0);
}

TEST(GeometricMeanTest, RejectsBadInput) {
  EXPECT_THROW((void)geometric_mean({}), std::invalid_argument);
  EXPECT_THROW((void)geometric_mean({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)geometric_mean({1.0, -2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace moldsched::util
