#include "moldsched/util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace moldsched::util {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u, 0u}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(hits.size(),
                 [&](std::size_t i) { hits[i].fetch_add(1); }, threads);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, ZeroCountIsANoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ResultsIndependentOfThreadCount) {
  auto compute = [](unsigned threads) {
    std::vector<double> out(100);
    parallel_for(out.size(),
                 [&](std::size_t i) {
                   double x = static_cast<double>(i) + 1.0;
                   for (int k = 0; k < 50; ++k) x = x * 1.000001 + 0.5;
                   out[i] = x;
                 },
                 threads);
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
}

TEST(ParallelForTest, PropagatesFirstExceptionByIndex) {
  try {
    parallel_for(
        64,
        [](std::size_t i) {
          if (i == 7) throw std::runtime_error("boom at 7");
          if (i == 50) throw std::runtime_error("boom at 50");
        },
        4);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    // With 4 threads both indices usually run; the earlier one wins.
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(ParallelForTest, SequentialFallbackPropagatesExceptions) {
  EXPECT_THROW(parallel_for(
                   4,
                   [](std::size_t i) {
                     if (i == 2) throw std::logic_error("x");
                   },
                   1),
               std::logic_error);
}

TEST(ParallelForTest, RejectsEmptyFunction) {
  EXPECT_THROW(parallel_for(3, nullptr), std::invalid_argument);
}

TEST(ParallelForTest, DefaultParallelismIsPositive) {
  EXPECT_GE(default_parallelism(), 1u);
}

TEST(ParallelForTest, MoreThreadsThanWorkIsFine) {
  std::atomic<int> sum{0};
  parallel_for(3, [&](std::size_t i) { sum += static_cast<int>(i); }, 64);
  EXPECT_EQ(sum.load(), 3);
}

}  // namespace
}  // namespace moldsched::util
