#include "moldsched/util/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace moldsched::util {
namespace {

TEST(TableTest, RejectsZeroColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, AsciiContainsHeadersAndCells) {
  Table t({"name", "value"});
  t.new_row().cell("alpha").cell(1.5, 2);
  t.new_row().cell("beta").cell(42);
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
}

TEST(TableTest, FirstCellStartsARowImplicitly) {
  Table t({"a"});
  t.cell("x");  // no explicit new_row
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, OverfilledRowThrows) {
  Table t({"a"});
  t.new_row().cell("x");
  EXPECT_THROW(t.cell("y"), std::logic_error);
}

TEST(TableTest, MarkdownHasSeparatorRow) {
  Table t({"col1", "col2"});
  t.new_row().cell(1).cell(2);
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| col1"), std::string::npos);
  EXPECT_NE(md.find("|--"), std::string::npos);
}

TEST(TableTest, CsvQuotesSpecialCharacters) {
  Table t({"a", "b"});
  t.new_row().cell("plain").cell("has,comma");
  t.new_row().cell("has\"quote").cell("x");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("plain"), std::string::npos);
}

TEST(TableTest, CsvRowsAndColumnsCount) {
  Table t({"a", "b", "c"});
  t.new_row().cell(1).cell(2).cell(3);
  const std::string csv = t.to_csv();
  // header + one row, each with two commas
  std::size_t lines = 0;
  std::size_t commas = 0;
  for (const char ch : csv) {
    if (ch == '\n') ++lines;
    if (ch == ',') ++commas;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(commas, 4u);
}

TEST(TableTest, MissingCellsRenderEmpty) {
  Table t({"a", "b"});
  t.new_row().cell("only");
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TableTest, PrintWritesTitle) {
  Table t({"a"});
  t.new_row().cell(1);
  std::ostringstream os;
  t.print(os, "My Title");
  EXPECT_NE(os.str().find("My Title"), std::string::npos);
}

TEST(TableTest, IntegerCellOverloads) {
  Table t({"a", "b", "c", "d"});
  t.new_row()
      .cell(static_cast<int>(-1))
      .cell(static_cast<long>(2))
      .cell(static_cast<long long>(3))
      .cell(static_cast<unsigned long>(4));
  const std::string out = t.to_csv();
  EXPECT_NE(out.find("-1,2,3,4"), std::string::npos);
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 3), "2.000");
}

TEST(FormatDoubleTest, NanRendersAsNa) {
  EXPECT_EQ(format_double(std::nan(""), 2), "n/a");
}

}  // namespace
}  // namespace moldsched::util
