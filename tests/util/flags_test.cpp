#include "moldsched/util/flags.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moldsched::util {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  const auto f = make({"--n=10", "--rate=0.5", "--name=test"});
  EXPECT_EQ(f.get_int("n", 0), 10);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 0.5);
  EXPECT_EQ(f.get_string("name", ""), "test");
}

TEST(FlagsTest, SpaceForm) {
  const auto f = make({"--n", "20", "--mode", "fast"});
  EXPECT_EQ(f.get_int("n", 0), 20);
  EXPECT_EQ(f.get_string("mode", ""), "fast");
}

TEST(FlagsTest, BareBooleanFlag) {
  const auto f = make({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_TRUE(f.has("verbose"));
}

TEST(FlagsTest, BooleanSpellings) {
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=on"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x=no"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=off"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=FALSE"}).get_bool("x", true));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  const auto f = make({});
  EXPECT_EQ(f.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("r", 1.5), 1.5);
  EXPECT_EQ(f.get_string("s", "dft"), "dft");
  EXPECT_FALSE(f.get_bool("b", false));
  EXPECT_FALSE(f.has("n"));
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  const auto f = make({"pos1", "--n=1", "pos2"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "pos1");
  EXPECT_EQ(f.positional()[1], "pos2");
  EXPECT_EQ(f.program_name(), "prog");
}

TEST(FlagsTest, FlagFollowedByFlagIsBoolean) {
  const auto f = make({"--a", "--b=2"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_EQ(f.get_int("b", 0), 2);
}

TEST(FlagsTest, MalformedValuesThrow) {
  const auto f = make({"--n=abc", "--r=xyz", "--b=maybe"});
  EXPECT_THROW((void)f.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)f.get_double("r", 0.0), std::invalid_argument);
  EXPECT_THROW((void)f.get_bool("b", false), std::invalid_argument);
}

TEST(FlagsTest, BareDoubleDashThrows) {
  EXPECT_THROW(make({"--"}), std::invalid_argument);
}

TEST(FlagsTest, LastDuplicateWins) {
  const auto f = make({"--n=1", "--n=2"});
  EXPECT_EQ(f.get_int("n", 0), 2);
}

}  // namespace
}  // namespace moldsched::util
