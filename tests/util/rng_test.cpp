#include "moldsched/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

namespace moldsched::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng r(0);
  // Must not be stuck at a degenerate state.
  std::set<std::uint64_t> values;
  for (int i = 0; i < 16; ++i) values.insert(r());
  EXPECT_GT(values.size(), 10u);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng r(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(4, 4), 4);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng r(1);
  EXPECT_THROW((void)r.uniform_int(2, 1), std::invalid_argument);
}

TEST(RngTest, UnitIsInHalfOpenInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngTest, UniformRejectsInvertedBounds) {
  Rng r(5);
  EXPECT_THROW((void)r.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng r(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.uniform(0.0, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
  EXPECT_THROW((void)r.bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW((void)r.bernoulli(1.1), std::invalid_argument);
}

TEST(RngTest, BernoulliFrequency) {
  Rng r(19);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng r(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_THROW((void)r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)r.exponential(-1.0), std::invalid_argument);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng r(29);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.2);
  EXPECT_THROW((void)r.normal(0.0, -1.0), std::invalid_argument);
}

TEST(RngTest, LogUniformStaysInRange) {
  Rng r(31);
  for (int i = 0; i < 5000; ++i) {
    const double v = r.log_uniform(1.0, 1000.0);
    EXPECT_GE(v, 1.0 - 1e-12);
    EXPECT_LE(v, 1000.0 + 1e-9);
  }
  EXPECT_THROW((void)r.log_uniform(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)r.log_uniform(2.0, 1.0), std::invalid_argument);
}

TEST(RngTest, LogUniformSpansDecades) {
  Rng r(37);
  int low = 0;
  int high = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.log_uniform(1.0, 1000.0);
    if (v < 10.0) ++low;
    if (v > 100.0) ++high;
  }
  // Each decade should get ~1/3 of the mass.
  EXPECT_NEAR(low / 10000.0, 1.0 / 3.0, 0.03);
  EXPECT_NEAR(high / 10000.0, 1.0 / 3.0, 0.03);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng r(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(RngTest, ShuffleActuallyShuffles) {
  Rng r(43);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  r.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(RngTest, PickReturnsElement) {
  Rng r(47);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = r.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
  const std::vector<int> empty;
  EXPECT_THROW((void)r.pick(empty), std::invalid_argument);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(53);
  Rng b = a.split();
  // Parent and child should not track each other.
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(DeriveSeedTest, PureFunctionOfBaseAndIndex) {
  // No hidden state: any call order gives the same values.
  const auto a = derive_seed(123, 7);
  (void)derive_seed(123, 0);
  (void)derive_seed(456, 7);
  EXPECT_EQ(derive_seed(123, 7), a);
}

TEST(DeriveSeedTest, DistinctIndicesAndBasesGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {0ULL, 1ULL, 0xffffffffffffffffULL})
    for (std::uint64_t index = 0; index < 100; ++index)
      seeds.insert(derive_seed(base, index));
  EXPECT_EQ(seeds.size(), 300u);
}

TEST(DeriveSeedTest, GoldenValuesArePinned) {
  // The exact splitmix64 outputs are part of the resume / repro-archive
  // contract: recorded job seeds reference them, so changing the mix
  // silently invalidates every archived instance. Pin three values.
  EXPECT_EQ(derive_seed(0, 0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(derive_seed(1, 1), 0xbeeb8da1658eec67ULL);
  EXPECT_EQ(derive_seed(42, 7), 0xccf635ee9e9e2fa4ULL);
  // A derived seed feeds a usable generator.
  Rng r(derive_seed(1, 1));
  std::set<std::uint64_t> values;
  for (int i = 0; i < 16; ++i) values.insert(r());
  EXPECT_GT(values.size(), 10u);
}

TEST(RngTest, WorksWithStandardDistributions) {
  Rng r(59);
  // Compile-time check that Rng satisfies UniformRandomBitGenerator.
  static_assert(std::uniform_random_bit_generator<Rng>);
  std::uniform_int_distribution<int> dist(0, 9);
  for (int i = 0; i < 100; ++i) {
    const int v = dist(r);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
  }
}

}  // namespace
}  // namespace moldsched::util
