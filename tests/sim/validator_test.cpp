#include "moldsched/sim/validator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/model/special_models.hpp"

namespace moldsched::sim {
namespace {

/// Two-task chain: a (t(p) = 4/p, pbar 4) -> b (t = 2, sequential).
graph::TaskGraph make_chain_graph() {
  graph::TaskGraph g;
  const auto a =
      g.add_task(std::make_shared<model::RooflineModel>(4.0, 4), "a");
  const auto b =
      g.add_task(std::make_shared<model::RooflineModel>(2.0, 1), "b");
  g.add_edge(a, b);
  return g;
}

TEST(ValidatorTest, AcceptsCorrectSchedule) {
  const auto g = make_chain_graph();
  Trace t;
  t.record_start(0, 0.0, 2);  // t = 4/2 = 2
  t.record_end(0, 2.0);
  t.record_start(1, 2.0, 1);  // t = 2
  t.record_end(1, 4.0);
  const auto report = validate_schedule(g, t, 4);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_NO_THROW(expect_valid_schedule(g, t, 4));
  EXPECT_EQ(report.to_string(), "schedule valid");
}

TEST(ValidatorTest, DetectsMissingTask) {
  const auto g = make_chain_graph();
  Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 2.0);
  const auto report = validate_schedule(g, t, 4);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("never scheduled"), std::string::npos);
  EXPECT_THROW(expect_valid_schedule(g, t, 4), std::logic_error);
}

TEST(ValidatorTest, DetectsWrongDuration) {
  const auto g = make_chain_graph();
  Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 3.0);  // should be 2.0 with 2 procs
  t.record_start(1, 3.0, 1);
  t.record_end(1, 5.0);
  const auto report = validate_schedule(g, t, 4);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("duration"), std::string::npos);
}

TEST(ValidatorTest, DetectsPrecedenceViolation) {
  const auto g = make_chain_graph();
  Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 2.0);
  t.record_start(1, 1.0, 1);  // starts before predecessor finishes
  t.record_end(1, 3.0);
  const auto report = validate_schedule(g, t, 4);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("before predecessor"), std::string::npos);
}

TEST(ValidatorTest, DetectsCapacityViolation) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(4.0, 4), "x");
  (void)g.add_task(std::make_shared<model::RooflineModel>(4.0, 4), "y");
  Trace t;
  t.record_start(0, 0.0, 3);
  t.record_start(1, 0.0, 3);
  t.record_end(0, 4.0 / 3.0);
  t.record_end(1, 4.0 / 3.0);
  const auto report = validate_schedule(g, t, 4);  // 6 > 4
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("capacity exceeded"), std::string::npos);
}

TEST(ValidatorTest, DetectsAllocationOutOfRange) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(4.0, 8), "x");
  Trace t;
  t.record_start(0, 0.0, 8);
  t.record_end(0, 0.5);
  const auto report = validate_schedule(g, t, 4);  // alloc 8 > P = 4
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("outside [1, 4]"), std::string::npos);
}

TEST(ValidatorTest, DetectsUnknownTaskId) {
  const auto g = make_chain_graph();
  Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 2.0);
  t.record_start(1, 2.0, 1);
  t.record_end(1, 4.0);
  t.record_start(7, 0.0, 1);  // not in the graph
  t.record_end(7, 1.0);
  const auto report = validate_schedule(g, t, 4);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("unknown task id"), std::string::npos);
}

TEST(ValidatorTest, ToleranceAllowsRoundoff) {
  const auto g = make_chain_graph();
  Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 2.0 + 1e-12);
  t.record_start(1, 2.0 + 1e-12, 1);
  t.record_end(1, 4.0 + 1e-12);
  EXPECT_TRUE(validate_schedule(g, t, 4).ok());
}

TEST(ValidatorTest, RejectsBadPlatformSize) {
  const auto g = make_chain_graph();
  const Trace t;
  EXPECT_FALSE(validate_schedule(g, t, 0).ok());
}

TEST(ValidatorTest, EmptyGraphWithEmptyTraceIsValid) {
  const graph::TaskGraph g;
  const Trace t;
  EXPECT_TRUE(validate_schedule(g, t, 4).ok());
}

TEST(ValidatorTest, RestartsAreRejectedAtTheTraceLayer) {
  // The no-restart invariant is enforced upstream: Trace itself refuses
  // a second record_start, so the validator can assume one record per id.
  Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 2.0);
  EXPECT_THROW(t.record_start(0, 2.0, 2), std::logic_error);
}

TEST(ValidatorTest, DetectsZeroDurationRun) {
  const auto g = make_chain_graph();
  Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 0.0);  // t(2) = 2, not 0
  t.record_start(1, 0.0, 1);
  t.record_end(1, 2.0);
  const auto report = validate_schedule(g, t, 4);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("duration"), std::string::npos);
}

TEST(ValidatorTest, AcceptsCapacityExactlyAtP) {
  // Two tasks using 2 + 2 = P = 4 processors concurrently: at the
  // boundary, not over it.
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(4.0, 4), "x");
  (void)g.add_task(std::make_shared<model::RooflineModel>(4.0, 4), "y");
  Trace t;
  t.record_start(0, 0.0, 2);
  t.record_start(1, 0.0, 2);
  t.record_end(0, 2.0);
  t.record_end(1, 2.0);
  EXPECT_TRUE(validate_schedule(g, t, 4).ok());
}

TEST(ValidatorTest, PrecedenceBoundaryWithinToleranceIsAccepted) {
  // The successor starts half a tolerance before the predecessor ends:
  // legal roundoff, not a precedence violation.
  const auto g = make_chain_graph();
  Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 2.0);
  t.record_start(1, 2.0 - 5e-10, 1);
  t.record_end(1, 4.0 - 5e-10);
  EXPECT_TRUE(validate_schedule(g, t, 4).ok()) << "tolerance is 1e-9";
}

}  // namespace
}  // namespace moldsched::sim
