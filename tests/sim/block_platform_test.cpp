#include "moldsched/sim/block_platform.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moldsched::sim {
namespace {

TEST(BlockPlatformTest, InitialStateIsOneFreeBlock) {
  const BlockPlatform p(8);
  EXPECT_EQ(p.total(), 8);
  EXPECT_EQ(p.available(), 8);
  EXPECT_EQ(p.largest_free_block(), 8);
  EXPECT_THROW(BlockPlatform(0), std::invalid_argument);
}

TEST(BlockPlatformTest, FirstFitTakesLowestBlock) {
  BlockPlatform p(8);
  EXPECT_EQ(p.acquire_block(3), 0);
  EXPECT_EQ(p.acquire_block(2), 3);
  EXPECT_EQ(p.acquire_block(3), 5);
  EXPECT_EQ(p.available(), 0);
  EXPECT_EQ(p.acquire_block(1), -1);
}

TEST(BlockPlatformTest, FragmentationBlocksByShapeNotCount) {
  BlockPlatform p(8);
  const int a = p.acquire_block(3);  // [0,3)
  const int b = p.acquire_block(2);  // [3,5)
  const int c = p.acquire_block(3);  // [5,8)
  (void)a;
  (void)c;
  p.release_block(b, 2);  // free [3,5)
  // Also free nothing else: 2 available but no block of 3.
  EXPECT_EQ(p.available(), 2);
  EXPECT_EQ(p.largest_free_block(), 2);
  EXPECT_EQ(p.acquire_block(3), -1);   // fragmentation
  EXPECT_EQ(p.acquire_block(2), 3);    // the hole fits exactly
}

TEST(BlockPlatformTest, ReleaseCoalescesNeighbours) {
  BlockPlatform p(10);
  const int a = p.acquire_block(4);  // [0,4)
  const int b = p.acquire_block(3);  // [4,7)
  const int c = p.acquire_block(3);  // [7,10)
  p.release_block(a, 4);
  p.release_block(c, 3);
  // Free: [0,4) and [7,10) — not adjacent, largest 4.
  EXPECT_EQ(p.largest_free_block(), 4);
  p.release_block(b, 3);
  // Everything coalesces into [0,10).
  EXPECT_EQ(p.largest_free_block(), 10);
  EXPECT_EQ(p.acquire_block(10), 0);
}

TEST(BlockPlatformTest, ReleaseValidation) {
  BlockPlatform p(8);
  const int a = p.acquire_block(4);
  (void)a;
  EXPECT_THROW(p.release_block(-1, 2), std::logic_error);
  EXPECT_THROW(p.release_block(6, 4), std::logic_error);   // out of range
  EXPECT_THROW(p.release_block(4, 2), std::logic_error);   // overlaps free
  EXPECT_NO_THROW(p.release_block(0, 4));
  EXPECT_THROW(p.acquire_block(0), std::invalid_argument);
}

TEST(BlockPlatformTest, PartialReleaseOfABlockIsAllowed) {
  // Releasing a sub-range of an allocated block is legal (a task could
  // in principle shrink); the class only tracks free space consistency.
  BlockPlatform p(8);
  (void)p.acquire_block(8);
  p.release_block(2, 3);  // free [2,5)
  EXPECT_EQ(p.available(), 3);
  EXPECT_EQ(p.acquire_block(3), 2);
}

}  // namespace
}  // namespace moldsched::sim
