#include "moldsched/sim/gantt.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/model/special_models.hpp"

namespace moldsched::sim {
namespace {

graph::TaskGraph two_task_graph() {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(4.0, 4), "alpha");
  (void)g.add_task(std::make_shared<model::RooflineModel>(2.0, 1), "beta");
  return g;
}

TEST(GanttTest, RendersRowsAndLegend) {
  const auto g = two_task_graph();
  Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 2.0);
  t.record_start(1, 2.0, 1);
  t.record_end(1, 4.0);
  const auto out = render_gantt(t, g, 4, 40);
  EXPECT_NE(out.find("Gantt (P=4"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  // Four processor rows.
  EXPECT_NE(out.find("p0"), std::string::npos);
  EXPECT_NE(out.find("p3"), std::string::npos);
  // Task 0 drawn with 'A', task 1 with 'B'.
  EXPECT_NE(out.find('A'), std::string::npos);
  EXPECT_NE(out.find('B'), std::string::npos);
}

TEST(GanttTest, EmptyTraceRendersIdleRows) {
  const auto g = two_task_graph();
  const Trace t;
  const auto out = render_gantt(t, g, 2, 20);
  EXPECT_NE(out.find("makespan=0"), std::string::npos);
  EXPECT_NE(out.find("...."), std::string::npos);
}

TEST(GanttTest, RejectsBadArguments) {
  const auto g = two_task_graph();
  const Trace t;
  EXPECT_THROW((void)render_gantt(t, g, 0, 40), std::invalid_argument);
  EXPECT_THROW((void)render_gantt(t, g, 200, 40), std::invalid_argument);
  EXPECT_THROW((void)render_gantt(t, g, 4, 5), std::invalid_argument);
}

TEST(UtilizationRenderTest, OneLinePerInterval) {
  Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 1.0);
  t.record_start(1, 1.0, 4);
  t.record_end(1, 2.0);
  const auto out = render_utilization(t, 4, 20);
  EXPECT_NE(out.find("2/4"), std::string::npos);
  EXPECT_NE(out.find("4/4"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_THROW((void)render_utilization(t, 0, 20), std::invalid_argument);
  EXPECT_THROW((void)render_utilization(t, 4, 2), std::invalid_argument);
}

}  // namespace
}  // namespace moldsched::sim
