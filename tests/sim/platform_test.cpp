#include "moldsched/sim/platform.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moldsched::sim {
namespace {

TEST(PlatformTest, InitialState) {
  const Platform p(8);
  EXPECT_EQ(p.total(), 8);
  EXPECT_EQ(p.in_use(), 0);
  EXPECT_EQ(p.available(), 8);
}

TEST(PlatformTest, RejectsNonPositiveSize) {
  EXPECT_THROW(Platform(0), std::invalid_argument);
  EXPECT_THROW(Platform(-2), std::invalid_argument);
}

TEST(PlatformTest, AcquireReleaseRoundTrip) {
  Platform p(10);
  p.acquire(4);
  EXPECT_EQ(p.in_use(), 4);
  EXPECT_EQ(p.available(), 6);
  p.acquire(6);
  EXPECT_EQ(p.available(), 0);
  p.release(4);
  EXPECT_EQ(p.available(), 4);
  p.release(6);
  EXPECT_EQ(p.in_use(), 0);
}

TEST(PlatformTest, OverAcquireThrows) {
  Platform p(4);
  p.acquire(3);
  EXPECT_THROW(p.acquire(2), std::logic_error);
  // State unchanged after the failed acquire.
  EXPECT_EQ(p.in_use(), 3);
}

TEST(PlatformTest, BadAmountsThrow) {
  Platform p(4);
  EXPECT_THROW(p.acquire(0), std::invalid_argument);
  EXPECT_THROW(p.acquire(-1), std::invalid_argument);
  EXPECT_THROW(p.release(1), std::logic_error);  // nothing in use
  p.acquire(2);
  EXPECT_THROW(p.release(3), std::logic_error);
  EXPECT_THROW(p.release(0), std::logic_error);
}

}  // namespace
}  // namespace moldsched::sim
