#include "moldsched/sim/trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moldsched::sim {
namespace {

TEST(TraceTest, EmptyTrace) {
  const Trace t;
  EXPECT_EQ(t.num_records(), 0u);
  EXPECT_DOUBLE_EQ(t.makespan(), 0.0);
  EXPECT_DOUBLE_EQ(t.total_area(), 0.0);
  EXPECT_TRUE(t.utilization_profile().empty());
}

TEST(TraceTest, SingleTaskRecord) {
  Trace t;
  t.record_start(0, 1.0, 3);
  t.record_end(0, 4.0);
  ASSERT_EQ(t.records().size(), 1u);
  const auto& r = t.records()[0];
  EXPECT_EQ(r.task, 0);
  EXPECT_DOUBLE_EQ(r.start, 1.0);
  EXPECT_DOUBLE_EQ(r.end, 4.0);
  EXPECT_EQ(r.procs, 3);
  EXPECT_DOUBLE_EQ(t.makespan(), 4.0);
  EXPECT_DOUBLE_EQ(t.total_area(), 9.0);
}

TEST(TraceTest, RunningTaskBlocksQueries) {
  Trace t;
  t.record_start(0, 0.0, 1);
  EXPECT_THROW((void)t.makespan(), std::logic_error);
  EXPECT_THROW((void)t.records(), std::logic_error);
  EXPECT_THROW((void)t.total_area(), std::logic_error);
  t.record_end(0, 1.0);
  EXPECT_NO_THROW((void)t.makespan());
}

TEST(TraceTest, DoubleStartRejected) {
  Trace t;
  t.record_start(5, 0.0, 1);
  EXPECT_THROW(t.record_start(5, 0.5, 1), std::logic_error);
  t.record_end(5, 1.0);
  // Restart after completion is also forbidden (non-preemptive, no
  // restarts).
  EXPECT_THROW(t.record_start(5, 2.0, 1), std::logic_error);
}

TEST(TraceTest, BadEndRejected) {
  Trace t;
  EXPECT_THROW(t.record_end(0, 1.0), std::logic_error);  // never started
  t.record_start(0, 2.0, 1);
  EXPECT_THROW(t.record_end(0, 1.0), std::invalid_argument);  // end < start
  t.record_end(0, 2.0);  // zero-duration is allowed
  EXPECT_THROW(t.record_end(0, 3.0), std::logic_error);  // already ended
}

TEST(TraceTest, BadStartArgumentsRejected) {
  Trace t;
  EXPECT_THROW(t.record_start(-1, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(t.record_start(0, -1.0, 1), std::invalid_argument);
  EXPECT_THROW(t.record_start(0, 0.0, 0), std::invalid_argument);
}

TEST(TraceTest, UtilizationProfileOfOverlappingTasks) {
  Trace t;
  t.record_start(0, 0.0, 2);
  t.record_start(1, 1.0, 3);
  t.record_end(0, 2.0);
  t.record_end(1, 3.0);
  const auto profile = t.utilization_profile();
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_DOUBLE_EQ(profile[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(profile[0].end, 1.0);
  EXPECT_EQ(profile[0].procs_in_use, 2);
  EXPECT_EQ(profile[1].procs_in_use, 5);
  EXPECT_DOUBLE_EQ(profile[1].duration(), 1.0);
  EXPECT_EQ(profile[2].procs_in_use, 3);
}

TEST(TraceTest, ProfileKeepsInteriorIdleGaps) {
  Trace t;
  t.record_start(0, 0.0, 1);
  t.record_end(0, 1.0);
  t.record_start(1, 2.0, 1);
  t.record_end(1, 3.0);
  const auto profile = t.utilization_profile();
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile[1].procs_in_use, 0);
  EXPECT_DOUBLE_EQ(profile[1].begin, 1.0);
  EXPECT_DOUBLE_EQ(profile[1].end, 2.0);
}

TEST(TraceTest, ProfileDurationsSumToMakespanWhenBusyFromZero) {
  Trace t;
  t.record_start(0, 0.0, 1);
  t.record_end(0, 2.5);
  t.record_start(1, 1.0, 2);
  t.record_end(1, 4.0);
  double total = 0.0;
  for (const auto& iv : t.utilization_profile()) total += iv.duration();
  EXPECT_DOUBLE_EQ(total, t.makespan());
}

TEST(TraceTest, AverageUtilization) {
  Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 1.0);
  // Area 2, makespan 1, P = 4 -> utilization 0.5.
  EXPECT_DOUBLE_EQ(t.average_utilization(4), 0.5);
  EXPECT_THROW((void)t.average_utilization(0), std::invalid_argument);
}

TEST(TraceTest, IdleAreaAndMaxConcurrency) {
  Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 1.0);
  t.record_start(1, 0.5, 3);
  t.record_end(1, 2.0);
  // Area = 2 + 4.5 = 6.5; makespan 2; P = 5 -> idle = 10 - 6.5.
  EXPECT_DOUBLE_EQ(t.idle_area(5), 3.5);
  EXPECT_EQ(t.max_concurrency(), 5);
  EXPECT_DOUBLE_EQ(t.total_gap_time(), 0.0);
  EXPECT_THROW((void)t.idle_area(0), std::invalid_argument);
}

TEST(TraceTest, GapTimeCountsInteriorIdle) {
  Trace t;
  t.record_start(0, 0.0, 1);
  t.record_end(0, 1.0);
  t.record_start(1, 4.0, 1);
  t.record_end(1, 5.0);
  EXPECT_DOUBLE_EQ(t.total_gap_time(), 3.0);
}

TEST(TraceTest, ProfileOmitsZeroLengthIntervals) {
  // A zero-duration task splits the sweep at its instant but must not
  // produce a zero-length interval.
  Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 4.0);
  t.record_start(1, 2.0, 3);
  t.record_end(1, 2.0);
  const auto profile = t.utilization_profile();
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_DOUBLE_EQ(profile[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(profile[0].end, 2.0);
  EXPECT_EQ(profile[0].procs_in_use, 2);
  EXPECT_DOUBLE_EQ(profile[1].begin, 2.0);
  EXPECT_DOUBLE_EQ(profile[1].end, 4.0);
  EXPECT_EQ(profile[1].procs_in_use, 2);
  for (const auto& iv : profile) EXPECT_GT(iv.duration(), 0.0);
}

TEST(TraceTest, ProfileOfOnlyZeroDurationTasksIsEmpty) {
  Trace t;
  t.record_start(0, 1.0, 4);
  t.record_end(0, 1.0);
  EXPECT_TRUE(t.utilization_profile().empty());
  EXPECT_DOUBLE_EQ(t.makespan(), 1.0);
  EXPECT_DOUBLE_EQ(t.total_area(), 0.0);
}

TEST(TraceTest, SingleTaskProfileDropsLeadingIdle) {
  // The profile starts at the first busy instant, not at time 0.
  Trace t;
  t.record_start(0, 2.0, 3);
  t.record_end(0, 5.0);
  const auto profile = t.utilization_profile();
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_DOUBLE_EQ(profile[0].begin, 2.0);
  EXPECT_DOUBLE_EQ(profile[0].end, 5.0);
  EXPECT_EQ(profile[0].procs_in_use, 3);
}

TEST(TraceTest, ProfileMergesFullyCoincidentTasks) {
  // Three tasks with identical [1, 2) windows form one summed interval.
  Trace t;
  for (int task = 0; task < 3; ++task) {
    t.record_start(task, 1.0, 2);
    t.record_end(task, 2.0);
  }
  const auto profile = t.utilization_profile();
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_DOUBLE_EQ(profile[0].begin, 1.0);
  EXPECT_DOUBLE_EQ(profile[0].end, 2.0);
  EXPECT_EQ(profile[0].procs_in_use, 6);
}

TEST(TraceTest, SimultaneousEdgesReleaseBeforeAcquire) {
  // Task 1 starts exactly when task 0 ends: usage never double-counts.
  Trace t;
  t.record_start(0, 0.0, 4);
  t.record_end(0, 1.0);
  t.record_start(1, 1.0, 4);
  t.record_end(1, 2.0);
  for (const auto& iv : t.utilization_profile())
    EXPECT_LE(iv.procs_in_use, 4);
}

}  // namespace
}  // namespace moldsched::sim
