#include "moldsched/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace moldsched::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.schedule(3.0, 30);
  q.schedule(1.0, 10);
  q.schedule(2.0, 20);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().payload, 10);
  EXPECT_EQ(q.pop().payload, 20);
  EXPECT_EQ(q.pop().payload, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, TiesBreakFifo) {
  EventQueue q;
  q.schedule(1.0, 1);
  q.schedule(1.0, 2);
  q.schedule(1.0, 3);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
}

TEST(EventQueueTest, NowAdvancesWithPops) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  q.schedule(2.5, 1);
  q.schedule(4.0, 2);
  (void)q.pop();
  EXPECT_DOUBLE_EQ(q.now(), 2.5);
  (void)q.pop();
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueueTest, PopSimultaneousBatchesExactTies) {
  EventQueue q;
  q.schedule(1.0, 1);
  q.schedule(1.0, 2);
  q.schedule(2.0, 3);
  const auto batch = q.pop_simultaneous();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].payload, 1);
  EXPECT_EQ(batch[1].payload, 2);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, NextTimePeeksWithoutPopping) {
  EventQueue q;
  q.schedule(7.0, 1);
  EXPECT_DOUBLE_EQ(q.next_time(), 7.0);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueueTest, EmptyAccessThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  EXPECT_THROW((void)q.pop(), std::logic_error);
  EXPECT_THROW((void)q.pop_simultaneous(), std::logic_error);
}

TEST(EventQueueTest, RejectsBadTimes) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1.0, 0), std::invalid_argument);
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::infinity(), 0),
               std::invalid_argument);
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::quiet_NaN(), 0),
               std::invalid_argument);
}

TEST(EventQueueTest, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule(5.0, 1);
  (void)q.pop();  // now = 5
  EXPECT_THROW(q.schedule(4.0, 2), std::logic_error);
  EXPECT_NO_THROW(q.schedule(5.0, 3));  // present is fine
}

TEST(EventQueueTest, InterleavedScheduleAndPop) {
  EventQueue q;
  q.schedule(1.0, 1);
  q.schedule(5.0, 5);
  EXPECT_EQ(q.pop().payload, 1);
  q.schedule(3.0, 3);  // after now=1, before 5
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_EQ(q.pop().payload, 5);
}

}  // namespace
}  // namespace moldsched::sim
