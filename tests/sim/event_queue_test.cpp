#include "moldsched/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

namespace moldsched::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.schedule(3.0, 30);
  q.schedule(1.0, 10);
  q.schedule(2.0, 20);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().payload, 10);
  EXPECT_EQ(q.pop().payload, 20);
  EXPECT_EQ(q.pop().payload, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, TiesBreakFifo) {
  EventQueue q;
  q.schedule(1.0, 1);
  q.schedule(1.0, 2);
  q.schedule(1.0, 3);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
}

TEST(EventQueueTest, NowAdvancesWithPops) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  q.schedule(2.5, 1);
  q.schedule(4.0, 2);
  (void)q.pop();
  EXPECT_DOUBLE_EQ(q.now(), 2.5);
  (void)q.pop();
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueueTest, PopSimultaneousBatchesExactTies) {
  EventQueue q;
  q.schedule(1.0, 1);
  q.schedule(1.0, 2);
  q.schedule(2.0, 3);
  const auto batch = q.pop_simultaneous();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].payload, 1);
  EXPECT_EQ(batch[1].payload, 2);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, NextTimePeeksWithoutPopping) {
  EventQueue q;
  q.schedule(7.0, 1);
  EXPECT_DOUBLE_EQ(q.next_time(), 7.0);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueueTest, EmptyAccessThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  EXPECT_THROW((void)q.pop(), std::logic_error);
  EXPECT_THROW((void)q.pop_simultaneous(), std::logic_error);
}

TEST(EventQueueTest, RejectsBadTimes) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1.0, 0), std::invalid_argument);
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::infinity(), 0),
               std::invalid_argument);
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::quiet_NaN(), 0),
               std::invalid_argument);
}

TEST(EventQueueTest, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule(5.0, 1);
  (void)q.pop();  // now = 5
  EXPECT_THROW(q.schedule(4.0, 2), std::logic_error);
  EXPECT_NO_THROW(q.schedule(5.0, 3));  // present is fine
}

TEST(EventQueueTest, InterleavedScheduleAndPop) {
  EventQueue q;
  q.schedule(1.0, 1);
  q.schedule(5.0, 5);
  EXPECT_EQ(q.pop().payload, 1);
  q.schedule(3.0, 3);  // after now=1, before 5
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_EQ(q.pop().payload, 5);
}

TEST(EventQueueTest, PopSimultaneousIntoMatchesPopSimultaneous) {
  EventQueue a;
  EventQueue b;
  for (int t = 0; t < 20; ++t)
    for (int i = 0; i < 3; ++i) {
      a.schedule(static_cast<double>(t % 7), t * 3 + i);
      b.schedule(static_cast<double>(t % 7), t * 3 + i);
    }
  std::vector<Event> batch;
  while (!a.empty()) {
    const auto want = a.pop_simultaneous();
    b.pop_simultaneous_into(batch);
    ASSERT_EQ(batch.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_DOUBLE_EQ(batch[i].time, want[i].time);
      EXPECT_EQ(batch[i].payload, want[i].payload);
    }
    EXPECT_DOUBLE_EQ(b.now(), a.now());
  }
  EXPECT_TRUE(b.empty());
}

TEST(EventQueueTest, PopSimultaneousIntoKeepsFifoOrderWithinLargeBatches) {
  // Many ties at one time, pushed interleaved with other times so the
  // heap actually permutes the storage: seq must still restore FIFO.
  EventQueue q;
  for (int i = 0; i < 50; ++i) {
    q.schedule(2.0, 100 + i);
    q.schedule(5.0, 900 + i);
  }
  std::vector<Event> batch;
  q.pop_simultaneous_into(batch);
  ASSERT_EQ(batch.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(batch[i].payload, 100 + i);
  q.pop_simultaneous_into(batch);
  ASSERT_EQ(batch.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(batch[i].payload, 900 + i);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, PopSimultaneousIntoOverwritesAndReusesTheBuffer) {
  EventQueue q;
  q.schedule(1.0, 1);
  q.schedule(1.0, 2);
  q.schedule(3.0, 3);
  std::vector<Event> batch(17);  // stale junk the call must replace
  q.pop_simultaneous_into(batch);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].payload, 1);
  EXPECT_EQ(batch[1].payload, 2);
  const auto capacity = batch.capacity();
  q.pop_simultaneous_into(batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].payload, 3);
  EXPECT_EQ(batch.capacity(), capacity);  // no reallocation on reuse
}

TEST(EventQueueTest, ReservePreservesContentsAndOrder) {
  EventQueue q;
  q.schedule(2.0, 2);
  q.schedule(1.0, 1);
  q.reserve(1000);
  q.schedule(3.0, 3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
}

}  // namespace
}  // namespace moldsched::sim
