#include "moldsched/io/svg.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/model/special_models.hpp"

namespace moldsched::io {
namespace {

TEST(SvgGanttTest, ProducesWellFormedDocument) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(4.0, 2), "alpha");
  (void)g.add_task(std::make_shared<model::RooflineModel>(2.0, 1), "beta");
  sim::Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 2.0);
  t.record_start(1, 2.0, 1);
  t.record_end(1, 4.0);
  const auto svg = render_gantt_svg(t, g, 4);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("alpha"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  // One background + at least one rect per task.
  std::size_t rects = 0;
  for (std::size_t pos = 0; (pos = svg.find("<rect", pos)) != std::string::npos;
       ++pos)
    ++rects;
  EXPECT_GE(rects, 3u);
}

TEST(SvgGanttTest, EscapesXmlInNames) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(1.0, 1),
                   "a<b>&c");
  sim::Trace t;
  t.record_start(0, 0.0, 1);
  t.record_end(0, 1.0);
  const auto svg = render_gantt_svg(t, g, 1);
  EXPECT_NE(svg.find("a&lt;b&gt;&amp;c"), std::string::npos);
  EXPECT_EQ(svg.find("a<b>"), std::string::npos);
}

TEST(SvgGanttTest, WholeScheduleRenders) {
  graph::WorkflowModelConfig cfg;
  cfg.kind = model::ModelKind::kAmdahl;
  const auto g = graph::cholesky(5, cfg);
  const int P = 16;
  const core::LpaAllocator alloc(0.271);
  const auto run = core::schedule_online(g, P, alloc);
  const auto svg = render_gantt_svg(run.trace, g, P);
  // Every task shows up as a tooltip title.
  EXPECT_NE(svg.find("potrf(0)"), std::string::npos);
  EXPECT_NE(svg.find("potrf(4)"), std::string::npos);
}

TEST(SvgGanttTest, DeterministicOutput) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(1.0, 1), "x");
  sim::Trace t;
  t.record_start(0, 0.0, 1);
  t.record_end(0, 1.0);
  EXPECT_EQ(render_gantt_svg(t, g, 2), render_gantt_svg(t, g, 2));
}

TEST(SvgGanttTest, RejectsBadArguments) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(1.0, 1));
  const sim::Trace t;
  EXPECT_THROW((void)render_gantt_svg(t, g, 0), std::invalid_argument);
  EXPECT_THROW((void)render_gantt_svg(t, g, 5000), std::invalid_argument);
  SvgGanttOptions tiny;
  tiny.width = 10;
  EXPECT_THROW((void)render_gantt_svg(t, g, 4, tiny), std::invalid_argument);
  // Unknown task id in the trace.
  sim::Trace bad;
  bad.record_start(9, 0.0, 1);
  bad.record_end(9, 1.0);
  EXPECT_THROW((void)render_gantt_svg(bad, g, 4), std::invalid_argument);
}

}  // namespace
}  // namespace moldsched::io
