#include "moldsched/io/text_format.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/general_model.hpp"
#include "moldsched/model/special_models.hpp"

namespace moldsched::io {
namespace {

graph::TaskGraph mixed_graph() {
  graph::TaskGraph g;
  const auto a =
      g.add_task(std::make_shared<model::RooflineModel>(12.5, 4), "roof");
  const auto b = g.add_task(
      std::make_shared<model::CommunicationModel>(100.0, 0.25), "comm");
  const auto c =
      g.add_task(std::make_shared<model::AmdahlModel>(8.0, 1.5), "amd");
  model::GeneralParams p;
  p.w = 30.0;
  p.d = 2.0;
  p.c = 0.1;
  p.pbar = 16;
  const auto d = g.add_task(std::make_shared<model::GeneralModel>(p), "gen");
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  return g;
}

TEST(TextFormatTest, RoundTripPreservesEverything) {
  const auto g = mixed_graph();
  const auto text = write_graph_text(g);
  const auto g2 = read_graph_text(text);

  ASSERT_EQ(g2.num_tasks(), g.num_tasks());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(g2.name(v), g.name(v));
    EXPECT_EQ(g2.model_of(v).kind(), g.model_of(v).kind());
    for (const int pp : {1, 2, 5, 16, 64})
      EXPECT_DOUBLE_EQ(g2.model_of(v).time(pp), g.model_of(v).time(pp))
          << g.name(v) << " p=" << pp;
    const auto s2 = g2.successors(v);
    const auto s1 = g.successors(v);
    EXPECT_TRUE(std::equal(s2.begin(), s2.end(), s1.begin(), s1.end()))
        << "successor mismatch at task " << v;
  }
  // Idempotence: serializing the reloaded graph gives identical text.
  EXPECT_EQ(write_graph_text(g2), text);
}

TEST(TextFormatTest, HeaderAndCommentsHandled) {
  const auto g2 = read_graph_text(
      "# moldsched-graph v1\n"
      "# a comment\n"
      "\n"
      "task a roofline 4 0 0 2\n"
      "task b amdahl 6 1 0 inf\n"
      "edge 0 1\n");
  EXPECT_EQ(g2.num_tasks(), 2);
  EXPECT_TRUE(g2.has_edge(0, 1));
  EXPECT_EQ(g2.model_of(0).kind(), model::ModelKind::kRoofline);
  EXPECT_EQ(g2.model_of(1).kind(), model::ModelKind::kAmdahl);
}

TEST(TextFormatTest, MissingHeaderRejected) {
  EXPECT_THROW((void)read_graph_text("task a roofline 4 0 0 2\n"),
               std::invalid_argument);
  EXPECT_THROW((void)read_graph_text(""), std::invalid_argument);
}

TEST(TextFormatTest, MalformedLinesRejectedWithLineNumbers) {
  const std::string header = "# moldsched-graph v1\n";
  try {
    (void)read_graph_text(header + "task a roofline nan_w\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW((void)read_graph_text(header + "task a nosuchkind 1 0 0 1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)read_graph_text(header + "frobnicate 1 2\n"),
               std::invalid_argument);
  EXPECT_THROW((void)read_graph_text(header + "edge 0 1\n"),
               std::invalid_argument);  // endpoints out of range
  EXPECT_THROW(
      (void)read_graph_text(header + "task a roofline 1 0 0 bogus\n"),
      std::invalid_argument);
  // Invalid model parameters surface as parse errors too.
  EXPECT_THROW(
      (void)read_graph_text(header + "task a roofline -1 0 0 2\n"),
      std::invalid_argument);
}

TEST(TextFormatTest, DuplicateEdgeRejected) {
  const std::string text =
      "# moldsched-graph v1\n"
      "task a roofline 1 0 0 1\n"
      "task b roofline 1 0 0 1\n"
      "edge 0 1\n"
      "edge 0 1\n";
  EXPECT_THROW((void)read_graph_text(text), std::invalid_argument);
}

TEST(TextFormatTest, ArbitraryModelNotSerializable) {
  graph::TaskGraph g;
  (void)g.add_task(model::make_log_speedup_model(), "log");
  EXPECT_THROW((void)write_graph_text(g), std::invalid_argument);
}

TEST(TextFormatTest, WhitespaceNamesRejected) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(1.0, 1),
                   "has space");
  EXPECT_THROW((void)write_graph_text(g), std::invalid_argument);
}

TEST(ReleasedTasksFormatTest, RoundTrip) {
  std::vector<sched::ReleasedTask> tasks;
  tasks.push_back(
      {std::make_shared<model::AmdahlModel>(10.0, 2.0), 0.0, "first"});
  tasks.push_back(
      {std::make_shared<model::CommunicationModel>(25.0, 0.5), 3.75,
       "second"});
  tasks.push_back(
      {std::make_shared<model::RooflineModel>(4.0, 8), 10.0, "third"});
  const auto text = write_released_tasks_text(tasks);
  const auto loaded = read_released_tasks_text(text);
  ASSERT_EQ(loaded.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(loaded[i].name, tasks[i].name);
    EXPECT_DOUBLE_EQ(loaded[i].release, tasks[i].release);
    for (const int p : {1, 3, 8})
      EXPECT_DOUBLE_EQ(loaded[i].model->time(p), tasks[i].model->time(p));
  }
  EXPECT_EQ(write_released_tasks_text(loaded), text);
}

TEST(ReleasedTasksFormatTest, RejectsBadInput) {
  EXPECT_THROW((void)read_released_tasks_text("task a roofline 1 0 0 1 0\n"),
               std::invalid_argument);  // missing header
  const std::string h = "# moldsched-released-tasks v1\n";
  EXPECT_THROW((void)read_released_tasks_text(h + "edge 0 1\n"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)read_released_tasks_text(h + "task a roofline 1 0 0 1\n"),
      std::invalid_argument);  // missing release field
  EXPECT_THROW(
      (void)read_released_tasks_text(h + "task a roofline 1 0 0 1 -2\n"),
      std::invalid_argument);  // negative release
  std::vector<sched::ReleasedTask> unnamed{
      {std::make_shared<model::RooflineModel>(1.0, 1), 0.0, ""}};
  EXPECT_THROW((void)write_released_tasks_text(unnamed),
               std::invalid_argument);
}

TEST(TextFormatTest, UnboundedPbarSpelledInf) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::AmdahlModel>(5.0, 1.0), "a");
  const auto text = write_graph_text(g);
  EXPECT_NE(text.find(" inf"), std::string::npos);
  const auto g2 = read_graph_text(text);
  EXPECT_DOUBLE_EQ(g2.model_of(0).time(1000), 5.0 / 1000.0 + 1.0);
}

}  // namespace
}  // namespace moldsched::io
