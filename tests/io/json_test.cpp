#include "moldsched/io/json.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/obs/trace_writer.hpp"

namespace moldsched::io {
namespace {

TEST(GraphJsonTest, EncodesTasksAndEdges) {
  graph::TaskGraph g;
  const auto a =
      g.add_task(std::make_shared<model::CommunicationModel>(10.0, 0.5), "a");
  const auto b =
      g.add_task(std::make_shared<model::AmdahlModel>(8.0, 2.0), "b");
  g.add_edge(a, b);
  const auto json = graph_to_json(g);
  EXPECT_NE(json.find("\"kind\":\"communication\""), std::string::npos);
  EXPECT_NE(json.find("\"w\":10"), std::string::npos);
  EXPECT_NE(json.find("\"c\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"edges\":[[0,1]]"), std::string::npos);
  // Unbounded pbar omitted.
  EXPECT_EQ(json.find("\"pbar\""), std::string::npos);
}

TEST(GraphJsonTest, EncodesBoundedPbar) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(4.0, 3), "r");
  const auto json = graph_to_json(g);
  EXPECT_NE(json.find("\"pbar\":3"), std::string::npos);
}

TEST(GraphJsonTest, ArbitraryModelsFallBackToDescription) {
  graph::TaskGraph g;
  (void)g.add_task(model::make_log_speedup_model(), "log");
  const auto json = graph_to_json(g);
  EXPECT_NE(json.find("\"model\":"), std::string::npos);
  EXPECT_NE(json.find("lg p"), std::string::npos);
}

TEST(GraphJsonTest, EscapesSpecialCharacters) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(1.0, 1),
                   "quote\"and\\slash");
  const auto json = graph_to_json(g);
  EXPECT_NE(json.find("quote\\\"and\\\\slash"), std::string::npos);
}

TEST(TraceJsonTest, EncodesRecordsAndMakespan) {
  sim::Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 1.5);
  const auto json = trace_to_json(t);
  EXPECT_NE(json.find("\"makespan\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"task\":0"), std::string::npos);
  EXPECT_NE(json.find("\"procs\":2"), std::string::npos);
}

TEST(TraceCsvTest, RoundTripThroughCsv) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(4.0, 2), "a");
  (void)g.add_task(std::make_shared<model::RooflineModel>(3.0, 1), "b");
  sim::Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 2.0);
  t.record_start(1, 2.0, 1);
  t.record_end(1, 5.0);
  const auto csv = trace_to_csv(g, t);
  const auto loaded = read_trace_csv(csv);
  ASSERT_EQ(loaded.records().size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.makespan(), 5.0);
  EXPECT_EQ(loaded.records()[0].procs, 2);
  EXPECT_DOUBLE_EQ(loaded.records()[1].start, 2.0);
}

TEST(TraceCsvTest, ReadRejectsMalformedInput) {
  EXPECT_THROW((void)read_trace_csv("wrong,header\n"),
               std::invalid_argument);
  const std::string h = "task,name,start,end,procs\n";
  EXPECT_THROW((void)read_trace_csv(h + "0,a,0,1\n"),
               std::invalid_argument);  // 4 fields
  EXPECT_THROW((void)read_trace_csv(h + "0,a,xx,1,1\n"),
               std::invalid_argument);  // non-numeric
  EXPECT_THROW((void)read_trace_csv(h + "0,a,2,1,1\n"),
               std::invalid_argument);  // end < start
  EXPECT_THROW((void)read_trace_csv(h + "0,a,0,1,1\n0,a,1,2,1\n"),
               std::invalid_argument);  // duplicate task
}

TEST(TraceCsvTest, CommasInNamesAreSanitized) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(1.0, 1),
                   "gemm(0,1,2)");
  sim::Trace t;
  t.record_start(0, 0.0, 1);
  t.record_end(0, 1.0);
  const auto csv = trace_to_csv(g, t);
  EXPECT_NE(csv.find("gemm(0;1;2)"), std::string::npos);
  // And the result stays machine-readable.
  EXPECT_NO_THROW((void)read_trace_csv(csv));
}

TEST(ChromeTraceTest, ExportValidatesAndNamesLanes) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(4.0, 2), "gemm");
  (void)g.add_task(std::make_shared<model::RooflineModel>(1.0, 1), "trsm");
  sim::Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 2.0);
  t.record_start(1, 2.0, 1);
  t.record_end(1, 3.0);
  const auto json = trace_to_chrome_json(t, /*P=*/3, "sim test", &g);
  obs::TraceStats stats;
  const auto problem = obs::validate_chrome_trace(json, &stats);
  ASSERT_FALSE(problem.has_value()) << *problem;
  // Task 0 occupies two processor lanes, task 1 one.
  EXPECT_EQ(stats.spans, 3u);
  EXPECT_GT(stats.counter_samples, 0u);
  EXPECT_NE(json.find("\"gemm\""), std::string::npos);
  EXPECT_NE(json.find("\"trsm\""), std::string::npos);
  EXPECT_NE(json.find("proc 0"), std::string::npos);
  EXPECT_NE(json.find("sim test"), std::string::npos);
  EXPECT_THROW((void)trace_to_chrome_json(t, 0), std::invalid_argument);
}

TEST(ChromeTraceTest, LargePlatformFallsBackToSlotLanes) {
  sim::Trace t;
  t.record_start(0, 0.0, 100);
  t.record_end(0, 1.0);
  const auto json = trace_to_chrome_json(t, /*P=*/128);
  obs::TraceStats stats;
  ASSERT_FALSE(obs::validate_chrome_trace(json, &stats).has_value());
  EXPECT_EQ(stats.spans, 1u);  // one span per task, not per processor
  EXPECT_NE(json.find("slot 0"), std::string::npos);
}

TEST(TraceCsvTest, OneRowPerTaskWithHeader) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(2.0, 1), "solo");
  sim::Trace t;
  t.record_start(0, 0.0, 1);
  t.record_end(0, 2.0);
  const auto csv = trace_to_csv(g, t);
  EXPECT_NE(csv.find("task,name,start,end,procs"), std::string::npos);
  EXPECT_NE(csv.find("0,solo,0,2,1"), std::string::npos);
}

// ---- parse_json: the DOM reader for BENCH_*.json and metrics dumps ----

TEST(ParseJsonTest, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").boolean);
  EXPECT_FALSE(parse_json("false").boolean);
  EXPECT_DOUBLE_EQ(parse_json("-12.5e2").number, -1250.0);
  EXPECT_DOUBLE_EQ(parse_json("0").number, 0.0);
  EXPECT_EQ(parse_json("\"hi\"").string, "hi");
}

TEST(ParseJsonTest, NestedStructuresKeepOrder) {
  const auto v = parse_json(
      R"({"b": [1, 2, {"deep": true}], "a": {"x": "y"}, "n": null})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "b");  // source order preserved
  EXPECT_EQ(v.object[1].first, "a");
  const auto& b = v.at("b");
  ASSERT_TRUE(b.is_array());
  ASSERT_EQ(b.array.size(), 3u);
  EXPECT_DOUBLE_EQ(b.array[1].number, 2.0);
  EXPECT_TRUE(b.array[2].at("deep").boolean);
  EXPECT_EQ(v.at("a").at("x").string, "y");
  EXPECT_TRUE(v.at("n").is_null());
}

TEST(ParseJsonTest, FindAndAt) {
  const auto v = parse_json(R"({"one": 1})");
  ASSERT_NE(v.find("one"), nullptr);
  EXPECT_DOUBLE_EQ(v.find("one")->number, 1.0);
  EXPECT_EQ(v.find("two"), nullptr);
  EXPECT_THROW((void)v.at("two"), std::out_of_range);
  // find on a non-object is a miss, not an error.
  EXPECT_EQ(parse_json("[1]").find("one"), nullptr);
}

TEST(ParseJsonTest, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\n\t")").string, "a\"b\\c/d\n\t");
  // \uXXXX decodes to UTF-8, including astral-plane surrogate pairs;
  // raw multi-byte UTF-8 passes through untouched.
  EXPECT_EQ(parse_json(R"("\u0041\u00e9")").string, "A\xc3\xa9");
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").string, "\xf0\x9f\x98\x80");
  EXPECT_EQ(parse_json(R"("é")").string, "\xc3\xa9");
  EXPECT_THROW((void)parse_json(R"("\ud83d")"), std::invalid_argument);
}

TEST(ParseJsonTest, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse_json(""), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("[1 2]"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("tru"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("\"unterminated"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("1 trailing"), std::invalid_argument);
}

TEST(ParseJsonTest, RejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 400; ++i) deep += '[';
  EXPECT_THROW((void)parse_json(deep), std::invalid_argument);
}

TEST(ParseJsonTest, DepthLimitIsExact) {
  // depth = number of open containers; max_depth of 3 admits [[[1]]]
  // but not [[[[1]]]].
  EXPECT_NO_THROW((void)parse_json("[[[1]]]", 3));
  EXPECT_THROW((void)parse_json("[[[[1]]]]", 3), std::invalid_argument);
  EXPECT_NO_THROW((void)parse_json("{\"a\":{\"b\":[1]}}", 3));
  EXPECT_THROW((void)parse_json("{\"a\":{\"b\":[[1]]}}", 3),
               std::invalid_argument);
}

TEST(ParseJsonTest, RejectsNonStandardNumbers) {
  // JSON's number grammar is strict; common C-isms must not slip in.
  for (const char* doc : {"01", "+1", "1.", ".5", "1e", "1e+", "-",
                          "0x10", "1.2.3", "Infinity", "NaN", "- 1"}) {
    EXPECT_THROW((void)parse_json(doc), std::invalid_argument) << doc;
  }
  // Out-of-double-range magnitudes are rejected, not rounded to inf.
  EXPECT_THROW((void)parse_json("1e99999"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("-1e99999"), std::invalid_argument);
  // But extreme-yet-finite values parse.
  EXPECT_NO_THROW((void)parse_json("1e308"));
  EXPECT_NO_THROW((void)parse_json("1e-320"));  // denormal is fine
}

TEST(ParseJsonTest, RejectsBadStringsAndEscapes) {
  EXPECT_THROW((void)parse_json(R"("\q")"), std::invalid_argument);
  EXPECT_THROW((void)parse_json(R"("\u12")"), std::invalid_argument);
  EXPECT_THROW((void)parse_json(R"("\u12zz")"), std::invalid_argument);
  // Raw control characters must be escaped inside strings.
  EXPECT_THROW((void)parse_json("\"a\nb\""), std::invalid_argument);
  EXPECT_THROW((void)parse_json("\"a\tb\""), std::invalid_argument);
  EXPECT_THROW((void)parse_json(std::string("\"a\0b\"", 5)),
               std::invalid_argument);
}

TEST(ParseJsonTest, RejectsTruncatedDocuments) {
  for (const char* doc :
       {"{\"a\":", "[1,", "{\"a\"", "[", "{", "\"", "{\"a\":1,", "[1,2",
        "{\"a\":{\"b\":1}", "fal", "nul", "-"}) {
    EXPECT_THROW((void)parse_json(doc), std::invalid_argument) << doc;
  }
}

TEST(ParseJsonTest, ErrorsCarryLineAndColumn) {
  // The offending token sits on line 3, column 8.
  try {
    (void)parse_json("{\n  \"a\": 1,\n  \"b\": trouble\n}");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("column 8"), std::string::npos) << msg;
  }
  // Single-line documents report column precisely too.
  try {
    (void)parse_json("[1, 2, x]");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("column 8"), std::string::npos) << msg;
  }
}

TEST(ParseJsonTest, RoundTripsTheLibraryGraphWriter) {
  graph::TaskGraph g;
  const auto a =
      g.add_task(std::make_shared<model::CommunicationModel>(10.0, 0.5), "a");
  const auto b =
      g.add_task(std::make_shared<model::AmdahlModel>(8.0, 2.0), "b");
  g.add_edge(a, b);
  const auto v = parse_json(graph_to_json(g));
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.at("tasks").array.size(), 2u);
  EXPECT_EQ(v.at("tasks").array[0].at("kind").string, "communication");
  EXPECT_DOUBLE_EQ(v.at("tasks").array[0].at("w").number, 10.0);
  ASSERT_EQ(v.at("edges").array.size(), 1u);
  EXPECT_DOUBLE_EQ(v.at("edges").array[0].array[0].number, 0.0);
  EXPECT_DOUBLE_EQ(v.at("edges").array[0].array[1].number, 1.0);
}

}  // namespace
}  // namespace moldsched::io
