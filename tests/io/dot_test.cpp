#include "moldsched/io/dot.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/model/special_models.hpp"

namespace moldsched::io {
namespace {

graph::TaskGraph small_graph() {
  graph::TaskGraph g;
  const auto a =
      g.add_task(std::make_shared<model::RooflineModel>(4.0, 2), "alpha");
  const auto b =
      g.add_task(std::make_shared<model::AmdahlModel>(6.0, 1.0), "beta");
  g.add_edge(a, b);
  return g;
}

TEST(DotTest, ContainsNodesEdgesAndLabels) {
  const auto dot = to_dot(small_graph());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("beta"), std::string::npos);
  EXPECT_NE(dot.find("roofline"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(DotTest, EscapesQuotesInNames) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(1.0, 1),
                   "has\"quote");
  const auto dot = to_dot(g);
  EXPECT_NE(dot.find("has\\\"quote"), std::string::npos);
}

TEST(DotWithScheduleTest, AnnotatesScheduledWindows) {
  const auto g = small_graph();
  sim::Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 2.0);
  t.record_start(1, 2.0, 3);
  t.record_end(1, 5.0);
  const auto dot = to_dot_with_schedule(g, t);
  EXPECT_NE(dot.find("[0.000, 2.000) p=2"), std::string::npos);
  EXPECT_NE(dot.find("[2.000, 5.000) p=3"), std::string::npos);
}

TEST(DotWithScheduleTest, MarksUnscheduledTasksDashed) {
  const auto g = small_graph();
  sim::Trace t;
  t.record_start(0, 0.0, 2);
  t.record_end(0, 2.0);
  const auto dot = to_dot_with_schedule(g, t);
  EXPECT_NE(dot.find("unscheduled"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(DotWithScheduleTest, RejectsUnknownTaskInTrace) {
  const auto g = small_graph();
  sim::Trace t;
  t.record_start(9, 0.0, 1);
  t.record_end(9, 1.0);
  EXPECT_THROW((void)to_dot_with_schedule(g, t), std::invalid_argument);
}

}  // namespace
}  // namespace moldsched::io
