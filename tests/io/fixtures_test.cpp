// The instance files shipped under data/ must stay loadable and
// schedulable — they are the repository's quickstart fixtures.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/stats.hpp"
#include "moldsched/io/text_format.hpp"
#include "moldsched/sim/validator.hpp"

namespace moldsched::io {
namespace {

std::string slurp(const std::string& relative) {
  const std::string path = std::string(MOLDSCHED_SOURCE_DIR) + "/" + relative;
  std::ifstream in(path);
  if (!in) ADD_FAILURE() << "cannot open fixture " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class FixtureTest : public testing::TestWithParam<const char*> {};

TEST_P(FixtureTest, LoadsValidatesAndSchedules) {
  const auto text = slurp(GetParam());
  ASSERT_FALSE(text.empty());
  const auto g = read_graph_text(text);
  EXPECT_GT(g.num_tasks(), 10);
  EXPECT_NO_THROW(g.validate());
  EXPECT_GT(graph::compute_stats(g).longest_path_tasks, 1);

  const int P = 16;
  const core::LpaAllocator alloc(0.25);
  const auto run = core::schedule_online(g, P, alloc);
  sim::expect_valid_schedule(g, run.trace, P);
  EXPECT_GE(run.makespan,
            analysis::optimal_makespan_lower_bound(g, P) * (1.0 - 1e-9));

  // Round trip is exact.
  EXPECT_EQ(write_graph_text(read_graph_text(text)), text);
}

INSTANTIATE_TEST_SUITE_P(
    ShippedInstances, FixtureTest,
    testing::Values("data/cholesky5_amdahl.msg",
                    "data/montage12_communication.msg",
                    "data/layered_general.msg"),
    [](const testing::TestParamInfo<const char*>& param_info) {
      std::string name = param_info.param;
      name = name.substr(name.find('/') + 1);
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

}  // namespace
}  // namespace moldsched::io
