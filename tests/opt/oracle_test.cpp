// Unit tests of the oracle convenience layer: exact_topt caps and
// values, the "exact-topt" registry spec's refusal semantics, and the
// shape invariants of the frozen small-instance corpus.
#include "moldsched/opt/oracle.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/sim/validator.hpp"

namespace moldsched::opt {
namespace {

graph::TaskGraph two_task_chain() {
  graph::TaskGraph g;
  const auto a =
      g.add_task(std::make_shared<model::RooflineModel>(8.0, 4), "a");
  const auto b =
      g.add_task(std::make_shared<model::RooflineModel>(6.0, 2), "b");
  g.add_edge(a, b);
  return g;
}

graph::TaskGraph chain_of(int n) {
  graph::TaskGraph g;
  graph::TaskId prev = 0;
  for (int i = 0; i < n; ++i) {
    const auto v =
        g.add_task(std::make_shared<model::RooflineModel>(2.0, 2));
    if (i > 0) g.add_edge(prev, v);
    prev = v;
  }
  return g;
}

TEST(OracleTest, DefaultsAreNodeBudgetOnly) {
  const auto d = oracle_defaults();
  EXPECT_EQ(d.max_tasks, 20);
  EXPECT_GT(d.node_budget, 0);
  // Wall-clock budgets would make certification machine-dependent; the
  // test tier must be deterministic, so only the node budget limits it.
  EXPECT_EQ(d.time_budget_s, 0.0);
}

TEST(OracleTest, ExactToptMatchesTheRawSearch) {
  const auto g = two_task_chain();
  const auto value = exact_topt(g, 4);
  ASSERT_TRUE(value.has_value());
  const auto raw = branch_and_bound_topt(g, 4, oracle_defaults());
  ASSERT_EQ(raw.status, BnbStatus::kExact);
  EXPECT_EQ(*value, raw.makespan);
  EXPECT_DOUBLE_EQ(*value, 8.0 / 4.0 + 6.0 / 2.0);
}

TEST(OracleTest, OverCapInstancesYieldNulloptNotThrow) {
  const auto big = chain_of(oracle_defaults().max_tasks + 1);
  EXPECT_EQ(exact_topt(big, 4), std::nullopt);
  EXPECT_THROW((void)exact_topt(two_task_chain(), 0), std::invalid_argument);
}

TEST(OracleTest, SpecRunsInCapsAndRefusesOverCaps) {
  const auto spec = exact_topt_spec();
  EXPECT_EQ(spec.name, "exact-topt");
  const auto g = two_task_chain();
  const auto result = spec.run(g, 4);
  EXPECT_DOUBLE_EQ(result.makespan, 8.0 / 4.0 + 6.0 / 2.0);
  const auto report = sim::validate_schedule(g, result.trace, 4);
  EXPECT_TRUE(report.ok()) << report.to_string();

  // Refusal, not garbage: over-cap instances throw, which
  // adv::evaluate_ratio maps to a refused candidate.
  const auto big = chain_of(oracle_defaults().max_tasks + 1);
  EXPECT_THROW((void)spec.run(big, 4), std::invalid_argument);

  // A starved budget truncates the proof; the spec must refuse rather
  // than present a non-optimal incumbent as T_opt.
  BnbOptions starved = oracle_defaults();
  starved.node_budget = 1;
  EXPECT_THROW((void)exact_topt_spec(starved).run(g, 4), std::runtime_error);
}

TEST(OracleTest, SmallCorpusShapeIsFrozen) {
  const auto corpus = small_corpus();
  // Append-only by convention: this count only ever grows.
  ASSERT_GE(corpus.size(), 12u);
  std::set<std::string> names;
  for (const auto& inst : corpus) {
    EXPECT_TRUE(names.insert(inst.name).second)
        << "duplicate instance name " << inst.name;
    EXPECT_GE(inst.graph.num_tasks(), 2);
    EXPECT_LE(inst.graph.num_tasks(), oracle_defaults().max_tasks);
    EXPECT_GE(inst.P, 2);
    EXPECT_LE(inst.P, oracle_defaults().max_procs);
    EXPECT_GT(inst.mu, 0.0);
    EXPECT_LT(inst.mu, 0.5);
    EXPECT_NO_THROW(inst.graph.validate()) << inst.name;
  }
  // The corpus is deterministic: a second materialization is identical
  // instance for instance.
  const auto again = small_corpus();
  ASSERT_EQ(again.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(again[i].name, corpus[i].name);
    EXPECT_EQ(again[i].P, corpus[i].P);
    EXPECT_EQ(again[i].graph.num_tasks(), corpus[i].graph.num_tasks());
  }
}

TEST(OracleTest, EveryCorpusInstanceCertifies) {
  // The whole point of the frozen corpus: each instance solves to
  // kExact within oracle_defaults, so golden T/T_opt pins exist for all
  // of them. A budget blowout here means a corpus change broke that.
  for (const auto& inst : small_corpus()) {
    const auto value = exact_topt(inst.graph, inst.P);
    ASSERT_TRUE(value.has_value()) << inst.name;
    EXPECT_GE(*value, analysis::optimal_makespan_lower_bound(
                          inst.graph, inst.P) *
                          (1.0 - 1e-9))
        << inst.name;
  }
}

}  // namespace
}  // namespace moldsched::opt
