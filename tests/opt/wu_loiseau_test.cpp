// Unit tests of the Wu-Loiseau offline reference schedulers: the
// canonical target sits at or above the Lemma 2 bound, both schedulers
// produce valid schedules that the exact oracle sandwiches from below,
// and the registry specs expose them as ordinary columns.
#include "moldsched/opt/wu_loiseau.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/opt/bnb.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::opt {
namespace {

graph::TaskGraph small_workload(std::uint64_t seed, int P) {
  util::Rng rng(seed);
  const model::ModelSampler sampler(model::ModelKind::kAmdahl);
  const auto provider = graph::sampling_provider(sampler, rng, P);
  return graph::layered_random(4, 1, 3, 0.4, rng, provider);
}

TEST(WuLoiseauTest, CanonicalTargetDominatesLemma2) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto g = small_workload(seed, 6);
    const double d_star = canonical_target(g, 6);
    const double lb = analysis::optimal_makespan_lower_bound(g, 6);
    EXPECT_GE(d_star, lb * (1.0 - 1e-9)) << "seed " << seed;
  }
}

TEST(WuLoiseauTest, SchedulesAreValidAndAboveTheLowerBound) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto g = small_workload(seed, 6);
    const double lb = analysis::optimal_makespan_lower_bound(g, 6);
    for (const auto* name : {"wl-canonical", "wl-compress"}) {
      const auto r = std::string(name) == "wl-canonical"
                         ? wl_canonical_schedule(g, 6)
                         : wl_compress_schedule(g, 6);
      EXPECT_GE(r.makespan, lb * (1.0 - 1e-9)) << name << " seed " << seed;
      EXPECT_GT(r.evaluations, 0) << name;
      const auto report = sim::validate_schedule(g, r.trace, 6);
      EXPECT_TRUE(report.ok()) << name << " seed " << seed << "\n"
                               << report.to_string();
      ASSERT_EQ(r.allocation.size(),
                static_cast<std::size_t>(g.num_tasks()));
      for (const int p : r.allocation) {
        EXPECT_GE(p, 1) << name;
        EXPECT_LE(p, 6) << name;
      }
    }
  }
}

TEST(WuLoiseauTest, ExactOptimumSandwichesBothFromBelow) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto g = small_workload(seed, 4);
    const auto bnb = branch_and_bound_topt(g, 4);
    ASSERT_EQ(bnb.status, BnbStatus::kExact) << "seed " << seed;
    EXPECT_GE(wl_canonical_schedule(g, 4).makespan,
              bnb.makespan * (1.0 - 1e-12))
        << "seed " << seed;
    EXPECT_GE(wl_compress_schedule(g, 4).makespan,
              bnb.makespan * (1.0 - 1e-12))
        << "seed " << seed;
  }
}

TEST(WuLoiseauTest, CompressNeverWorseThanItsStartingPoint) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto g = small_workload(seed, 8);
    const auto r = wl_compress_schedule(g, 8);
    // canonical_target carries the initial all-minimal-area makespan;
    // each accepted widening strictly improved the list schedule.
    EXPECT_LE(r.makespan, r.canonical_target * (1.0 + 1e-12))
        << "seed " << seed;
  }
}

TEST(WuLoiseauTest, RegistrySpecsRunAsOrdinaryColumns) {
  const auto suite = offline_reference_suite();
  ASSERT_EQ(suite.size(), 2u);
  EXPECT_EQ(suite[0].name, "wl-canonical");
  EXPECT_EQ(suite[1].name, "wl-compress");
  graph::TaskGraph g;
  const auto a =
      g.add_task(std::make_shared<model::AmdahlModel>(8.0, 1.0), "a");
  const auto b =
      g.add_task(std::make_shared<model::AmdahlModel>(4.0, 0.5), "b");
  g.add_edge(a, b);
  for (const auto& spec : suite) {
    const auto result = spec.run(g, 4);
    EXPECT_GT(result.makespan, 0.0) << spec.name;
    EXPECT_EQ(result.trace.records().size(), 2u) << spec.name;
    EXPECT_EQ(result.allocation.size(), 2u) << spec.name;
  }
}

}  // namespace
}  // namespace moldsched::opt
