// Unit tests of the branch-and-bound exact oracle: known tiny optima,
// bit-exact determinism across thread counts and against the unpruned
// brute force, budget semantics, and agreement with the pre-existing
// sched::ExactScheduler on instances both can handle.
#include "moldsched/opt/bnb.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/sched/exact.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::opt {
namespace {

model::ModelPtr roofline(double w, int pbar) {
  return std::make_shared<model::RooflineModel>(w, pbar);
}

TEST(BnbTest, SingleTaskRunsAtFullUsefulSpeed) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(12.0, 3));
  const auto r = branch_and_bound_topt(g, 4);
  EXPECT_EQ(r.status, BnbStatus::kExact);
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);  // 12 / min(3, 4)
  EXPECT_EQ(r.allocation[0], 3);
  EXPECT_DOUBLE_EQ(r.start_time[0], 0.0);
  EXPECT_DOUBLE_EQ(r.lower_bound, r.makespan);
}

TEST(BnbTest, ChainIsSequentialCriticalPath) {
  // A chain must serialize: T_opt = sum of each task's best time at P.
  graph::TaskGraph g;
  const auto a = g.add_task(roofline(8.0, 4));
  const auto b = g.add_task(roofline(6.0, 2));
  g.add_edge(a, b);
  const auto r = branch_and_bound_topt(g, 4);
  EXPECT_EQ(r.status, BnbStatus::kExact);
  EXPECT_DOUBLE_EQ(r.makespan, 8.0 / 4.0 + 6.0 / 2.0);
}

TEST(BnbTest, TwoIndependentTasksBeatGreedySequencing) {
  // Two roofline tasks (w = 4, pbar = 2) on P = 2: both at p = 1 in
  // parallel finish at 4, same as both at p = 2 back to back; the
  // optimum is 4 and the oracle must find it.
  graph::TaskGraph g;
  (void)g.add_task(roofline(4.0, 2));
  (void)g.add_task(roofline(4.0, 2));
  const auto r = branch_and_bound_topt(g, 2);
  EXPECT_EQ(r.status, BnbStatus::kExact);
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
}

TEST(BnbTest, RejectsBadArguments) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(1.0, 1));
  EXPECT_THROW((void)branch_and_bound_topt(g, 0), std::invalid_argument);
  BnbOptions small;
  small.max_tasks = 0;
  EXPECT_THROW((void)branch_and_bound_topt(g, 2, small),
               std::invalid_argument);
}

graph::TaskGraph sampled_graph(std::uint64_t seed, int P, int max_tasks) {
  util::Rng rng(seed);
  const model::ModelSampler sampler(model::ModelKind::kGeneral);
  for (int attempt = 0; attempt < 64; ++attempt) {
    util::Rng draw(util::derive_seed(seed, attempt));
    const auto provider = graph::sampling_provider(sampler, draw, P);
    auto g = graph::layered_random(3, 1, 3, 0.4, draw, provider);
    if (g.num_tasks() >= 2 &&
        g.num_tasks() <= static_cast<graph::TaskId>(max_tasks))
      return g;
  }
  ADD_FAILURE() << "no graph of <= " << max_tasks << " tasks in 64 draws";
  graph::TaskGraph fallback;
  (void)fallback.add_task(roofline(1.0, 1));
  return fallback;
}

TEST(BnbTest, BitIdenticalAcrossThreadCountsAndReruns) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto g = sampled_graph(seed, 4, 7);
    BnbOptions serial;
    serial.threads = 1;
    BnbOptions wide;
    wide.threads = 4;
    const auto a = branch_and_bound_topt(g, 4, serial);
    const auto b = branch_and_bound_topt(g, 4, wide);
    const auto c = branch_and_bound_topt(g, 4, wide);
    ASSERT_EQ(a.status, BnbStatus::kExact) << "seed " << seed;
    ASSERT_EQ(b.status, BnbStatus::kExact) << "seed " << seed;
    // Hexfloat identity, not approximate equality: the certificate pass
    // re-derives the value serially regardless of worker count.
    EXPECT_EQ(a.makespan, b.makespan) << "seed " << seed;
    EXPECT_EQ(b.makespan, c.makespan) << "seed " << seed;
    EXPECT_EQ(a.allocation, b.allocation) << "seed " << seed;
    EXPECT_EQ(a.start_time, b.start_time) << "seed " << seed;
  }
}

TEST(BnbTest, MatchesUnprunedBruteForceBitForBit) {
  for (std::uint64_t seed = 10; seed <= 13; ++seed) {
    const auto g = sampled_graph(seed, 3, 6);
    const auto pruned = branch_and_bound_topt(g, 3);
    const auto brute = brute_force_topt(g, 3, 8);
    ASSERT_EQ(pruned.status, BnbStatus::kExact) << "seed " << seed;
    ASSERT_EQ(brute.status, BnbStatus::kExact) << "seed " << seed;
    EXPECT_EQ(pruned.makespan, brute.makespan) << "seed " << seed;
    // Pruning must not blow up the search. The B&B counter covers two
    // passes (value + serial certificate), each individually bounded by
    // the unpruned tree, so 2x the brute-force count is the ceiling;
    // on tiny instances pruning can save less than the certificate
    // pass costs, so <= 1x would be wrong.
    EXPECT_LE(pruned.nodes, 2 * brute.nodes) << "seed " << seed;
  }
}

TEST(BnbTest, AgreesWithSchedExactSchedulerWithinTolerance) {
  // Two independent exhaustive searches with different branching rules;
  // the optimal value must coincide up to summation-order noise.
  for (std::uint64_t seed = 20; seed <= 22; ++seed) {
    const auto g = sampled_graph(seed, 4, 6);
    const auto bnb = branch_and_bound_topt(g, 4);
    const auto exact = sched::ExactScheduler(g, 4).run();
    ASSERT_EQ(bnb.status, BnbStatus::kExact) << "seed " << seed;
    EXPECT_NEAR(bnb.makespan, exact.makespan, 1e-9 * exact.makespan)
        << "seed " << seed;
  }
}

TEST(BnbTest, NodeBudgetDegradesToBoundedBracket) {
  const auto g = sampled_graph(30, 4, 7);
  BnbOptions tight;
  tight.node_budget = 1;
  const auto r = branch_and_bound_topt(g, 4, tight);
  EXPECT_EQ(r.status, BnbStatus::kBounded);
  // The bracket contract: lower_bound <= T_opt <= makespan, and the
  // reported incumbent is a real feasible schedule above Lemma 2.
  EXPECT_LE(r.lower_bound, r.makespan * (1.0 + 1e-12));
  EXPECT_GE(r.makespan,
            analysis::optimal_makespan_lower_bound(g, 4) * (1.0 - 1e-9));

  const auto full = branch_and_bound_topt(g, 4);
  ASSERT_EQ(full.status, BnbStatus::kExact);
  EXPECT_LE(r.lower_bound, full.makespan * (1.0 + 1e-12));
  EXPECT_GE(r.makespan, full.makespan * (1.0 - 1e-12));
}

TEST(BnbTest, BruteForceHonorsItsOwnNodeBudget) {
  const auto g = sampled_graph(31, 4, 7);
  const auto truncated = brute_force_topt(g, 4, 8, 1);
  EXPECT_EQ(truncated.status, BnbStatus::kBounded);
  EXPECT_THROW((void)brute_force_topt(g, 4, 1), std::invalid_argument)
      << "graph over max_tasks must be rejected";
}

TEST(BnbTest, CertificateScheduleReproducesTheMakespan) {
  const auto g = sampled_graph(40, 4, 7);
  const auto r = branch_and_bound_topt(g, 4);
  ASSERT_EQ(r.status, BnbStatus::kExact);
  double recomputed = 0.0;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    const auto idx = static_cast<std::size_t>(v);
    ASSERT_GE(r.allocation[idx], 1);
    const double finish =
        r.start_time[idx] + g.model_of(v).time(r.allocation[idx]);
    if (finish > recomputed) recomputed = finish;
  }
  EXPECT_EQ(recomputed, r.makespan);
}

}  // namespace
}  // namespace moldsched::opt
