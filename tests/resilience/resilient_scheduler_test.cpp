#include "moldsched/resilience/resilient_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/util/rng.hpp"
#include "moldsched/util/stats.hpp"

namespace moldsched::resilience {
namespace {

graph::TaskGraph sample_graph(std::uint64_t seed, int P) {
  util::Rng rng(seed);
  static const model::ModelSampler sampler(model::ModelKind::kAmdahl);
  return graph::layered_random(5, 2, 6, 0.4, rng,
                               graph::sampling_provider(sampler, rng, P));
}

TEST(ResilientSchedulerTest, NoFailuresMatchesPlainAlgorithm1) {
  const int P = 12;
  const auto g = sample_graph(1, P);
  const core::LpaAllocator alloc(0.271);

  const auto plain = core::schedule_online(g, P, alloc);
  const ResilientOnlineScheduler sched(g, P, alloc,
                                       std::make_shared<NoFailures>(), 7);
  const auto resilient = sched.run();

  EXPECT_DOUBLE_EQ(resilient.makespan, plain.makespan);
  EXPECT_EQ(resilient.allocation, plain.allocation);
  for (const int attempts : resilient.attempts_per_task)
    EXPECT_EQ(attempts, 1);
  EXPECT_DOUBLE_EQ(resilient.wasted_area, 0.0);
  EXPECT_TRUE(validate_resilient_schedule(g, resilient, P).empty());
}

TEST(ResilientSchedulerTest, FailuresForceReexecution) {
  const int P = 8;
  const auto g = sample_graph(2, P);
  const core::LpaAllocator alloc(0.271);
  const ResilientOnlineScheduler sched(
      g, P, alloc, std::make_shared<BernoulliFailures>(0.4), 11);
  const auto result = sched.run();

  int total_attempts = 0;
  for (const int a : result.attempts_per_task) {
    EXPECT_GE(a, 1);
    total_attempts += a;
  }
  EXPECT_GT(total_attempts, g.num_tasks());  // q = 0.4 will retry something
  EXPECT_GT(result.wasted_area, 0.0);
  EXPECT_LT(result.wasted_area, result.total_area);
  const auto violations = validate_resilient_schedule(g, result, P);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: " << violations.front();
}

TEST(ResilientSchedulerTest, DeterministicGivenSeed) {
  const int P = 8;
  const auto g = sample_graph(3, P);
  const core::LpaAllocator alloc(0.271);
  const auto model = std::make_shared<BernoulliFailures>(0.3);
  const auto r1 = ResilientOnlineScheduler(g, P, alloc, model, 42).run();
  const auto r2 = ResilientOnlineScheduler(g, P, alloc, model, 42).run();
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.attempts_per_task, r2.attempts_per_task);
  const auto r3 = ResilientOnlineScheduler(g, P, alloc, model, 43).run();
  // A different seed almost surely draws different failures.
  EXPECT_NE(r1.attempts_per_task, r3.attempts_per_task);
}

TEST(ResilientSchedulerTest, MakespanGrowsWithFailureRate) {
  const int P = 8;
  const auto g = sample_graph(4, P);
  const core::LpaAllocator alloc(0.271);
  double prev = 0.0;
  for (const double q : {0.0, 0.3, 0.6}) {
    util::Accumulator acc;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const ResilientOnlineScheduler sched(
          g, P, alloc, std::make_shared<BernoulliFailures>(q), seed);
      acc.add(sched.run().makespan);
    }
    EXPECT_GT(acc.mean(), prev) << "q=" << q;
    prev = acc.mean();
  }
}

TEST(ResilientSchedulerTest, PoissonModelPenalizesLargeAllocations) {
  // Under area-proportional failures, min-time allocations (big areas)
  // should waste more work than LPA's area-lean allocations.
  const int P = 16;
  util::Rng rng(5);
  const model::ModelSampler sampler(model::ModelKind::kCommunication);
  const auto g = graph::independent(
      30, graph::sampling_provider(sampler, rng, P));
  const auto failures = std::make_shared<PoissonAreaFailures>(0.002);

  const core::LpaAllocator lpa(0.324);
  double lpa_waste = 0.0;
  double greedy_waste = 0.0;
  class MaxAlloc : public core::Allocator {
   public:
    int allocate(const model::SpeedupModel& m, int P_) const override {
      return m.max_useful_procs(P_);
    }
    std::string name() const override { return "max"; }
  };
  const MaxAlloc greedy;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    lpa_waste +=
        ResilientOnlineScheduler(g, P, lpa, failures, seed).run().wasted_area;
    greedy_waste += ResilientOnlineScheduler(g, P, greedy, failures, seed)
                        .run()
                        .wasted_area;
  }
  EXPECT_LT(lpa_waste, greedy_waste);
}

TEST(ResilientSchedulerTest, MeanAttemptsMatchGeometricExpectation) {
  // With Bernoulli(q) failures, attempts per task are geometric with
  // mean 1/(1-q); across many tasks and seeds the sample mean must land
  // near it.
  const int P = 8;
  util::Rng rng(99);
  const model::ModelSampler sampler(model::ModelKind::kRoofline);
  const auto g =
      graph::independent(60, graph::sampling_provider(sampler, rng, P));
  const core::LpaAllocator alloc(0.38);
  for (const double q : {0.2, 0.5}) {
    const auto failures = std::make_shared<BernoulliFailures>(q);
    double total = 0.0;
    long count = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const auto result =
          ResilientOnlineScheduler(g, P, alloc, failures, seed).run();
      for (const int a : result.attempts_per_task) {
        total += a;
        ++count;
      }
    }
    const double mean = total / static_cast<double>(count);
    EXPECT_NEAR(mean, 1.0 / (1.0 - q), 0.15 / (1.0 - q)) << "q=" << q;
  }
}

TEST(ResilientSchedulerTest, RejectsBadConstruction) {
  const auto g = sample_graph(6, 4);
  const core::LpaAllocator alloc(0.3);
  EXPECT_THROW(
      ResilientOnlineScheduler(g, 0, alloc, std::make_shared<NoFailures>(), 1),
      std::invalid_argument);
  EXPECT_THROW(ResilientOnlineScheduler(g, 4, alloc, nullptr, 1),
               std::invalid_argument);
  graph::TaskGraph empty;
  EXPECT_THROW(ResilientOnlineScheduler(empty, 4, alloc,
                                        std::make_shared<NoFailures>(), 1),
               std::logic_error);
}

TEST(ValidateResilientTest, CatchesHandMadeViolations) {
  graph::TaskGraph g;
  const auto a =
      g.add_task(std::make_shared<model::RooflineModel>(2.0, 1), "a");
  const auto b =
      g.add_task(std::make_shared<model::RooflineModel>(2.0, 1), "b");
  g.add_edge(a, b);

  ResilientResult r;
  r.allocation = {1, 1};
  r.attempts_per_task = {1, 1};
  // b starts before a succeeds.
  r.attempts.push_back({0, 1, 0.0, 2.0, 1, false});
  r.attempts.push_back({1, 1, 1.0, 3.0, 1, false});
  const auto violations = validate_resilient_schedule(g, r, 2);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("before predecessor"),
            std::string::npos);

  // Two successes for one task.
  ResilientResult r2;
  r2.attempts.push_back({0, 1, 0.0, 2.0, 1, false});
  r2.attempts.push_back({0, 2, 2.0, 4.0, 1, false});
  r2.attempts.push_back({1, 1, 4.0, 6.0, 1, false});
  EXPECT_FALSE(validate_resilient_schedule(g, r2, 2).empty());
}

TEST(ResilientSchedulerTest, LemmaBoundsStillHoldWithoutFailures) {
  // Sanity: the resilient engine with NoFailures inherits Algorithm 1's
  // competitive guarantee.
  const int P = 16;
  const auto g = sample_graph(7, P);
  const double mu = analysis::optimal_mu(model::ModelKind::kAmdahl);
  const core::LpaAllocator alloc(mu);
  const auto result =
      ResilientOnlineScheduler(g, P, alloc, std::make_shared<NoFailures>(), 1)
          .run();
  const double bound =
      analysis::optimal_ratio(model::ModelKind::kAmdahl).upper_bound;
  const double lb = analysis::optimal_makespan_lower_bound(g, P);
  EXPECT_LE(result.makespan, bound * lb * (1.0 + 1e-9));
}

}  // namespace
}  // namespace moldsched::resilience
