#include "moldsched/resilience/failure_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace moldsched::resilience {
namespace {

TEST(BernoulliFailuresTest, RejectsBadProbability) {
  EXPECT_THROW(BernoulliFailures(-0.1), std::invalid_argument);
  EXPECT_THROW(BernoulliFailures(1.0), std::invalid_argument);
  EXPECT_NO_THROW(BernoulliFailures{0.0});
  EXPECT_NO_THROW(BernoulliFailures{0.99});
}

TEST(BernoulliFailuresTest, FrequencyMatchesQ) {
  const BernoulliFailures f(0.3);
  util::Rng rng(1);
  int fails = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (f.attempt_fails(1.0, 4, rng)) ++fails;
  EXPECT_NEAR(static_cast<double>(fails) / n, 0.3, 0.02);
}

TEST(BernoulliFailuresTest, ExpectedAttempts) {
  EXPECT_DOUBLE_EQ(BernoulliFailures(0.0).expected_attempts(1.0, 1), 1.0);
  EXPECT_DOUBLE_EQ(BernoulliFailures(0.5).expected_attempts(1.0, 1), 2.0);
  EXPECT_NEAR(BernoulliFailures(0.9).expected_attempts(1.0, 1), 10.0, 1e-12);
}

TEST(BernoulliFailuresTest, IgnoresAttemptShape) {
  const BernoulliFailures f(0.5);
  EXPECT_DOUBLE_EQ(f.expected_attempts(0.1, 1), f.expected_attempts(100.0, 64));
}

TEST(PoissonAreaFailuresTest, RejectsNegativeLambda) {
  EXPECT_THROW(PoissonAreaFailures(-1.0), std::invalid_argument);
  EXPECT_NO_THROW(PoissonAreaFailures{0.0});
}

TEST(PoissonAreaFailuresTest, ZeroLambdaNeverFails) {
  const PoissonAreaFailures f(0.0);
  util::Rng rng(2);
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(f.attempt_fails(100.0, 64, rng));
}

TEST(PoissonAreaFailuresTest, FailureGrowsWithArea) {
  const PoissonAreaFailures f(0.01);
  util::Rng rng(3);
  int small_fails = 0;
  int big_fails = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (f.attempt_fails(1.0, 1, rng)) ++small_fails;     // area 1
    if (f.attempt_fails(10.0, 10, rng)) ++big_fails;     // area 100
  }
  // Expected rates: 1 - e^{-0.01} ~ 0.00995, 1 - e^{-1} ~ 0.632.
  EXPECT_NEAR(static_cast<double>(small_fails) / n, 0.00995, 0.005);
  EXPECT_NEAR(static_cast<double>(big_fails) / n, 0.632, 0.02);
}

TEST(PoissonAreaFailuresTest, ExpectedAttemptsIsExpLambdaArea) {
  const PoissonAreaFailures f(0.02);
  EXPECT_NEAR(f.expected_attempts(5.0, 4), std::exp(0.02 * 20.0), 1e-12);
}

TEST(PoissonAreaFailuresTest, RejectsBadAttemptShape) {
  const PoissonAreaFailures f(0.1);
  util::Rng rng(4);
  EXPECT_THROW((void)f.attempt_fails(-1.0, 1, rng), std::invalid_argument);
  EXPECT_THROW((void)f.attempt_fails(1.0, 0, rng), std::invalid_argument);
}

TEST(NoFailuresTest, NeverFails) {
  const NoFailures f;
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(f.attempt_fails(1e9, 1024, rng));
  EXPECT_DOUBLE_EQ(f.expected_attempts(1e9, 1024), 1.0);
}

TEST(FailureModelTest, DescribeMentionsParameters) {
  EXPECT_NE(BernoulliFailures(0.25).describe().find("0.25"),
            std::string::npos);
  EXPECT_NE(PoissonAreaFailures(0.5).describe().find("0.5"),
            std::string::npos);
}

}  // namespace
}  // namespace moldsched::resilience
