// JSON task-graph importer: the moldsched-taskgraph-v1 schema surface
// plus the malformed-input batteries. Error docs are kept on a single
// line so every expected column is just offset + 1 — the assertions
// stay exact without hand-counted positions.
#include "moldsched/ingest/json_import.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "moldsched/model/general_model.hpp"

namespace moldsched::ingest {
namespace {

std::string error_of(const std::string& text,
                     std::size_t max_bytes = kDefaultMaxImportBytes) {
  try {
    (void)import_taskgraph_json(text, max_bytes);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "(no error)";
}

/// " at byte N (line 1, column N+1)" for single-line documents.
std::string at(const std::string& text, const std::string& needle) {
  const std::size_t off = text.find(needle);
  EXPECT_NE(off, std::string::npos) << needle;
  return " at byte " + std::to_string(off) + " (line 1, column " +
         std::to_string(off + 1) + ")";
}

const char* kHeader = R"({"format": "moldsched-taskgraph-v1", )";

TEST(JsonImportTest, ParsesAllThreeModelSpecifications) {
  const std::string text = R"({
  "format": "moldsched-taskgraph-v1",
  "name": "mini",
  "P": 16,
  "tasks": [
    {"id": 0, "name": "stage", "model":
      {"kind": "amdahl", "w": 40, "d": 2, "pbar": 8}},
    {"id": 1, "times": [8.0, 4.5, 4.6]},
    {"id": 2, "profile": [[1, 9.0], [2, 4.8], [4, 2.7]]}
  ],
  "edges": [[0, 1], [1, 2]]
})";
  const ImportedGraph g = import_taskgraph_json(text);
  EXPECT_EQ(g.name, "mini");
  EXPECT_EQ(g.default_P, 16);
  ASSERT_EQ(g.tasks.size(), 3u);
  EXPECT_EQ(g.tasks[0].name, "stage");
  ASSERT_TRUE(g.tasks[0].params.has_value());
  EXPECT_EQ(g.tasks[0].params->kind, model::ModelKind::kAmdahl);
  EXPECT_EQ(g.tasks[0].params->params.w, 40.0);
  EXPECT_EQ(g.tasks[0].params->params.d, 2.0);
  EXPECT_EQ(g.tasks[0].params->params.pbar, 8);
  EXPECT_EQ(g.tasks[1].name, "task1");  // default name from the id
  ASSERT_EQ(g.tasks[1].times.size(), 3u);
  EXPECT_EQ(g.tasks[1].times[2], 4.6);  // non-monotonic tables are legal
  ASSERT_EQ(g.tasks[2].profile.size(), 3u);
  EXPECT_EQ(g.tasks[2].profile[2].first, 4);
  ASSERT_EQ(g.edges.size(), 2u);
  EXPECT_EQ(g.edges[1].from, 1);
  EXPECT_EQ(g.edges[1].to, 2);
}

TEST(JsonImportTest, SyntaxErrorsComeFromParseJsonWithPositions) {
  const std::string text = "{\"format\": }";
  const std::string err = error_of(text);
  EXPECT_NE(err.find("parse_json: "), std::string::npos) << err;
  EXPECT_NE(err.find(" at byte "), std::string::npos) << err;
}

TEST(JsonImportTest, FormatEnvelopeIsEnforced) {
  EXPECT_EQ(error_of("[1, 2]"),
            "import_taskgraph: document must be an object"
            " at byte 0 (line 1, column 1)");
  EXPECT_EQ(error_of("{\"tasks\": []}"),
            "import_taskgraph: missing string 'format'"
            " at byte 0 (line 1, column 1)");
  const std::string bad = R"({"format": "dax", "tasks": []})";
  EXPECT_EQ(error_of(bad),
            "import_taskgraph: unsupported format 'dax' (expected"
            " 'moldsched-taskgraph-v1')" + at(bad, "\"dax\""));
  EXPECT_EQ(error_of(std::string(kHeader) + R"("name": "x"})"),
            "import_taskgraph: missing 'tasks' array"
            " at byte 0 (line 1, column 1)");
}

TEST(JsonImportTest, NonDenseIdsAreRejectedAtTheOffendingId) {
  const std::string skipped =
      std::string(kHeader) +
      R"("tasks": [{"id": 0, "times": [1]}, {"id": 7, "times": [1]}]})";
  EXPECT_EQ(error_of(skipped),
            "import_taskgraph: task ids must be dense and ascending"
            " (expected 1)" + at(skipped, "7"));
  const std::string dup =
      std::string(kHeader) +
      R"("tasks": [{"id": 0, "times": [1]}, {"id": 0, "times": [3]}]})";
  const std::size_t second = dup.rfind("0, \"times\"");
  EXPECT_EQ(error_of(dup),
            "import_taskgraph: task ids must be dense and ascending"
            " (expected 1) at byte " + std::to_string(second) +
                " (line 1, column " + std::to_string(second + 1) + ")");
}

TEST(JsonImportTest, CyclicImportIsRejectedAtTheOffendingTask) {
  const std::string text =
      std::string(kHeader) +
      R"("tasks": [{"id": 0, "times": [1]}, {"id": 1, "times": [1]}], )" +
      R"("edges": [[0, 1], [1, 0]]})";
  EXPECT_EQ(error_of(text),
            "import_taskgraph: cycle detected through task 'task0'" +
                at(text, "{\"id\": 0"));
}

TEST(JsonImportTest, ExactlyOneModelSpecificationPerTask) {
  const std::string none =
      std::string(kHeader) + R"("tasks": [{"id": 0, "name": "n"}]})";
  EXPECT_EQ(error_of(none),
            "import_taskgraph: task 'n' needs one of 'model', 'times' or"
            " 'profile'" + at(none, "{\"id\""));
  const std::string both =
      std::string(kHeader) +
      R"("tasks": [{"id": 0, "times": [1], "profile": [[1, 2]]}]})";
  EXPECT_EQ(error_of(both),
            "import_taskgraph: task 'task0' has more than one model"
            " specification" + at(both, "{\"id\""));
}

TEST(JsonImportTest, ModelObjectConstraints) {
  const std::string unknown =
      std::string(kHeader) +
      R"("tasks": [{"id": 0, "model": {"kind": "magic", "w": 5}}]})";
  EXPECT_EQ(error_of(unknown),
            "import_taskgraph: unknown model kind 'magic'" +
                at(unknown, "\"magic\""));
  const std::string no_w =
      std::string(kHeader) +
      R"("tasks": [{"id": 0, "model": {"kind": "roofline"}}]})";
  EXPECT_EQ(error_of(no_w),
            "import_taskgraph: 'model' needs a numeric 'w'" +
                at(no_w, "{\"kind\""));
  const std::string zero_d =
      std::string(kHeader) +
      R"("tasks": [{"id": 0, "model": {"kind": "amdahl", "w": 5}}]})";
  EXPECT_EQ(error_of(zero_d),
            "import_taskgraph: amdahl model needs d > 0" +
                at(zero_d, "{\"kind\""));
  const std::string zero_c =
      std::string(kHeader) +
      R"("tasks": [{"id": 0, "model": {"kind": "communication", "w": 5}}]})";
  EXPECT_EQ(error_of(zero_c),
            "import_taskgraph: communication model needs c > 0" +
                at(zero_c, "{\"kind\""));
  const std::string bad_pbar =
      std::string(kHeader) +
      R"("tasks": [{"id": 0, "model":)" +
      R"( {"kind": "roofline", "w": 5, "pbar": 0}}]})";
  EXPECT_EQ(error_of(bad_pbar),
            "import_taskgraph: 'pbar' must be >= 1" + at(bad_pbar, "0}}"));
}

TEST(JsonImportTest, ProfileConstraints) {
  const std::string non_mono =
      std::string(kHeader) +
      R"("tasks": [{"id": 0, "profile": [[4, 2.0], [2, 3.0]]}]})";
  EXPECT_EQ(error_of(non_mono),
            "import_taskgraph: profile allocations must be strictly"
            " increasing" + at(non_mono, "2, 3.0"));
  const std::string zero_p =
      std::string(kHeader) +
      R"("tasks": [{"id": 0, "profile": [[0, 2.0]]}]})";
  EXPECT_EQ(error_of(zero_p),
            "import_taskgraph: profile procs must be >= 1" +
                at(zero_p, "0, 2.0"));
  const std::string bad_pair =
      std::string(kHeader) +
      R"("tasks": [{"id": 0, "profile": [[1, 2.0, 3.0]]}]})";
  EXPECT_EQ(error_of(bad_pair),
            "import_taskgraph: profile entries must be [procs, time] pairs" +
                at(bad_pair, "[1, 2.0, 3.0]"));
}

TEST(JsonImportTest, EdgeConstraints) {
  const std::string range =
      std::string(kHeader) +
      R"("tasks": [{"id": 0, "times": [1]}], "edges": [[0, 7]]})";
  EXPECT_EQ(error_of(range),
            "import_taskgraph: edge endpoint out of range" +
                at(range, "[0, 7]"));
  const std::string shape =
      std::string(kHeader) +
      R"("tasks": [{"id": 0, "times": [1]}], "edges": [[0]]})";
  EXPECT_EQ(error_of(shape),
            "import_taskgraph: edges must be [from, to] pairs" +
                at(shape, "[0]]"));
}

TEST(JsonImportTest, OversizedInputIsRejectedBeforeParsing) {
  const std::string text(100, 'x');
  EXPECT_EQ(error_of(text, 64),
            "import_taskgraph: input of 100 bytes exceeds the 64-byte"
            " limit at byte 64 (line 1, column 65)");
}

}  // namespace
}  // namespace moldsched::ingest
