// The bundled workload catalog: deterministic load order, the bit-exact
// fit-quality CSV, coverage of all four model sources, and the error
// paths for missing/broken catalog directories.
#include "moldsched/ingest/catalog.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>

namespace moldsched::ingest {
namespace {

TEST(CatalogTest, BundledCatalogLoadsDeterministically) {
  const auto workloads = load_bundled_workloads();
  EXPECT_GE(workloads.size(), 6u);
  std::set<std::string> names;
  std::string prev;
  for (const auto& w : workloads) {
    EXPECT_TRUE(names.insert(w.name).second) << w.name;
    EXPECT_LE(prev, w.name) << "catalog must be sorted by filename";
    prev = w.name;
    EXPECT_GT(w.graph.num_tasks(), 0) << w.name;
    EXPECT_GE(w.P, 1) << w.name;
    EXPECT_TRUE(w.format == "dot" || w.format == "json") << w.format;
    EXPECT_EQ(w.fit.tasks.size(),
              static_cast<std::size_t>(w.graph.num_tasks()));
  }
  // Both front ends contribute.
  std::set<std::string> formats;
  for (const auto& w : workloads) formats.insert(w.format);
  EXPECT_EQ(formats.size(), 2u);
}

TEST(CatalogTest, FitQualityCsvIsBitIdenticalAcrossLoads) {
  const std::string a = fit_quality_csv(load_bundled_workloads());
  const std::string b = fit_quality_csv(load_bundled_workloads());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.substr(0, a.find('\n')),
            "instance,task,name,source,kind,w,d,c,pbar,rmse,max_rel_err,"
            "samples");
}

TEST(CatalogTest, CatalogExercisesEveryModelSource) {
  const auto workloads = load_bundled_workloads();
  std::set<std::string> sources;
  std::set<model::ModelKind> fitted_kinds;
  for (const auto& w : workloads) {
    for (const auto& t : w.fit.tasks) {
      sources.insert(t.source);
      if (t.source == "fitted") fitted_kinds.insert(t.kind);
    }
  }
  EXPECT_TRUE(sources.count("params")) << "explicit Eq. (1) parameters";
  EXPECT_TRUE(sources.count("times")) << "raw t(p) tables";
  EXPECT_TRUE(sources.count("fitted")) << "profile-fitted models";
  EXPECT_TRUE(sources.count("fallback")) << "TableModel fallback";
  // The NPU lowering file carries exact roofline/amdahl profiles, so
  // selection lands in the simpler families, not just kGeneral.
  EXPECT_TRUE(fitted_kinds.count(model::ModelKind::kRoofline));
  EXPECT_TRUE(fitted_kinds.count(model::ModelKind::kAmdahl));
  EXPECT_TRUE(fitted_kinds.count(model::ModelKind::kGeneral));
}

TEST(CatalogTest, MissingDirectoryIsARuntimeError) {
  EXPECT_THROW((void)load_workloads("/nonexistent/workloads"),
               std::runtime_error);
  const std::string empty =
      testing::TempDir() + "moldsched_empty_catalog";
  std::filesystem::create_directories(empty);
  EXPECT_THROW((void)load_workloads(empty), std::runtime_error);
}

TEST(CatalogTest, BrokenFileReportsItsPathAndPosition) {
  const std::string dir = testing::TempDir() + "moldsched_broken_catalog";
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/bad.dot");
    out << "digraph g {\n  a [work=1]\n";
  }
  try {
    (void)load_workloads(dir);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad.dot"), std::string::npos) << what;
    EXPECT_NE(what.find("unexpected end of input (unterminated digraph)"
                        " at byte 25 (line 3, column 1)"),
              std::string::npos)
        << what;
  }
}

}  // namespace
}  // namespace moldsched::ingest
