// Per-task model selection: candidate preference order, the
// prefer-simpler tolerance, the TableModel fallback, and the bit-exact
// determinism the fit-quality CSV depends on.
#include "moldsched/ingest/fit_select.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <utility>
#include <vector>

#include "moldsched/model/general_model.hpp"
#include "moldsched/model/special_models.hpp"

namespace moldsched::ingest {
namespace {

std::vector<std::pair<int, double>> sample_model(
    const model::SpeedupModel& m, std::initializer_list<int> ps) {
  std::vector<std::pair<int, double>> out;
  for (const int p : ps) out.emplace_back(p, m.time(p));
  return out;
}

model::GeneralModel general(double w, double d, double c) {
  model::GeneralParams p;
  p.w = w;
  p.d = d;
  p.c = c;
  return model::GeneralModel(p);
}

constexpr int kNoPbar = model::GeneralParams::kUnboundedParallelism;

TEST(FitSelectTest, ExactDataLandsInItsOwnFamily) {
  const auto roof = select_model(
      sample_model(model::RooflineModel(24.0, kNoPbar), {1, 2, 4, 8, 16}));
  EXPECT_EQ(roof.fit.source, "fitted");
  EXPECT_EQ(roof.fit.kind, model::ModelKind::kRoofline);
  EXPECT_EQ(roof.model->kind(), model::ModelKind::kRoofline);
  EXPECT_NEAR(roof.fit.params.w, 24.0, 1e-9);

  const auto amd = select_model(
      sample_model(model::AmdahlModel(64.0, 4.0), {1, 2, 4, 8, 16}));
  EXPECT_EQ(amd.fit.kind, model::ModelKind::kAmdahl);
  EXPECT_NEAR(amd.fit.params.d, 4.0, 1e-9);

  const auto comm = select_model(
      sample_model(model::CommunicationModel(120.0, 0.5), {1, 2, 4, 8, 16}));
  EXPECT_EQ(comm.fit.kind, model::ModelKind::kCommunication);
  EXPECT_NEAR(comm.fit.params.c, 0.5, 1e-9);

  const auto gen = select_model(
      sample_model(general(90.0, 3.0, 0.4), {1, 2, 4, 8, 16, 32}));
  EXPECT_EQ(gen.fit.kind, model::ModelKind::kGeneral);
  EXPECT_NEAR(gen.fit.params.w, 90.0, 1e-6);
  EXPECT_NEAR(gen.fit.params.d, 3.0, 1e-6);
  EXPECT_NEAR(gen.fit.params.c, 0.4, 1e-8);
}

TEST(FitSelectTest, SimplerFamilyWinsTiesAgainstTheNestingGeneral) {
  // Exact amdahl data is also an exact general fit (general nests every
  // family); the preference order must still pick amdahl.
  const auto samples =
      sample_model(model::AmdahlModel(40.0, 2.0), {1, 2, 4, 8, 16, 32});
  const auto choice = select_model(samples);
  EXPECT_EQ(choice.fit.kind, model::ModelKind::kAmdahl);
  EXPECT_NEAR(choice.fit.rmse, 0.0, 1e-9);
}

TEST(FitSelectTest, PreferSimplerToleranceWidensTheCut) {
  // Hand-perturbed general-model measurements (truth 90/p + 3 +
  // 0.4(p-1)): the best RMSE is nonzero, so the relative tolerance has
  // something to scale.
  const std::vector<std::pair<int, double>> samples{
      {1, 93.9}, {2, 47.9}, {4, 26.9}, {8, 16.9}, {16, 14.8}, {32, 18.1}};
  // Zero tolerance: only the true minimum survives the cutoff.
  FitOptions strict;
  strict.prefer_simpler_tolerance = 0.0;
  strict.max_relative_error = 1e9;
  EXPECT_EQ(select_model(samples, strict).fit.kind,
            model::ModelKind::kGeneral);
  // An absurdly wide tolerance admits every candidate, so the first
  // (simplest) one wins — provided the quality gate is disabled too.
  FitOptions loose;
  loose.prefer_simpler_tolerance = 1e9;
  loose.max_relative_error = 1e9;
  const auto roof = select_model(samples, loose);
  EXPECT_EQ(roof.fit.source, "fitted");
  EXPECT_EQ(roof.fit.kind, model::ModelKind::kRoofline);
}

TEST(FitSelectTest, UnfittableProfileFallsBackToTheTable) {
  // A sawtooth profile no monotone Eq. (1) family can follow.
  const std::vector<std::pair<int, double>> profile{
      {1, 10.0}, {2, 1.0}, {3, 10.0}, {4, 1.0}, {5, 10.0}};
  const auto choice = select_model(profile);
  EXPECT_EQ(choice.fit.source, "fallback");
  EXPECT_EQ(choice.fit.kind, model::ModelKind::kArbitrary);
  EXPECT_EQ(choice.fit.samples, 5);
  EXPECT_EQ(choice.model->kind(), model::ModelKind::kArbitrary);
  // The interpolating table reproduces the samples themselves.
  EXPECT_LE(choice.fit.max_relative_error, 1e-9);
  for (const auto& [p, t] : profile) EXPECT_NEAR(choice.model->time(p), t, 1e-9);
}

TEST(FitSelectTest, UnderDeterminedProfileFallsBackToTheTable) {
  const std::vector<std::pair<int, double>> two{{1, 9.7}, {8, 2.9}};
  const auto choice = select_model(two);
  EXPECT_EQ(choice.fit.source, "fallback");
  EXPECT_EQ(choice.fit.kind, model::ModelKind::kArbitrary);
  // Duplicate allocations do not add information.
  const std::vector<std::pair<int, double>> padded{
      {1, 9.7}, {1, 9.7}, {8, 2.9}, {8, 2.9}};
  EXPECT_EQ(select_model(padded).fit.source, "fallback");
}

TEST(FitSelectTest, RejectsDegenerateProfiles) {
  EXPECT_THROW((void)select_model({}), std::invalid_argument);
  EXPECT_THROW((void)select_model({{0, 1.0}, {2, 0.5}, {4, 0.3}}),
               std::invalid_argument);
  EXPECT_THROW((void)select_model({{1, -1.0}, {2, 0.5}, {4, 0.3}}),
               std::invalid_argument);
}

TEST(FitSelectTest, SelectionIsBitExact) {
  // Hand-fixed "noisy" measurements — no RNG, so the expectation is
  // plain bitwise equality between two independent selections.
  const std::vector<std::pair<int, double>> profile{
      {1, 101.3}, {2, 52.7}, {4, 28.9}, {8, 17.2}, {16, 11.8}, {32, 9.4}};
  const auto a = select_model(profile);
  const auto b = select_model(profile);
  EXPECT_EQ(a.fit.kind, b.fit.kind);
  EXPECT_EQ(a.fit.params.w, b.fit.params.w);
  EXPECT_EQ(a.fit.params.d, b.fit.params.d);
  EXPECT_EQ(a.fit.params.c, b.fit.params.c);
  EXPECT_EQ(a.fit.rmse, b.fit.rmse);
  EXPECT_EQ(format_number(a.fit.params.w), format_number(b.fit.params.w));
  EXPECT_EQ(format_number(a.fit.rmse), format_number(b.fit.rmse));
}

TEST(FitSelectTest, FormatNumberRoundTripsAtFullPrecision) {
  for (const double v : {0.1, 1.0 / 3.0, 123456.789012345, 1e-12, 9.4}) {
    const std::string s = format_number(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(FitSelectTest, ClassifyParamsMapsZerosToNamedKinds) {
  model::GeneralParams p;
  p.w = 10.0;
  EXPECT_EQ(classify_params(p), model::ModelKind::kRoofline);
  p.d = 1.0;
  EXPECT_EQ(classify_params(p), model::ModelKind::kAmdahl);
  p.c = 0.5;
  EXPECT_EQ(classify_params(p), model::ModelKind::kGeneral);
  p.d = 0.0;
  EXPECT_EQ(classify_params(p), model::ModelKind::kCommunication);
  p.w = 0.0;
  EXPECT_EQ(classify_params(p), model::ModelKind::kGeneral);
}

TEST(FitSelectTest, MaterializeUsesTheNamedClasses) {
  model::GeneralParams p;
  p.w = 10.0;
  EXPECT_EQ(materialize(model::ModelKind::kRoofline, p)->kind(),
            model::ModelKind::kRoofline);
  p.d = 2.0;
  EXPECT_EQ(materialize(model::ModelKind::kAmdahl, p)->kind(),
            model::ModelKind::kAmdahl);
  EXPECT_THROW((void)materialize(model::ModelKind::kArbitrary, p),
               std::invalid_argument);
  model::GeneralParams bad;
  bad.w = 5.0;  // d stays 0 — invalid for amdahl
  EXPECT_THROW((void)materialize(model::ModelKind::kAmdahl, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace moldsched::ingest
