// DOT importer coverage: the accepted grammar surface plus the
// malformed-input batteries. Every battery asserts the complete
// diagnostic string including the "at byte N (line L, column C)"
// suffix — the positions are part of the importer's contract.
#include "moldsched/ingest/dot.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "moldsched/model/general_model.hpp"

namespace moldsched::ingest {
namespace {

std::string error_of(const std::string& text,
                     std::size_t max_bytes = kDefaultMaxImportBytes) {
  try {
    (void)parse_dot(text, max_bytes);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "(no error)";
}

TEST(DotParserTest, ParsesTheFullAttributeSurface) {
  const std::string text =
      "# header line comment\n"
      "digraph \"wf\" {\n"
      "  graph [rankdir=LR];\n"
      "  node [shape=box, style=rounded];\n"
      "  edge [color=gray];\n"
      "  P=24; rankdir=TB;\n"
      "  /* block\n     comment */\n"
      "  s [model=roofline, w=12, pbar=4];\n"
      "  a [model=amdahl, w=30, d=2.5];\n"
      "  c0 [model=communication, w=18, c=0.25];\n"
      "  g0 [model=general, w=9, d=1, c=0.5];\n"
      "  t [times=\"4,2.5,2.6\"]; // non-monotonic times are legal\n"
      "  p0 [profile=\"1:8,2:4.2,4:2.4\"];\n"
      "  \"odd id\" [work=3, name=\"spaced \\\"name\\\"\"];\n"
      "  s -> a -> c0;\n"
      "  s -> g0 [style=dashed];\n"
      "  g0 -> t; c0 -> t; t -> p0; p0 -> \"odd id\";\n"
      "}\n";
  const ImportedGraph g = parse_dot(text);
  EXPECT_EQ(g.name, "wf");
  EXPECT_EQ(g.default_P, 24);
  ASSERT_EQ(g.tasks.size(), 7u);
  ASSERT_TRUE(g.tasks[0].params.has_value());
  EXPECT_EQ(g.tasks[0].params->kind, model::ModelKind::kRoofline);
  EXPECT_EQ(g.tasks[0].params->params.w, 12.0);
  EXPECT_EQ(g.tasks[0].params->params.pbar, 4);
  ASSERT_TRUE(g.tasks[1].params.has_value());
  EXPECT_EQ(g.tasks[1].params->kind, model::ModelKind::kAmdahl);
  EXPECT_EQ(g.tasks[1].params->params.d, 2.5);
  ASSERT_TRUE(g.tasks[2].params.has_value());
  EXPECT_EQ(g.tasks[2].params->kind, model::ModelKind::kCommunication);
  EXPECT_EQ(g.tasks[2].params->params.c, 0.25);
  ASSERT_TRUE(g.tasks[3].params.has_value());
  EXPECT_EQ(g.tasks[3].params->kind, model::ModelKind::kGeneral);
  ASSERT_EQ(g.tasks[4].times.size(), 3u);
  EXPECT_EQ(g.tasks[4].times[2], 2.6);  // tables keep non-monotonic tails
  ASSERT_EQ(g.tasks[5].profile.size(), 3u);
  EXPECT_EQ(g.tasks[5].profile[1].first, 2);
  EXPECT_EQ(g.tasks[5].profile[1].second, 4.2);
  // The work= shorthand is roofline, and name= plus quote escapes apply.
  ASSERT_TRUE(g.tasks[6].params.has_value());
  EXPECT_EQ(g.tasks[6].params->kind, model::ModelKind::kRoofline);
  EXPECT_EQ(g.tasks[6].params->params.w, 3.0);
  EXPECT_EQ(g.tasks[6].name, "spaced \"name\"");
  ASSERT_EQ(g.edges.size(), 7u);
  EXPECT_EQ(g.edges[0].from, 0);  // s -> a
  EXPECT_EQ(g.edges[0].to, 1);
  EXPECT_EQ(g.edges[1].from, 1);  // chained a -> c0
  EXPECT_EQ(g.edges[1].to, 2);
  EXPECT_EQ(g.edges[6].to, 6);    // p0 -> "odd id"
}

// --- the five malformed-input batteries ---

TEST(DotParserTest, TruncatedInputPointsPastTheLastToken) {
  const std::string text = "digraph g {\n  a [work=1]\n";
  EXPECT_EQ(error_of(text),
            "parse_dot: unexpected end of input (unterminated digraph)"
            " at byte 25 (line 3, column 1)");
}

TEST(DotParserTest, CycleIsReportedAtTheLowestSurvivingNode) {
  const std::string text =
      "digraph g {\n"
      "  a [work=1];\n"
      "  b [work=1];\n"
      "  a -> b;\n"
      "  b -> a;\n"
      "}\n";
  EXPECT_EQ(error_of(text),
            "parse_dot: cycle detected through task 'a' at byte " +
                std::to_string(text.find("a [work=1]")) +
                " (line 2, column 3)");
}

TEST(DotParserTest, DuplicateNodeStatementIsRejectedAtTheSecondOne) {
  const std::string text =
      "digraph g {\n"
      "  a [work=1];\n"
      "  a [work=2];\n"
      "}\n";
  EXPECT_EQ(error_of(text),
            "parse_dot: duplicate node statement for 'a' at byte " +
                std::to_string(text.find("a [work=2]")) +
                " (line 3, column 3)");
}

TEST(DotParserTest, NonMonotonicProfileIsRejectedAtTheAttributeValue) {
  const std::string text =
      "digraph g {\n"
      "  a [profile=\"1:4,4:2,2:3\"];\n"
      "}\n";
  EXPECT_EQ(error_of(text),
            "parse_dot: profile allocations must be strictly increasing"
            " at byte " + std::to_string(text.find("\"1:4")) +
                " (line 2, column 14)");
}

TEST(DotParserTest, OversizedInputIsRejectedBeforeTokenizing) {
  std::string text(100, 'x');
  text[9] = '\n';  // inside the scanned prefix, so the line count moves
  EXPECT_EQ(error_of(text, 64),
            "parse_dot: input of 100 bytes exceeds the 64-byte limit"
            " at byte 64 (line 2, column 55)");
}

// --- the rest of the diagnostic surface ---

TEST(DotParserTest, LexerDiagnostics) {
  EXPECT_EQ(error_of("digraph g { @ }"),
            "parse_dot: unexpected character '@'"
            " at byte 12 (line 1, column 13)");
  EXPECT_EQ(error_of("digraph g { \"abc"),
            "parse_dot: unterminated string at byte 12 (line 1, column 13)");
  EXPECT_EQ(error_of("digraph g { \"abc\\"),
            "parse_dot: unterminated escape at byte 12 (line 1, column 13)");
  EXPECT_EQ(error_of("digraph g { /* nope"),
            "parse_dot: unterminated /* comment"
            " at byte 12 (line 1, column 13)");
}

TEST(DotParserTest, StructuralDiagnostics) {
  EXPECT_EQ(error_of("graph g {}"),
            "parse_dot: expected 'digraph' at byte 0 (line 1, column 1)");
  EXPECT_EQ(error_of("digraph g x"),
            "parse_dot: expected '{' at byte 10 (line 1, column 11)");
  EXPECT_EQ(error_of("digraph g {} x"),
            "parse_dot: trailing characters after digraph"
            " at byte 13 (line 1, column 14)");
  EXPECT_EQ(error_of("digraph g { subgraph s { a } }"),
            "parse_dot: subgraphs are not supported"
            " at byte 12 (line 1, column 13)");
  EXPECT_EQ(error_of("digraph g { a -> ; }"),
            "parse_dot: expected node id after '->'"
            " at byte 17 (line 1, column 18)");
  EXPECT_EQ(error_of("digraph g { a [=3]; }"),
            "parse_dot: expected attribute name or ']'"
            " at byte 15 (line 1, column 16)");
  EXPECT_EQ(error_of("digraph g { a [w=]; }"),
            "parse_dot: expected attribute value"
            " at byte 17 (line 1, column 18)");
}

TEST(DotParserTest, EdgeDiagnostics) {
  const std::string self_loop = "digraph g { a [work=1]; a -> a; }";
  EXPECT_EQ(error_of(self_loop),
            "parse_dot: self-loop on task 'a' at byte " +
                std::to_string(self_loop.rfind('a')) + " (line 1, column " +
                std::to_string(self_loop.rfind('a') + 1) + ")");
  const std::string dup =
      "digraph g { a [work=1]; b [work=1]; a -> b; a -> b; }";
  EXPECT_EQ(error_of(dup),
            "parse_dot: duplicate edge 'a' -> 'b' at byte " +
                std::to_string(dup.rfind('b')) + " (line 1, column " +
                std::to_string(dup.rfind('b') + 1) + ")");
}

TEST(DotParserTest, ModelAttributeDiagnostics) {
  const std::string mixed = "digraph g { a [times=\"3,2\", w=5]; }";
  EXPECT_EQ(error_of(mixed),
            "parse_dot: node 'a' mixes a times/profile table with Eq. (1)"
            " parameters at byte " + std::to_string(mixed.find("a [")) +
                " (line 1, column " + std::to_string(mixed.find("a [") + 1) +
                ")");
  const std::string no_w = "digraph g { a [model=roofline]; }";
  EXPECT_EQ(error_of(no_w),
            "parse_dot: model 'roofline' needs a 'w' attribute at byte " +
                std::to_string(no_w.find("roofline")) + " (line 1, column " +
                std::to_string(no_w.find("roofline") + 1) + ")");
  const std::string no_d = "digraph g { a [model=amdahl, w=3]; }";
  EXPECT_EQ(error_of(no_d),
            "parse_dot: model 'amdahl' needs a 'd' attribute at byte " +
                std::to_string(no_d.find("amdahl")) + " (line 1, column " +
                std::to_string(no_d.find("amdahl") + 1) + ")");
  const std::string no_c = "digraph g { a [model=communication, w=3]; }";
  EXPECT_EQ(error_of(no_c),
            "parse_dot: model 'communication' needs a 'c' attribute"
            " at byte " + std::to_string(no_c.find("communication")) +
                " (line 1, column " +
                std::to_string(no_c.find("communication") + 1) + ")");
  const std::string unknown = "digraph g { a [model=quantum, w=3]; }";
  EXPECT_EQ(error_of(unknown),
            "parse_dot: unknown model kind 'quantum' at byte " +
                std::to_string(unknown.find("quantum")) +
                " (line 1, column " +
                std::to_string(unknown.find("quantum") + 1) + ")");
}

TEST(DotParserTest, NumericAttributeDiagnostics) {
  const std::string bad_num = "digraph g { a [work=fast]; }";
  EXPECT_EQ(error_of(bad_num),
            "parse_dot: attribute 'work' is not a finite number at byte " +
                std::to_string(bad_num.find("fast")) + " (line 1, column " +
                std::to_string(bad_num.find("fast") + 1) + ")");
  const std::string bad_pbar = "digraph g { a [work=2, pbar=2.5]; }";
  EXPECT_EQ(error_of(bad_pbar),
            "parse_dot: attribute 'pbar' is not a 32-bit integer at byte " +
                std::to_string(bad_pbar.find("2.5")) + " (line 1, column " +
                std::to_string(bad_pbar.find("2.5") + 1) + ")");
  const std::string bad_times = "digraph g { a [times=\"3,-1\"]; }";
  EXPECT_EQ(error_of(bad_times),
            "parse_dot: times entries must be positive finite numbers"
            " at byte " + std::to_string(bad_times.find("\"3")) +
                " (line 1, column " +
                std::to_string(bad_times.find("\"3") + 1) + ")");
  const std::string bad_pair = "digraph g { a [profile=\"1:2,oops\"]; }";
  EXPECT_EQ(error_of(bad_pair),
            "parse_dot: profile entries must be 'procs:time' pairs"
            " at byte " + std::to_string(bad_pair.find("\"1:2")) +
                " (line 1, column " +
                std::to_string(bad_pair.find("\"1:2") + 1) + ")");
}

TEST(DotParserTest, TaskWithoutAnyModelIsRejectedByValidation) {
  const std::string text = "digraph g {\n  orphan;\n}\n";
  EXPECT_EQ(error_of(text),
            "parse_dot: task 'orphan' carries no model information (need"
            " model/work parameters, a times table, or a profile)"
            " at byte " + std::to_string(text.find("orphan")) +
                " (line 2, column 3)");
}

}  // namespace
}  // namespace moldsched::ingest
