// The DOT round trip: ingest::parse_dot(io::to_dot(g)) must rebuild the
// graph with byte-identical svc::encode_graph wire bytes — names (with
// every escape), model kinds, 17-significant-digit parameters, and edge
// order all survive. Instances come from the shared check:: corpus so
// every generator family and model kind is covered.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "moldsched/check/corpus.hpp"
#include "moldsched/graph/task_graph.hpp"
#include "moldsched/ingest/dot.hpp"
#include "moldsched/io/dot.hpp"
#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/general_model.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/svc/wire.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::ingest {
namespace {

void expect_roundtrip(const graph::TaskGraph& g, const std::string& what) {
  const std::string wire = svc::encode_graph(g);
  const std::string dot = io::to_dot(g);
  const Realized re = realize(parse_dot(dot));
  ASSERT_EQ(re.graph.num_tasks(), g.num_tasks()) << what;
  ASSERT_EQ(re.graph.num_edges(), g.num_edges()) << what;
  EXPECT_EQ(svc::encode_graph(re.graph), wire) << what << "\n" << dot;
}

TEST(DotRoundTripTest, EveryCorpusFamilyAndModelKindSurvives) {
  util::Rng rng(20260808);
  const int families = check::num_corpus_families();
  for (int family = 0; family < families; ++family) {
    for (const auto kind : check::corpus_model_kinds()) {
      const graph::TaskGraph g = check::corpus_graph(family, kind, rng, 32);
      expect_roundtrip(g, check::corpus_families()[
                              static_cast<std::size_t>(family)] + "/" +
                              model::to_string(kind));
    }
  }
}

TEST(DotRoundTripTest, HostileTaskNamesSurviveEscaping) {
  graph::TaskGraph g;
  model::GeneralParams p;
  p.w = 12.5;
  p.d = 0.125;
  g.add_task(std::make_shared<model::GeneralModel>(p), "quote \" inside");
  g.add_task(std::make_shared<model::AmdahlModel>(3.0, 1.0),
             "back\\slash and\nnewline");
  g.add_task(std::make_shared<model::TableModel>(
                 std::vector<double>{4.0, 2.5, 2.6}),
             "commas, [brackets] {braces} -> arrows");
  g.add_task(std::make_shared<model::RooflineModel>(7.0, 4), "");
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  expect_roundtrip(g, "hostile names");
}

TEST(DotRoundTripTest, SeventeenDigitParametersAreBitExact) {
  // Parameters chosen to have no short decimal representation: the
  // 17-significant-digit rendering in to_dot is what keeps them intact.
  graph::TaskGraph g;
  model::GeneralParams p;
  p.w = 1.0 / 3.0;
  p.d = 2.0 / 7.0;
  p.c = 1.0 / 9973.0;
  p.pbar = 12;
  g.add_task(std::make_shared<model::GeneralModel>(p), "thirds");
  g.add_task(std::make_shared<model::TableModel>(std::vector<double>{
                 1.0 / 11.0, 1.0 / 13.0, 1.0 / 17.0, 1.0 / 19.0}),
             "primes");
  g.add_edge(0, 1);
  expect_roundtrip(g, "irrational-ish parameters");
}

}  // namespace
}  // namespace moldsched::ingest
