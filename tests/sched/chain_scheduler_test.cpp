#include "moldsched/sched/chain_scheduler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace moldsched::sched {
namespace {

TEST(OfflineChainScheduleTest, VerifiesForManyK) {
  for (const int K : {1, 2, 3, 4, 8, 16, 20}) {
    const auto inst = graph::make_chains_instance(K);
    EXPECT_DOUBLE_EQ(verify_offline_chain_schedule(inst), 1.0) << "K=" << K;
  }
}

TEST(EqualAllocationTest, TrivialSingleChain) {
  // K = 1: one chain of one task, P = 1; t(1) = 1.
  const auto inst = graph::make_chains_instance(1);
  const auto result = EqualAllocationChainScheduler(inst).run();
  EXPECT_DOUBLE_EQ(result.makespan, 1.0);
  EXPECT_EQ(result.tasks_executed, 1);
  EXPECT_DOUBLE_EQ(result.ratio, 1.0);
}

TEST(EqualAllocationTest, Figure4bMilestonesForK4) {
  // The paper's Figure 4(b): t1 = 1/2, t2 = 5/6 for equal allocation with
  // floor shares. (t3, t4 in the figure are approximate; we assert the
  // exact simulated values bracket them.)
  const auto inst = graph::make_chains_instance(4);
  const auto result = EqualAllocationChainScheduler(inst).run();
  ASSERT_EQ(result.milestones.size(), 4u);
  // All 15 chains start with 2 or 3 processors; the ones on 2 finish at
  // 1/2, and survivors exist at both speeds, so t1 <= 1/2.
  EXPECT_LE(result.milestones[0], 0.5 + 1e-9);
  EXPECT_GT(result.milestones[0], 0.0);
  // Milestones are strictly increasing and end at the makespan.
  for (std::size_t i = 1; i < result.milestones.size(); ++i)
    EXPECT_GT(result.milestones[i], result.milestones[i - 1]);
  EXPECT_DOUBLE_EQ(result.milestones[3], result.makespan);
  // Figure 4(b) reports a makespan around 1.23 for this strategy.
  EXPECT_GT(result.makespan, 1.1);
  EXPECT_LT(result.makespan, 1.4);
}

TEST(EqualAllocationTest, MakespanBeatsOfflineNever) {
  for (const int K : {2, 3, 4, 6, 8}) {
    const auto inst = graph::make_chains_instance(K);
    const auto result = EqualAllocationChainScheduler(inst).run();
    EXPECT_GE(result.makespan, inst.offline_makespan - 1e-9) << "K=" << K;
    EXPECT_DOUBLE_EQ(result.ratio, result.makespan);
  }
}

TEST(EqualAllocationTest, ExecutesEveryTaskOnce) {
  for (const int K : {2, 4, 6}) {
    const auto inst = graph::make_chains_instance(K);
    const auto result = EqualAllocationChainScheduler(inst).run();
    EXPECT_EQ(result.tasks_executed, inst.total_tasks) << "K=" << K;
  }
}

TEST(EqualAllocationTest, RespectsLemma10LowerBound) {
  // Lemma 10 applies to every deterministic online algorithm, including
  // the equal-allocation strategy, for power-of-two K.
  for (const int K : {2, 4, 8, 16}) {
    const auto inst = graph::make_chains_instance(K);
    const auto result = EqualAllocationChainScheduler(inst).run();
    EXPECT_GE(result.makespan,
              inst.online_makespan_lower_bound - 1e-9)
        << "K=" << K;
  }
}

TEST(EqualAllocationTest, RatioGrowsWithK) {
  // The Theorem 9 phenomenon: the online/offline gap widens like ln K.
  const auto r4 = EqualAllocationChainScheduler(graph::make_chains_instance(4))
                      .run()
                      .ratio;
  const auto r8 = EqualAllocationChainScheduler(graph::make_chains_instance(8))
                      .run()
                      .ratio;
  const auto r16 =
      EqualAllocationChainScheduler(graph::make_chains_instance(16))
          .run()
          .ratio;
  EXPECT_LT(r4, r8);
  EXPECT_LT(r8, r16);
}

TEST(EqualAllocationTest, MilestoneGapsRespectLemma10PerLevel) {
  // t_i - t_{i-1} >= 1/(l + i) with l = lg K, for K a power of two.
  const int K = 8;
  const auto inst = graph::make_chains_instance(K);
  const auto result = EqualAllocationChainScheduler(inst).run();
  const double ell = std::log2(static_cast<double>(K));
  double prev = 0.0;
  for (int i = 1; i <= K; ++i) {
    const double ti = result.milestones[static_cast<std::size_t>(i - 1)];
    EXPECT_GE(ti - prev, 1.0 / (ell + i) - 1e-9) << "i=" << i;
    prev = ti;
  }
}

TEST(EqualAllocationTest, RejectsOverlargeK) {
  const auto inst = graph::make_chains_instance(30);
  EXPECT_THROW(EqualAllocationChainScheduler{inst}, std::invalid_argument);
}

TEST(OfflineChainScheduleTest, DetectsCorruptedInstance) {
  auto inst = graph::make_chains_instance(4);
  inst.P += 1;  // processor count no longer matches the construction
  EXPECT_THROW((void)verify_offline_chain_schedule(inst), std::logic_error);
}

}  // namespace
}  // namespace moldsched::sched
