#include "moldsched/sched/offline.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::sched {
namespace {

model::ModelPtr roofline(double w, int pbar) {
  return std::make_shared<model::RooflineModel>(w, pbar);
}

TEST(ListScheduleTest, HonorsPrioritiesAmongReadyTasks) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(1.0, 1), "low");
  (void)g.add_task(roofline(1.0, 1), "high");
  const std::vector<int> alloc{1, 1};
  const std::vector<double> prio{1.0, 2.0};
  const auto trace = list_schedule_with_allocations(g, 1, alloc, prio);
  EXPECT_EQ(trace.records()[0].task, 1);  // higher priority first
  EXPECT_EQ(trace.records()[1].task, 0);
}

TEST(ListScheduleTest, TieBreaksById) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(1.0, 1));
  (void)g.add_task(roofline(1.0, 1));
  const auto trace = list_schedule_with_allocations(g, 1, {1, 1}, {5.0, 5.0});
  EXPECT_EQ(trace.records()[0].task, 0);
}

TEST(ListScheduleTest, RespectsDependencies) {
  graph::TaskGraph g;
  const auto a = g.add_task(roofline(2.0, 2), "a");
  const auto b = g.add_task(roofline(2.0, 2), "b");
  g.add_edge(a, b);
  const auto trace =
      list_schedule_with_allocations(g, 4, {2, 2}, {0.0, 10.0});
  // b has higher priority but cannot start before a finishes.
  EXPECT_DOUBLE_EQ(trace.makespan(), 2.0);
  sim::expect_valid_schedule(g, trace, 4);
}

TEST(ListScheduleTest, RejectsBadInput) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(1.0, 1));
  EXPECT_THROW(
      (void)list_schedule_with_allocations(g, 0, {1}, {0.0}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)list_schedule_with_allocations(g, 2, {1, 1}, {0.0}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)list_schedule_with_allocations(g, 2, {3}, {0.0}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)list_schedule_with_allocations(g, 2, {0}, {0.0}),
      std::invalid_argument);
}

TEST(OfflineTradeoffTest, ValidScheduleOnRandomGraphs) {
  util::Rng rng(11);
  const model::ModelSampler sampler(model::ModelKind::kGeneral);
  const auto g = graph::layered_random(
      6, 2, 6, 0.4, rng, graph::sampling_provider(sampler, rng, 16));
  const OfflineTradeoffScheduler sched(g, 16);
  const auto result = sched.run();
  sim::expect_valid_schedule(g, result.trace, 16);
  EXPECT_DOUBLE_EQ(result.trace.makespan(), result.makespan);
  // Never below the Lemma 2 lower bound.
  EXPECT_GE(result.makespan,
            analysis::optimal_makespan_lower_bound(g, 16) * (1.0 - 1e-9));
}

TEST(OfflineTradeoffTest, AtLeastAsGoodAsOnlineOnEasyGraphs) {
  // With full knowledge and a makespan sweep, the offline schedule should
  // not lose to the online algorithm by more than rounding on these
  // simple workloads.
  util::Rng rng(12);
  const model::ModelSampler sampler(model::ModelKind::kAmdahl);
  const auto g = graph::independent(
      24, graph::sampling_provider(sampler, rng, 8));
  const auto offline = OfflineTradeoffScheduler(g, 8).run();
  const core::LpaAllocator lpa(0.271);
  const auto online = core::schedule_online(g, 8, lpa);
  EXPECT_LE(offline.makespan, online.makespan * 1.05);
}

TEST(OfflineTradeoffTest, SingleTaskIsOptimal) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(8.0, 4));
  const auto result = OfflineTradeoffScheduler(g, 4).run();
  // Best possible: all useful processors, t = 8/4 = 2.
  EXPECT_DOUBLE_EQ(result.makespan, 2.0);
  EXPECT_EQ(result.allocation[0], 4);
}

TEST(OfflineTradeoffTest, ChainGetsMaxAllocation) {
  graph::TaskGraph g;
  const auto a = g.add_task(roofline(4.0, 4));
  const auto b = g.add_task(roofline(4.0, 4));
  g.add_edge(a, b);
  const auto result = OfflineTradeoffScheduler(g, 4).run();
  // Pure chain: area is free (roofline), so run each at full speed.
  EXPECT_DOUBLE_EQ(result.makespan, 2.0);
}

TEST(OfflineTradeoffTest, RejectsBadConstruction) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(1.0, 1));
  EXPECT_THROW(OfflineTradeoffScheduler(g, 0), std::invalid_argument);
  EXPECT_THROW(OfflineTradeoffScheduler(g, 4, 1), std::invalid_argument);
  graph::TaskGraph empty;
  EXPECT_THROW(OfflineTradeoffScheduler(empty, 4), std::logic_error);
}

TEST(OfflineTradeoffTest, SweepImprovesOverSinglePoint) {
  util::Rng rng(13);
  const model::ModelSampler sampler(model::ModelKind::kCommunication);
  const auto g = graph::fork_join(
      3, 8, graph::sampling_provider(sampler, rng, 32));
  const auto coarse = OfflineTradeoffScheduler(g, 32, 2).run();
  const auto fine = OfflineTradeoffScheduler(g, 32, 32).run();
  EXPECT_LE(fine.makespan, coarse.makespan + 1e-9);
}

}  // namespace
}  // namespace moldsched::sched
