#include "moldsched/sched/exact.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/sched/offline.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::sched {
namespace {

model::ModelPtr roofline(double w, int pbar) {
  return std::make_shared<model::RooflineModel>(w, pbar);
}

TEST(ExactSchedulerTest, SingleTaskRunsAtFullUsefulSpeed) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(12.0, 3));
  const auto r = ExactScheduler(g, 4).run();
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);  // 12 / min(3, 4)
  EXPECT_EQ(r.allocation[0], 3);
  EXPECT_DOUBLE_EQ(r.start_time[0], 0.0);
}

TEST(ExactSchedulerTest, TwoIndependentTasksShareTheMachine) {
  // Two identical roofline tasks (w = 4, pbar = 2) on P = 2: running both
  // sequentially at p = 2 gives 4; running both in parallel at p = 1
  // gives 4; optimum is 4 either way. On P = 4, both at p = 2 in
  // parallel give 2.
  graph::TaskGraph g;
  (void)g.add_task(roofline(4.0, 2));
  (void)g.add_task(roofline(4.0, 2));
  EXPECT_DOUBLE_EQ(ExactScheduler(g, 2).run().makespan, 4.0);
  EXPECT_DOUBLE_EQ(ExactScheduler(g, 4).run().makespan, 2.0);
}

TEST(ExactSchedulerTest, TradeoffBetweenAreaAndTime) {
  // Amdahl task A (w=6, d=1) and sequential-ish task B (w=6, pbar=1...)
  // Hand-checkable: A(p=3) = 3, B always 6; P = 4.
  // Run B on 1 proc [0,6) and A on 3 procs [0,3): makespan 6.
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::AmdahlModel>(6.0, 1.0), "A");
  (void)g.add_task(roofline(6.0, 1), "B");
  const auto r = ExactScheduler(g, 4).run();
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
}

TEST(ExactSchedulerTest, ChainUsesFullAllocations) {
  graph::TaskGraph g;
  const auto a = g.add_task(roofline(8.0, 4), "a");
  const auto b = g.add_task(roofline(4.0, 4), "b");
  g.add_edge(a, b);
  const auto r = ExactScheduler(g, 4).run();
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);  // 8/4 + 4/4
  EXPECT_EQ(r.allocation[0], 4);
  EXPECT_EQ(r.allocation[1], 4);
  EXPECT_DOUBLE_EQ(r.start_time[1], 2.0);
}

TEST(ExactSchedulerTest, DelayedStartCanBeOptimal) {
  // Classic case where pure greed misallocates: three tasks, P = 2.
  //   X: w=2, pbar=2  (can use both procs)
  //   Y: w=3, pbar=1
  //   Z: w=3, pbar=1
  // Optimal: Y and Z in parallel [0,3), X at p=2 [3,4): makespan 4.
  // (X first at p=2 [0,1), then Y,Z [1,4) also gives 4 — equally good.)
  graph::TaskGraph g;
  (void)g.add_task(roofline(2.0, 2), "X");
  (void)g.add_task(roofline(3.0, 1), "Y");
  (void)g.add_task(roofline(3.0, 1), "Z");
  EXPECT_DOUBLE_EQ(ExactScheduler(g, 2).run().makespan, 4.0);
}

TEST(ExactSchedulerTest, RespectsCaps) {
  graph::TaskGraph g;
  for (int i = 0; i < 9; ++i) (void)g.add_task(roofline(1.0, 1));
  EXPECT_THROW(ExactScheduler(g, 4), std::invalid_argument);
  graph::TaskGraph small;
  (void)small.add_task(roofline(1.0, 1));
  EXPECT_THROW(ExactScheduler(small, 16), std::invalid_argument);
  EXPECT_THROW(ExactScheduler(small, 0), std::invalid_argument);
  EXPECT_NO_THROW(ExactScheduler(small, 4));
}

TEST(ExactSchedulerTest, NeverBelowLemma2AndNeverAboveHeuristics) {
  util::Rng rng(31);
  for (const auto kind :
       {model::ModelKind::kRoofline, model::ModelKind::kCommunication,
        model::ModelKind::kAmdahl, model::ModelKind::kGeneral}) {
    const model::ModelSampler sampler(kind);
    for (int rep = 0; rep < 6; ++rep) {
      const int P = static_cast<int>(rng.uniform_int(2, 4));
      const auto provider = graph::sampling_provider(sampler, rng, P);
      const auto g = graph::erdos_renyi_dag(
          static_cast<int>(rng.uniform_int(2, 6)), 0.3, rng, provider);
      const auto exact = ExactScheduler(g, P).run();
      const double lb = analysis::optimal_makespan_lower_bound(g, P);
      EXPECT_GE(exact.makespan, lb * (1.0 - 1e-9))
          << model::to_string(kind);
      // Exact optimum never loses to the heuristics.
      const auto offline = OfflineTradeoffScheduler(g, P).run();
      EXPECT_LE(exact.makespan, offline.makespan * (1.0 + 1e-9));
      const core::LpaAllocator lpa(0.25);
      const auto online = core::schedule_online(g, P, lpa);
      EXPECT_LE(exact.makespan, online.makespan * (1.0 + 1e-9));
    }
  }
}

TEST(ExactSchedulerTest, OnlineAlgorithmWithinTheoremRatioOfTrueOptimum) {
  // The competitive-ratio statement proper: T_lpa <= c * T_opt, measured
  // against the *exact* optimum on small random instances.
  util::Rng rng(37);
  for (const auto kind :
       {model::ModelKind::kRoofline, model::ModelKind::kCommunication,
        model::ModelKind::kAmdahl, model::ModelKind::kGeneral}) {
    const double mu = analysis::optimal_mu(kind);
    const double bound = analysis::optimal_ratio(kind).upper_bound;
    const core::LpaAllocator lpa(mu);
    const model::ModelSampler sampler(kind);
    for (int rep = 0; rep < 5; ++rep) {
      const int P = static_cast<int>(rng.uniform_int(2, 5));
      const auto provider = graph::sampling_provider(sampler, rng, P);
      const auto g = graph::layered_random(
          2, 1, 3, 0.5, rng, provider);
      if (g.num_tasks() > 6) continue;
      const auto exact = ExactScheduler(g, P).run();
      const auto online = core::schedule_online(g, P, lpa);
      EXPECT_LE(online.makespan, bound * exact.makespan * (1.0 + 1e-9))
          << model::to_string(kind) << " rep " << rep;
    }
  }
}

TEST(ExactSchedulerTest, ReportsSearchStatistics) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(2.0, 2));
  (void)g.add_task(roofline(3.0, 1));
  const auto r = ExactScheduler(g, 2).run();
  EXPECT_GT(r.nodes_explored, 0);
}

}  // namespace
}  // namespace moldsched::sched
