#include "moldsched/sched/malleable_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::sched {
namespace {

model::ModelPtr roofline(double w, int pbar) {
  return std::make_shared<model::RooflineModel>(w, pbar);
}

TEST(MalleableFluidTest, SingleTaskRunsAtMinTime) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(12.0, 4));
  const auto r = schedule_malleable_fluid(g, 8);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);  // 12 / 4
  EXPECT_EQ(r.events, 1);
  EXPECT_DOUBLE_EQ(r.busy_area, 12.0);
}

TEST(MalleableFluidTest, ChainIsSumOfMinTimes) {
  graph::TaskGraph g;
  const auto a = g.add_task(roofline(8.0, 4));
  const auto b = g.add_task(roofline(6.0, 2));
  g.add_edge(a, b);
  const auto r = schedule_malleable_fluid(g, 4);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0 + 3.0);
}

TEST(MalleableFluidTest, ReallocationBeatsMoldableOnStaggeredWork) {
  // Two tasks, P = 4, roofline pbar = 4: A (w=8), B (w=4).
  // Moldable with p=2 each: A takes 4, B takes 2; after B ends, its two
  // processors idle (B's block cannot help A). Fluid: B's processors
  // flow to A. Fluid optimum: total work 12 on 4 procs = 3.
  graph::TaskGraph g;
  (void)g.add_task(roofline(8.0, 4), "A");
  (void)g.add_task(roofline(4.0, 4), "B");
  const auto fluid = schedule_malleable_fluid(g, 4);
  EXPECT_DOUBLE_EQ(fluid.makespan, 3.0);
  EXPECT_DOUBLE_EQ(fluid.busy_area, 12.0);

  // The moldable online schedule cannot beat the fluid one here.
  const core::LpaAllocator alloc(0.38196601125010515);
  const auto moldable = core::schedule_online(g, 4, alloc);
  EXPECT_GE(moldable.makespan, fluid.makespan - 1e-9);
}

TEST(MalleableFluidTest, RespectsLemma2LowerBound) {
  util::Rng rng(71);
  for (const auto kind :
       {model::ModelKind::kRoofline, model::ModelKind::kCommunication,
        model::ModelKind::kAmdahl, model::ModelKind::kGeneral}) {
    const model::ModelSampler sampler(kind);
    for (int rep = 0; rep < 4; ++rep) {
      const int P = static_cast<int>(rng.uniform_int(2, 32));
      const auto g = graph::layered_random(
          4, 2, 6, 0.4, rng, graph::sampling_provider(sampler, rng, P));
      const auto r = schedule_malleable_fluid(g, P);
      const double lb = analysis::optimal_makespan_lower_bound(g, P);
      EXPECT_GE(r.makespan, lb * (1.0 - 1e-9))
          << model::to_string(kind) << " P=" << P;
      // Fluid area accounting never exceeds the machine's capacity.
      EXPECT_LE(r.busy_area, static_cast<double>(P) * r.makespan * (1 + 1e-9));
    }
  }
}

TEST(MalleableFluidTest, PrecedenceDelaysSuccessors) {
  // Fork: source then two children; the source must fully finish first.
  graph::TaskGraph g;
  const auto s = g.add_task(roofline(4.0, 4), "s");
  const auto c1 = g.add_task(roofline(4.0, 4), "c1");
  const auto c2 = g.add_task(roofline(4.0, 4), "c2");
  g.add_edge(s, c1);
  g.add_edge(s, c2);
  const auto r = schedule_malleable_fluid(g, 4);
  // s: 1.0 at p=4; then both children share: 8 work on 4 procs = 2.
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
}

TEST(MalleableFluidTest, RejectsBadInput) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(1.0, 1));
  EXPECT_THROW((void)schedule_malleable_fluid(g, 0), std::invalid_argument);
  graph::TaskGraph empty;
  EXPECT_THROW((void)schedule_malleable_fluid(empty, 2), std::logic_error);
}

}  // namespace
}  // namespace moldsched::sched
