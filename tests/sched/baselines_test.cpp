#include "moldsched/sched/baselines.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "moldsched/model/special_models.hpp"

namespace moldsched::sched {
namespace {

TEST(MinTimeAllocatorTest, PicksPmax) {
  const MinTimeAllocator a;
  const model::CommunicationModel comm(100.0, 1.0);  // sweet spot 10
  EXPECT_EQ(a.allocate(comm, 64), 10);
  EXPECT_EQ(a.allocate(comm, 4), 4);
  const model::RooflineModel roof(8.0, 3);
  EXPECT_EQ(a.allocate(roof, 64), 3);
  EXPECT_EQ(a.name(), "min-time");
}

TEST(SequentialAllocatorTest, AlwaysOne) {
  const SequentialAllocator a;
  const model::AmdahlModel m(10.0, 1.0);
  EXPECT_EQ(a.allocate(m, 64), 1);
  EXPECT_EQ(a.allocate(m, 1), 1);
  EXPECT_THROW((void)a.allocate(m, 0), std::invalid_argument);
}

TEST(FixedAllocatorTest, ClampsToUsefulRange) {
  const FixedAllocator a(8);
  const model::RooflineModel narrow(8.0, 3);
  EXPECT_EQ(a.allocate(narrow, 64), 3);  // capped by p_max = pbar
  const model::AmdahlModel wide(100.0, 1.0);
  EXPECT_EQ(a.allocate(wide, 64), 8);
  EXPECT_EQ(a.allocate(wide, 4), 4);  // capped by P
  EXPECT_THROW(FixedAllocator(0), std::invalid_argument);
  EXPECT_NE(a.name().find("8"), std::string::npos);
}

TEST(FractionAllocatorTest, RoundsFractionOfMachine) {
  const FractionAllocator a(0.5);
  const model::AmdahlModel m(100.0, 1.0);
  EXPECT_EQ(a.allocate(m, 64), 32);
  EXPECT_EQ(a.allocate(m, 1), 1);
  EXPECT_THROW(FractionAllocator(0.0), std::invalid_argument);
  EXPECT_THROW(FractionAllocator(1.5), std::invalid_argument);
}

TEST(FractionAllocatorTest, TinyFractionStillAllocatesOne) {
  const FractionAllocator a(0.01);
  const model::AmdahlModel m(100.0, 1.0);
  EXPECT_EQ(a.allocate(m, 10), 1);  // round(0.1) = 0 clamps to 1
}

TEST(SqrtAllocatorTest, SquareRootRule) {
  const SqrtAllocator a;
  const model::AmdahlModel m(100.0, 1.0);
  EXPECT_EQ(a.allocate(m, 64), 8);
  EXPECT_EQ(a.allocate(m, 100), 10);
  EXPECT_EQ(a.allocate(m, 1), 1);
  const model::RooflineModel narrow(8.0, 2);
  EXPECT_EQ(a.allocate(narrow, 100), 2);  // capped by p_max
}

TEST(UncappedLpaAllocatorTest, MatchesStepOneOfAlgorithm2) {
  const UncappedLpaAllocator uncapped(0.324);
  const core::LpaAllocator full(0.324);
  // Communication task from the allocator_test hand case: initial 4.
  const model::CommunicationModel comm(100.0, 1.0);
  EXPECT_EQ(uncapped.allocate(comm, 64), full.decide(comm, 64).initial);
  // A task whose Step 1 exceeds the cap: the roofline whole-machine task.
  const model::RooflineModel wide(64.0, 64);
  EXPECT_EQ(uncapped.allocate(wide, 64), full.decide(wide, 64).initial);
  EXPECT_GT(uncapped.allocate(wide, 64), full.allocate(wide, 64));
  EXPECT_THROW(UncappedLpaAllocator(0.5), std::invalid_argument);
  EXPECT_NE(uncapped.name().find("uncapped"), std::string::npos);
}

TEST(CappedMinTimeAllocatorTest, MinOfPmaxAndMuCap) {
  const CappedMinTimeAllocator a(0.3);
  const model::AmdahlModel wide(100.0, 1.0);  // p_max = P
  EXPECT_EQ(a.allocate(wide, 100), 30);       // ceil(0.3 * 100)
  const model::CommunicationModel comm(100.0, 1.0);  // p_max = 10
  EXPECT_EQ(a.allocate(comm, 100), 10);
  EXPECT_THROW(CappedMinTimeAllocator(0.0), std::invalid_argument);
  EXPECT_THROW(CappedMinTimeAllocator(0.5), std::invalid_argument);
  EXPECT_DOUBLE_EQ(a.mu(), 0.3);
}

}  // namespace
}  // namespace moldsched::sched
