#include "moldsched/sched/backfill_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::sched {
namespace {

model::ModelPtr roofline(double w, int pbar) {
  return std::make_shared<model::RooflineModel>(w, pbar);
}


/// Record lookup by task id (trace records are in start order).
const sim::TaskRecord& rec_of(const core::ScheduleResult& r, int task) {
  for (const auto& rec : r.trace.records())
    if (rec.task == task) return rec;
  throw std::logic_error("no record for task");
}
class MaxAlloc : public core::Allocator {
 public:
  int allocate(const model::SpeedupModel& m, int P) const override {
    return m.max_useful_procs(P);
  }
  std::string name() const override { return "max"; }
};

TEST(BackfillTest, BackfillsShortNarrowTaskIntoHeadGap) {
  // P = 4. Running: X on 3 procs until t=10 (started first). Queue after
  // X starts: WIDE (4 procs, blocked -> reservation at t=10), then
  // SHORT (1 proc, t=2). SHORT fits now and finishes by the
  // reservation, so backfilling starts it immediately.
  graph::TaskGraph g;
  (void)g.add_task(roofline(30.0, 3), "X");      // t(3) = 10
  (void)g.add_task(roofline(16.0, 4), "WIDE");   // t(4) = 4
  (void)g.add_task(roofline(2.0, 1), "SHORT");   // t(1) = 2
  const MaxAlloc alloc;
  const auto result = schedule_online_backfill(g, 4, alloc);
  sim::expect_valid_schedule(g, result.trace, 4);
  // SHORT ran inside [0, 10), not after WIDE.
  EXPECT_DOUBLE_EQ(rec_of(result, 2).start, 0.0);
  // WIDE starts exactly at its reservation.
  EXPECT_DOUBLE_EQ(rec_of(result, 1).start, 10.0);
  EXPECT_DOUBLE_EQ(result.makespan, 14.0);
}

TEST(BackfillTest, RefusesBackfillThatWouldDelayReservation) {
  // Same setup but the narrow task is long (t = 20 > reservation at 10)
  // and would hold a processor past the reservation: with zero slack at
  // the reservation (WIDE needs all 4), it must NOT backfill.
  graph::TaskGraph g;
  (void)g.add_task(roofline(30.0, 3), "X");      // runs [0,10) on 3
  (void)g.add_task(roofline(16.0, 4), "WIDE");   // reservation t=10
  (void)g.add_task(roofline(20.0, 1), "LONG");   // t(1) = 20
  const MaxAlloc alloc;
  const auto result = schedule_online_backfill(g, 4, alloc);
  sim::expect_valid_schedule(g, result.trace, 4);
  // WIDE still starts at 10; LONG waits until WIDE is done.
  EXPECT_DOUBLE_EQ(rec_of(result, 1).start, 10.0);
  EXPECT_DOUBLE_EQ(rec_of(result, 2).start, 14.0);
  // Plain list scheduling (Algorithm 1) would have started LONG at 0 and
  // delayed WIDE to 20 — backfilling protects the wide task:
  const auto plain = core::schedule_online(g, 4, alloc);
  EXPECT_DOUBLE_EQ(rec_of(plain, 1).start, 20.0);
}

TEST(BackfillTest, SlackAtReservationPermitsLongNarrowBackfill) {
  // Head needs 3 of 4 procs at its reservation: one processor of slack,
  // so a long 1-proc task may backfill without delaying the head.
  graph::TaskGraph g;
  (void)g.add_task(roofline(30.0, 3), "X");      // [0,10) on 3
  (void)g.add_task(roofline(30.0, 3), "HEAD");   // reservation t=10, 3 procs
  (void)g.add_task(roofline(50.0, 1), "LONG");   // t(1) = 50
  const MaxAlloc alloc;
  const auto result = schedule_online_backfill(g, 4, alloc);
  sim::expect_valid_schedule(g, result.trace, 4);
  EXPECT_DOUBLE_EQ(rec_of(result, 2).start, 0.0);   // LONG backfilled
  EXPECT_DOUBLE_EQ(rec_of(result, 1).start, 10.0);  // HEAD unharmed
}

TEST(BackfillTest, ValidAndBoundedOnRandomGraphs) {
  util::Rng rng(95);
  for (const auto kind :
       {model::ModelKind::kCommunication, model::ModelKind::kGeneral}) {
    const model::ModelSampler sampler(kind);
    for (int rep = 0; rep < 4; ++rep) {
      const int P = static_cast<int>(rng.uniform_int(4, 40));
      const auto g = graph::layered_random(
          5, 2, 8, 0.35, rng, graph::sampling_provider(sampler, rng, P));
      const core::LpaAllocator alloc(0.25);
      const auto result = schedule_online_backfill(g, P, alloc);
      sim::expect_valid_schedule(g, result.trace, P);
      EXPECT_GE(result.makespan,
                analysis::optimal_makespan_lower_bound(g, P) * (1.0 - 1e-9));
      // Deterministic.
      EXPECT_DOUBLE_EQ(result.makespan,
                       schedule_online_backfill(g, P, alloc).makespan);
    }
  }
}

TEST(BackfillTest, RejectsBadInput) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(1.0, 1));
  const core::LpaAllocator alloc(0.3);
  EXPECT_THROW((void)schedule_online_backfill(g, 0, alloc),
               std::invalid_argument);
  graph::TaskGraph empty;
  EXPECT_THROW((void)schedule_online_backfill(empty, 2, alloc),
               std::logic_error);
}

}  // namespace
}  // namespace moldsched::sched
