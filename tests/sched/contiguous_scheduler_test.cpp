#include "moldsched/sched/contiguous_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::sched {
namespace {

/// Checks that no two concurrent tasks overlap in processor indices.
void expect_disjoint_placement(const ContiguousScheduleResult& r,
                               const graph::TaskGraph& g, int P) {
  const auto& recs = r.base.trace.records();
  for (std::size_t i = 0; i < recs.size(); ++i) {
    for (std::size_t j = i + 1; j < recs.size(); ++j) {
      const auto& a = recs[i];
      const auto& b = recs[j];
      const bool time_overlap = a.start < b.end - 1e-12 &&
                                b.start < a.end - 1e-12;
      if (!time_overlap) continue;
      const int alo = r.first_processor[static_cast<std::size_t>(a.task)];
      const int blo = r.first_processor[static_cast<std::size_t>(b.task)];
      const bool proc_overlap =
          alo < blo + b.procs && blo < alo + a.procs;
      EXPECT_FALSE(proc_overlap)
          << g.name(a.task) << " and " << g.name(b.task)
          << " overlap in processors";
    }
  }
  for (const auto& rec : recs) {
    const int lo = r.first_processor[static_cast<std::size_t>(rec.task)];
    EXPECT_GE(lo, 0);
    EXPECT_LE(lo + rec.procs, P);
  }
}

TEST(ContiguousSchedulerTest, MatchesUnconstrainedOnSimpleWorkloads) {
  // With identical 1-proc tasks there is no fragmentation.
  graph::TaskGraph g;
  for (int i = 0; i < 6; ++i)
    (void)g.add_task(std::make_shared<model::RooflineModel>(2.0, 1));
  const core::LpaAllocator alloc(0.3);
  const auto contiguous = schedule_online_contiguous(g, 3, alloc);
  const auto plain = core::schedule_online(g, 3, alloc);
  EXPECT_DOUBLE_EQ(contiguous.base.makespan, plain.makespan);
  EXPECT_DOUBLE_EQ(contiguous.fragmentation_wait, 0.0);
  sim::expect_valid_schedule(g, contiguous.base.trace, 3);
  expect_disjoint_placement(contiguous, g, 3);
}

TEST(ContiguousSchedulerTest, ValidSchedulesOnRandomGraphs) {
  util::Rng rng(51);
  const model::ModelSampler sampler(model::ModelKind::kGeneral);
  for (int rep = 0; rep < 5; ++rep) {
    const int P = static_cast<int>(rng.uniform_int(4, 32));
    const auto g = graph::layered_random(
        5, 2, 7, 0.35, rng, graph::sampling_provider(sampler, rng, P));
    const core::LpaAllocator alloc(0.25);
    const auto result = schedule_online_contiguous(g, P, alloc);
    sim::expect_valid_schedule(g, result.base.trace, P);
    expect_disjoint_placement(result, g, P);
    EXPECT_GE(result.fragmentation_wait, 0.0);
  }
}

TEST(ContiguousSchedulerTest, DeterministicAcrossRuns) {
  util::Rng rng(52);
  const model::ModelSampler sampler(model::ModelKind::kAmdahl);
  const auto g = graph::erdos_renyi_dag(
      30, 0.1, rng, graph::sampling_provider(sampler, rng, 16));
  const core::LpaAllocator alloc(0.271);
  const auto a = schedule_online_contiguous(g, 16, alloc);
  const auto b = schedule_online_contiguous(g, 16, alloc);
  EXPECT_DOUBLE_EQ(a.base.makespan, b.base.makespan);
  EXPECT_EQ(a.first_processor, b.first_processor);
}

TEST(ContiguousSchedulerTest, FragmentationCanDelayTasks) {
  // Engineer fragmentation: P = 4. Tasks A(2 procs, long), B(1 proc,
  // short), C(1 proc, long) start; B finishes leaving holes such that a
  // 2-proc task may have to wait although 2 processors are free.
  // We use a fixed allocator and check the accounting is non-negative
  // and the schedule valid; the precise delay depends on placement.
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::RooflineModel>(8.0, 2), "A");
  (void)g.add_task(std::make_shared<model::RooflineModel>(1.0, 1), "B");
  (void)g.add_task(std::make_shared<model::RooflineModel>(8.0, 1), "C");
  (void)g.add_task(std::make_shared<model::RooflineModel>(4.0, 2), "D");
  class Exact : public core::Allocator {
   public:
    int allocate(const model::SpeedupModel& m, int P) const override {
      return m.max_useful_procs(P);
    }
    std::string name() const override { return "max"; }
  };
  const Exact alloc;
  const auto result = schedule_online_contiguous(g, 4, alloc);
  sim::expect_valid_schedule(g, result.base.trace, 4);
  expect_disjoint_placement(result, g, 4);
}

TEST(ContiguousSchedulerTest, NeverBeatsTheLowerBound) {
  util::Rng rng(53);
  const model::ModelSampler sampler(model::ModelKind::kCommunication);
  const auto g = graph::fork_join(
      3, 6, graph::sampling_provider(sampler, rng, 12));
  const core::LpaAllocator alloc(0.324);
  const auto result = schedule_online_contiguous(g, 12, alloc);
  const auto plain = core::schedule_online(g, 12, alloc);
  // The contiguity constraint can only restrict start opportunities at
  // each instant; with list scheduling anomalies it is not *provably*
  // never faster, but it can never beat the Lemma 2 bound.
  EXPECT_GE(result.base.makespan, plain.makespan * 0.5);
  sim::expect_valid_schedule(g, result.base.trace, 12);
}

}  // namespace
}  // namespace moldsched::sched
