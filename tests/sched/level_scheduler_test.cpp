#include "moldsched/sched/level_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::sched {
namespace {

model::ModelPtr roofline(double w, int pbar) {
  return std::make_shared<model::RooflineModel>(w, pbar);
}

TEST(LevelSchedulerTest, BarrierSeparatesLevels) {
  // Diamond: source (level 0), two mids (level 1), sink (level 2);
  // mids have different lengths — the barrier waits for the longer one.
  graph::TaskGraph g;
  const auto s = g.add_task(roofline(1.0, 1), "s");
  const auto m1 = g.add_task(roofline(1.0, 1), "m1");
  const auto m2 = g.add_task(roofline(5.0, 1), "m2");
  const auto t = g.add_task(roofline(1.0, 1), "t");
  g.add_edge(s, m1);
  g.add_edge(s, m2);
  g.add_edge(m1, t);
  g.add_edge(m2, t);

  class One : public core::Allocator {
   public:
    int allocate(const model::SpeedupModel&, int) const override { return 1; }
    std::string name() const override { return "one"; }
  };
  const One alloc;
  const auto result = schedule_level_by_level(g, 4, alloc);
  // Levels end at 1, 6, 7.
  ASSERT_EQ(result.level_finish.size(), 3u);
  EXPECT_DOUBLE_EQ(result.level_finish[0], 1.0);
  EXPECT_DOUBLE_EQ(result.level_finish[1], 6.0);
  EXPECT_DOUBLE_EQ(result.level_finish[2], 7.0);
  EXPECT_DOUBLE_EQ(result.makespan, 7.0);
  EXPECT_EQ(result.level_of[static_cast<std::size_t>(m2)], 1);
  sim::expect_valid_schedule(g, result.trace, 4);
}

TEST(LevelSchedulerTest, LevelInternalPackingWorks) {
  // Four 1-proc unit tasks in one level on P = 2 take two waves.
  graph::TaskGraph g;
  const auto src = g.add_task(roofline(1.0, 1), "src");
  for (int i = 0; i < 4; ++i)
    g.add_edge(src, g.add_task(roofline(1.0, 1)));
  class One : public core::Allocator {
   public:
    int allocate(const model::SpeedupModel&, int) const override { return 1; }
    std::string name() const override { return "one"; }
  };
  const auto result = schedule_level_by_level(g, 2, One{});
  EXPECT_DOUBLE_EQ(result.makespan, 3.0);  // 1 + 2 waves
}

TEST(LevelSchedulerTest, NeverFasterThanGreedyListOnRandomGraphs) {
  // Barriers only remove overlap opportunities relative to Algorithm 1
  // when allocations coincide... not a theorem (list anomalies exist),
  // but overwhelmingly true; assert a sane relationship instead:
  // the level schedule is within 3x of greedy and never invalid.
  util::Rng rng(77);
  const model::ModelSampler sampler(model::ModelKind::kAmdahl);
  const int P = 16;
  const core::LpaAllocator alloc(0.271);
  for (int rep = 0; rep < 5; ++rep) {
    const auto g = graph::layered_random(
        6, 2, 8, 0.4, rng, graph::sampling_provider(sampler, rng, P));
    const auto level = schedule_level_by_level(g, P, alloc);
    const auto greedy = core::schedule_online(g, P, alloc);
    sim::expect_valid_schedule(g, level.trace, P);
    EXPECT_GE(level.makespan, greedy.makespan * 0.99);
    EXPECT_LE(level.makespan, greedy.makespan * 3.0);
  }
}

TEST(LevelSchedulerTest, RejectsBadInput) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(1.0, 1));
  const core::LpaAllocator alloc(0.3);
  EXPECT_THROW((void)schedule_level_by_level(g, 0, alloc),
               std::invalid_argument);
  graph::TaskGraph empty;
  EXPECT_THROW((void)schedule_level_by_level(empty, 4, alloc),
               std::logic_error);
}

TEST(LevelSchedulerTest, SingleTaskTrivial) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(6.0, 2), "only");
  const core::LpaAllocator alloc(0.38196601125010515);
  const auto result = schedule_level_by_level(g, 4, alloc);
  EXPECT_EQ(result.level_finish.size(), 1u);
  EXPECT_GT(result.makespan, 0.0);
  sim::expect_valid_schedule(g, result.trace, 4);
}

}  // namespace
}  // namespace moldsched::sched
