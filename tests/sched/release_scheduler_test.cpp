#include "moldsched/sched/release_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/core/allocator.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::sched {
namespace {

model::ModelPtr roofline(double w, int pbar) {
  return std::make_shared<model::RooflineModel>(w, pbar);
}

TEST(ReleaseSchedulerTest, SingleTaskStartsAtRelease) {
  std::vector<ReleasedTask> tasks{{roofline(4.0, 2), 3.0, "t"}};
  const core::LpaAllocator alloc(0.38196601125010515);
  const auto result = OnlineReleaseScheduler(tasks, 4, alloc).run();
  ASSERT_EQ(result.trace.records().size(), 1u);
  EXPECT_DOUBLE_EQ(result.trace.records()[0].start, 3.0);
  EXPECT_DOUBLE_EQ(result.makespan, 3.0 + 2.0);  // alloc capped at 2 -> t=2
  EXPECT_DOUBLE_EQ(result.wait_time[0], 0.0);
}

TEST(ReleaseSchedulerTest, LateTaskWaitsForProcessors) {
  // Two sequential tasks, P = 1: the second is released at 0.5 but must
  // wait until the first finishes at 2.
  std::vector<ReleasedTask> tasks{{roofline(2.0, 1), 0.0, "first"},
                                  {roofline(1.0, 1), 0.5, "second"}};
  class OneAlloc : public core::Allocator {
   public:
    int allocate(const model::SpeedupModel&, int) const override { return 1; }
    std::string name() const override { return "one"; }
  };
  const OneAlloc alloc;
  const auto result = OnlineReleaseScheduler(tasks, 1, alloc).run();
  EXPECT_DOUBLE_EQ(result.makespan, 3.0);
  EXPECT_DOUBLE_EQ(result.wait_time[1], 1.5);
}

TEST(ReleaseSchedulerTest, SimultaneousReleasesRevealInInputOrder) {
  std::vector<ReleasedTask> tasks{{roofline(1.0, 1), 1.0, "a"},
                                  {roofline(1.0, 1), 1.0, "b"},
                                  {roofline(1.0, 1), 1.0, "c"}};
  class OneAlloc : public core::Allocator {
   public:
    int allocate(const model::SpeedupModel&, int) const override { return 1; }
    std::string name() const override { return "one"; }
  };
  const OneAlloc alloc;
  const auto result = OnlineReleaseScheduler(tasks, 1, alloc).run();
  const auto& recs = result.trace.records();
  EXPECT_EQ(recs[0].task, 0);
  EXPECT_EQ(recs[1].task, 1);
  EXPECT_EQ(recs[2].task, 2);
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
}

TEST(ReleaseSchedulerTest, IdleGapUntilNextRelease) {
  std::vector<ReleasedTask> tasks{{roofline(1.0, 1), 0.0, "early"},
                                  {roofline(1.0, 1), 10.0, "late"}};
  const core::LpaAllocator alloc(0.3);
  const auto result = OnlineReleaseScheduler(tasks, 4, alloc).run();
  EXPECT_DOUBLE_EQ(result.makespan, 11.0);
}

TEST(ReleaseSchedulerTest, RejectsBadInput) {
  const core::LpaAllocator alloc(0.3);
  EXPECT_THROW(OnlineReleaseScheduler({}, 4, alloc), std::invalid_argument);
  std::vector<ReleasedTask> tasks{{roofline(1.0, 1), -1.0, "neg"}};
  EXPECT_THROW(OnlineReleaseScheduler(tasks, 4, alloc),
               std::invalid_argument);
  std::vector<ReleasedTask> null_model{{nullptr, 0.0, "x"}};
  EXPECT_THROW(OnlineReleaseScheduler(null_model, 4, alloc),
               std::invalid_argument);
  std::vector<ReleasedTask> good{{roofline(1.0, 1), 0.0, "x"}};
  EXPECT_THROW(OnlineReleaseScheduler(good, 0, alloc), std::invalid_argument);
}

TEST(ReleaseLowerBoundTest, ReducesToAreaBoundWithoutReleases) {
  std::vector<ReleasedTask> tasks;
  for (int i = 0; i < 8; ++i)
    tasks.push_back({std::make_shared<model::AmdahlModel>(10.0, 2.0), 0.0,
                     "t" + std::to_string(i)});
  // A_min = 8 * 12 = 96, P = 4 -> 24; t_min bound is tiny.
  EXPECT_DOUBLE_EQ(release_makespan_lower_bound(tasks, 4), 24.0);
}

TEST(ReleaseLowerBoundTest, AccountsForLateReleases) {
  std::vector<ReleasedTask> tasks{{roofline(4.0, 4), 0.0, "early"},
                                  {roofline(4.0, 4), 100.0, "late"}};
  // The late task alone forces T >= 100 + 1.
  EXPECT_DOUBLE_EQ(release_makespan_lower_bound(tasks, 4), 101.0);
}

TEST(ReleaseLowerBoundTest, SuffixAreaBoundBites) {
  // 10 sequential-only tasks released at t = 5 on P = 1: the suffix bound
  // gives 5 + 10*4 = 45, far above any single-task bound.
  std::vector<ReleasedTask> tasks;
  for (int i = 0; i < 10; ++i)
    tasks.push_back({roofline(4.0, 1), 5.0, "t" + std::to_string(i)});
  EXPECT_DOUBLE_EQ(release_makespan_lower_bound(tasks, 1), 45.0);
}

TEST(ReleaseSchedulerTest, MakespanNeverBeatsLowerBound) {
  util::Rng rng(9);
  const model::ModelSampler sampler(model::ModelKind::kGeneral);
  const int P = 16;
  std::vector<ReleasedTask> tasks;
  for (int i = 0; i < 60; ++i)
    tasks.push_back(
        {sampler.sample(rng, P), rng.uniform(0.0, 50.0), "t" + std::to_string(i)});
  const core::LpaAllocator alloc(0.211);
  const auto result = OnlineReleaseScheduler(tasks, P, alloc).run();
  const double lb = release_makespan_lower_bound(tasks, P);
  EXPECT_GE(result.makespan, lb * (1.0 - 1e-9));
  // Empirically the ratio stays modest (Ye et al. prove 16.74-competitive
  // for a related strategy; we just sanity-bound it here).
  EXPECT_LE(result.makespan, 6.0 * lb);
}

TEST(ReleaseSchedulerTest, DeterministicAcrossRuns) {
  util::Rng rng(10);
  const model::ModelSampler sampler(model::ModelKind::kAmdahl);
  std::vector<ReleasedTask> tasks;
  for (int i = 0; i < 30; ++i)
    tasks.push_back({sampler.sample(rng, 8), rng.uniform(0.0, 10.0), ""});
  const core::LpaAllocator alloc(0.271);
  const auto a = OnlineReleaseScheduler(tasks, 8, alloc).run();
  const auto b = OnlineReleaseScheduler(tasks, 8, alloc).run();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

}  // namespace
}  // namespace moldsched::sched
