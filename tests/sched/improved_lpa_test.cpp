// Unit tests of the per-model-aware ImprovedLpaAllocator: parameter
// dispatch, the Step 1/Step 2 invariants, the degenerate P = 1 platform,
// determinism, and compatibility with the CachingAllocator decorator.
#include "moldsched/sched/improved_lpa.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "moldsched/analysis/improved.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::sched {
namespace {

const std::vector<model::ModelKind> kAnalytic = {
    model::ModelKind::kRoofline, model::ModelKind::kCommunication,
    model::ModelKind::kAmdahl, model::ModelKind::kGeneral};

TEST(ImprovedLpaAllocator, NameIsStable) {
  EXPECT_EQ(ImprovedLpaAllocator().name(), "improved-lpa");
}

TEST(ImprovedLpaAllocator, DispatchesToPerKindOptima) {
  const ImprovedLpaAllocator alloc;
  for (const auto kind : kAnalytic) {
    const auto refined = analysis::improved_optimal_ratio(kind);
    const auto params = alloc.params_for(kind);
    EXPECT_DOUBLE_EQ(params.mu, refined.mu_star) << model::to_string(kind);
    EXPECT_DOUBLE_EQ(params.threshold, refined.threshold);
  }
  // The arbitrary kind has no constant of its own; it borrows the
  // general-model pair.
  const auto general = alloc.params_for(model::ModelKind::kGeneral);
  const auto arb = alloc.params_for(model::ModelKind::kArbitrary);
  EXPECT_DOUBLE_EQ(arb.mu, general.mu);
  EXPECT_DOUBLE_EQ(arb.threshold, general.threshold);
}

TEST(ImprovedLpaAllocator, CapMatchesCeilMuP) {
  const ImprovedLpaAllocator alloc;
  for (const auto kind : kAnalytic) {
    const double mu = alloc.params_for(kind).mu;
    for (const int P : {1, 2, 7, 64, 1000}) {
      const int cap = alloc.cap(kind, P);
      EXPECT_EQ(cap, static_cast<int>(std::ceil(mu * P - 1e-12)));
      EXPECT_GE(cap, 1);
      EXPECT_LE(cap, P);
    }
  }
}

TEST(ImprovedLpaAllocator, DecisionInvariantsOnSampledModels) {
  const ImprovedLpaAllocator alloc;
  util::Rng rng(11);
  for (const auto kind : kAnalytic) {
    const model::ModelSampler sampler(kind);
    for (const int P : {2, 16, 100}) {
      for (int rep = 0; rep < 8; ++rep) {
        const auto m = sampler.sample(rng, P);
        const auto d = alloc.decide(*m, P);
        const auto params = alloc.params_for(kind);
        EXPECT_GE(d.final_alloc, 1);
        EXPECT_LE(d.final_alloc, alloc.cap(kind, P));
        EXPECT_GE(d.initial, 1);
        EXPECT_LE(d.initial, P);
        // Step 1 admits only allocations within the kind's threshold
        // (p_max itself has beta = 1, so the program is never empty).
        EXPECT_LE(d.beta, params.threshold * (1.0 + 1e-9));
        EXPECT_GE(d.alpha, 1.0 - 1e-12);
        EXPECT_EQ(alloc.allocate(*m, P), d.final_alloc);
      }
    }
  }
}

TEST(ImprovedLpaAllocator, ArbitraryTablesUseExhaustiveScan) {
  const ImprovedLpaAllocator alloc;
  // Non-monotone table: the binary-search shortcut would be wrong here,
  // so the decision must still satisfy the Step 1 program exactly.
  const model::TableModel m({10.0, 7.0, 9.0, 2.0, 8.0});
  const int P = 5;
  const auto d = alloc.decide(m, P);
  const auto params = alloc.params_for(model::ModelKind::kArbitrary);
  EXPECT_EQ(d.p_max, 4);  // argmin of the table
  EXPECT_LE(d.beta, params.threshold * (1.0 + 1e-9));
  // No admissible allocation with smaller area exists.
  const double limit = params.threshold * d.t_min * (1.0 + 1e-9);
  for (int p = 1; p <= P; ++p) {
    const double t = m.time(p);
    if (t <= limit) {
      EXPECT_GE(t * p, d.alpha * d.a_min * (1.0 - 1e-9)) << "p=" << p;
    }
  }
}

TEST(ImprovedLpaAllocator, SingleProcessorAlwaysAllocatesOne) {
  const ImprovedLpaAllocator alloc;
  util::Rng rng(3);
  for (const auto kind : kAnalytic) {
    const model::ModelSampler sampler(kind);
    const auto m = sampler.sample(rng, 1);
    EXPECT_EQ(alloc.allocate(*m, 1), 1) << model::to_string(kind);
  }
  const model::TableModel table({4.2});
  EXPECT_EQ(alloc.allocate(table, 1), 1);
}

TEST(ImprovedLpaAllocator, DeterministicAcrossInstances) {
  const ImprovedLpaAllocator a;
  const ImprovedLpaAllocator b;
  util::Rng rng(17);
  const model::ModelSampler sampler(model::ModelKind::kCommunication);
  for (int rep = 0; rep < 16; ++rep) {
    const auto m = sampler.sample(rng, 48);
    EXPECT_EQ(a.allocate(*m, 48), b.allocate(*m, 48));
  }
}

TEST(ImprovedLpaAllocator, CachingDecoratorIsDecisionIdentical) {
  const ImprovedLpaAllocator bare;
  const core::CachingAllocator cached(bare);
  util::Rng rng(23);
  for (const auto kind : kAnalytic) {
    const model::ModelSampler sampler(kind);
    for (int rep = 0; rep < 8; ++rep) {
      const auto m = sampler.sample(rng, 32);
      const int expected = bare.allocate(*m, 32);
      // First sighting populates the cache, the second must replay it.
      EXPECT_EQ(cached.allocate(*m, 32), expected);
      EXPECT_EQ(cached.allocate(*m, 32), expected);
    }
  }
  EXPECT_GT(cached.cache().hits(), 0u);
}

}  // namespace
}  // namespace moldsched::sched
