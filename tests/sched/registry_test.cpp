#include "moldsched/sched/registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "moldsched/model/special_models.hpp"

namespace moldsched::sched {
namespace {

TEST(RegistryTest, LpaSpecUsesGivenMu) {
  const auto spec = lpa_spec(0.25);
  EXPECT_EQ(spec.name, "lpa");
  ASSERT_NE(spec.allocator, nullptr);
  const auto* lpa =
      dynamic_cast<const core::LpaAllocator*>(spec.allocator.get());
  ASSERT_NE(lpa, nullptr);
  EXPECT_DOUBLE_EQ(lpa->mu(), 0.25);
  EXPECT_EQ(spec.policy, core::QueuePolicy::kFifo);
}

TEST(RegistryTest, SpecRunDispatchesToEngine) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::AmdahlModel>(8.0, 1.0), "t");
  const auto spec = lpa_spec(0.271);
  const auto direct = spec.run(g, 4);
  EXPECT_GT(direct.makespan, 0.0);

  SchedulerSpec custom;
  custom.name = "stub";
  bool called = false;
  custom.runner = [&called](const graph::TaskGraph& gr, int P) {
    called = true;
    core::ScheduleResult r;
    r.trace.record_start(0, 0.0, 1);
    r.trace.record_end(0, gr.model_of(0).time(1));
    r.makespan = r.trace.makespan();
    r.allocation = {1};
    r.ready_time = {0.0};
    (void)P;
    return r;
  };
  EXPECT_GT(custom.run(g, 4).makespan, 0.0);
  EXPECT_TRUE(called);

  SchedulerSpec empty;
  empty.name = "broken";
  EXPECT_THROW((void)empty.run(g, 4), std::invalid_argument);
}

TEST(RegistryTest, EngineVariantsProduceValidResults) {
  graph::TaskGraph g;
  const auto a =
      g.add_task(std::make_shared<model::AmdahlModel>(8.0, 1.0), "a");
  const auto b =
      g.add_task(std::make_shared<model::AmdahlModel>(4.0, 0.5), "b");
  g.add_edge(a, b);
  const auto variants = engine_variants(0.271);
  ASSERT_EQ(variants.size(), 3u);
  for (const auto& spec : variants) {
    const auto result = spec.run(g, 8);
    EXPECT_GT(result.makespan, 0.0) << spec.name;
    EXPECT_EQ(result.trace.records().size(), 2u) << spec.name;
  }
  EXPECT_EQ(variants[0].name, "level-lpa");
  EXPECT_EQ(variants[1].name, "contiguous-lpa");
  EXPECT_EQ(variants[2].name, "backfill-lpa");
}

TEST(RegistryTest, StandardSuiteHasDistinctWorkingSchedulers) {
  const auto suite = standard_suite(0.3);
  EXPECT_GE(suite.size(), 5u);
  std::set<std::string> names;
  const model::AmdahlModel m(10.0, 1.0);
  for (const auto& spec : suite) {
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate " << spec.name;
    ASSERT_NE(spec.allocator, nullptr) << spec.name;
    const int a = spec.allocator->allocate(m, 16);
    EXPECT_GE(a, 1);
    EXPECT_LE(a, 16);
  }
  EXPECT_TRUE(names.count("lpa"));
  EXPECT_TRUE(names.count("min-time"));
  EXPECT_TRUE(names.count("sequential"));
}

}  // namespace
}  // namespace moldsched::sched
