#include "moldsched/sched/registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "moldsched/model/special_models.hpp"

namespace moldsched::sched {
namespace {

TEST(RegistryTest, LpaSpecUsesGivenMu) {
  const auto spec = lpa_spec(0.25);
  EXPECT_EQ(spec.name, "lpa");
  ASSERT_NE(spec.allocator, nullptr);
  // The registry hands out the memoizing decorator around the LPA
  // allocator, sharing the process-wide decision cache.
  const auto* cached =
      dynamic_cast<const core::CachingAllocator*>(spec.allocator.get());
  ASSERT_NE(cached, nullptr);
  const auto* lpa = dynamic_cast<const core::LpaAllocator*>(&cached->inner());
  ASSERT_NE(lpa, nullptr);
  EXPECT_DOUBLE_EQ(lpa->mu(), 0.25);
  EXPECT_EQ(spec.policy, core::QueuePolicy::kFifo);
}

TEST(RegistryTest, SpecRunDispatchesToEngine) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::AmdahlModel>(8.0, 1.0), "t");
  const auto spec = lpa_spec(0.271);
  const auto direct = spec.run(g, 4);
  EXPECT_GT(direct.makespan, 0.0);

  SchedulerSpec custom;
  custom.name = "stub";
  bool called = false;
  custom.runner = [&called](const graph::TaskGraph& gr, int P) {
    called = true;
    core::ScheduleResult r;
    r.trace.record_start(0, 0.0, 1);
    r.trace.record_end(0, gr.model_of(0).time(1));
    r.makespan = r.trace.makespan();
    r.allocation = {1};
    r.ready_time = {0.0};
    (void)P;
    return r;
  };
  EXPECT_GT(custom.run(g, 4).makespan, 0.0);
  EXPECT_TRUE(called);

  SchedulerSpec empty;
  empty.name = "broken";
  EXPECT_THROW((void)empty.run(g, 4), std::invalid_argument);
}

TEST(RegistryTest, MisconfiguredSpecErrorNamesTheSpec) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::AmdahlModel>(8.0, 1.0), "t");
  SchedulerSpec empty;
  empty.name = "broken";
  try {
    (void)empty.run(g, 4);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("broken"), std::string::npos)
        << "message should name the spec: " << e.what();
  }
}

TEST(RegistryTest, FullSuiteConcatenatesStandardVariantsAndReferences) {
  const auto suite = full_suite(0.3);
  const auto standard = standard_suite(0.3);
  const auto variants = engine_variants(0.3);
  // standard + engine variants + the opt:: offline reference columns
  // (wl-canonical, wl-compress). The exact oracle is deliberately not a
  // column: full_suite must stay runnable on corpus-sized instances.
  ASSERT_EQ(suite.size(), standard.size() + variants.size() + 2u);
  EXPECT_EQ(suite[suite.size() - 2].name, "wl-canonical");
  EXPECT_EQ(suite[suite.size() - 1].name, "wl-compress");
  const auto names = full_suite_names();
  ASSERT_EQ(names.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i)
    EXPECT_EQ(names[i], suite[i].name);
}

TEST(RegistryTest, SpecByNameResolvesExactOracleOutsideFullSuite) {
  for (const auto& name : full_suite_names()) EXPECT_NE(name, "exact-topt");
  const auto spec = spec_by_name("exact-topt", 0.3);
  EXPECT_EQ(spec.name, "exact-topt");
  graph::TaskGraph g;
  const auto a =
      g.add_task(std::make_shared<model::AmdahlModel>(8.0, 1.0), "a");
  const auto b =
      g.add_task(std::make_shared<model::AmdahlModel>(4.0, 0.5), "b");
  g.add_edge(a, b);
  const auto result = spec.run(g, 4);
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_EQ(result.trace.records().size(), 2u);
}

TEST(RegistryTest, SpecByNameFindsEverySuiteMember) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::AmdahlModel>(8.0, 1.0), "t");
  for (const auto& name : full_suite_names()) {
    const auto spec = spec_by_name(name, 0.3);
    EXPECT_EQ(spec.name, name);
    EXPECT_GT(spec.run(g, 8).makespan, 0.0) << name;
  }
  try {
    (void)spec_by_name("no-such-scheduler", 0.3);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-scheduler"), std::string::npos);
    EXPECT_NE(what.find("lpa"), std::string::npos)
        << "message should list the known names: " << what;
  }
}

TEST(RegistryTest, EngineVariantsProduceValidResults) {
  graph::TaskGraph g;
  const auto a =
      g.add_task(std::make_shared<model::AmdahlModel>(8.0, 1.0), "a");
  const auto b =
      g.add_task(std::make_shared<model::AmdahlModel>(4.0, 0.5), "b");
  g.add_edge(a, b);
  const auto variants = engine_variants(0.271);
  ASSERT_EQ(variants.size(), 3u);
  for (const auto& spec : variants) {
    const auto result = spec.run(g, 8);
    EXPECT_GT(result.makespan, 0.0) << spec.name;
    EXPECT_EQ(result.trace.records().size(), 2u) << spec.name;
  }
  EXPECT_EQ(variants[0].name, "level-lpa");
  EXPECT_EQ(variants[1].name, "contiguous-lpa");
  EXPECT_EQ(variants[2].name, "backfill-lpa");
}

TEST(RegistryTest, StandardSuiteHasDistinctWorkingSchedulers) {
  const auto suite = standard_suite(0.3);
  EXPECT_GE(suite.size(), 5u);
  std::set<std::string> names;
  const model::AmdahlModel m(10.0, 1.0);
  for (const auto& spec : suite) {
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate " << spec.name;
    ASSERT_NE(spec.allocator, nullptr) << spec.name;
    const int a = spec.allocator->allocate(m, 16);
    EXPECT_GE(a, 1);
    EXPECT_LE(a, 16);
  }
  EXPECT_TRUE(names.count("lpa"));
  EXPECT_TRUE(names.count("min-time"));
  EXPECT_TRUE(names.count("sequential"));
}

}  // namespace
}  // namespace moldsched::sched
