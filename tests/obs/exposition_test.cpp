#include "moldsched/obs/exposition.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace moldsched::obs {
namespace {

TEST(PrometheusExpositionTest, SanitizesNames) {
  EXPECT_EQ(prometheus_name("svc.request.latency_ms"),
            "svc_request_latency_ms");
  EXPECT_EQ(prometheus_name("already_legal:name"), "already_legal:name");
  EXPECT_EQ(prometheus_name("space and-dash"), "space_and_dash");
  EXPECT_EQ(prometheus_name("9starts.with.digit"), "_9starts_with_digit");
  EXPECT_EQ(prometheus_name(""), "_");
}

TEST(PrometheusExpositionTest, CountersGetTotalSuffix) {
  MetricRegistry reg;
  reg.counter("svc.requests.received").add(5);
  reg.counter("already.has_total").add(2);
  const std::string text = to_prometheus_text(reg);
  EXPECT_NE(text.find("# TYPE svc_requests_received_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("svc_requests_received_total 5\n"), std::string::npos);
  // No double suffix.
  EXPECT_NE(text.find("already_has_total 2\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("_total_total"), std::string::npos) << text;
}

TEST(PrometheusExpositionTest, GaugesRenderPlain) {
  MetricRegistry reg;
  reg.gauge("proc.rss_bytes").set(123456.0);
  const std::string text = to_prometheus_text(reg);
  EXPECT_NE(text.find("# TYPE proc_rss_bytes gauge\n"), std::string::npos);
  EXPECT_NE(text.find("proc_rss_bytes 123456\n"), std::string::npos) << text;
}

TEST(PrometheusExpositionTest, HistogramsAreCumulativeWithInfBucket) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(5.5);
  h.observe(1000.0);
  const std::string text = to_prometheus_text(reg);
  EXPECT_NE(text.find("# TYPE lat histogram\n"), std::string::npos);
  // Bucket counts are cumulative: 1, 3, 3, 4.
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_bucket{le=\"10\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"100\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 1011\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_count 4\n"), std::string::npos);
}

/// Minimal structural check of the whole document: every non-comment
/// line is "name[{labels}] value", every # line is a TYPE comment, and
/// every histogram ends with a le="+Inf" bucket whose count equals
/// _count. This is the same shape assertion CI runs in python against a
/// live scrape.
TEST(PrometheusExpositionTest, DocumentParsesLineByLine) {
  MetricRegistry reg;
  reg.counter("a.count").add(1);
  reg.gauge("b.gauge").set(-2.5);
  reg.histogram("c.hist", Histogram::log_bounds(0.001, 10.0, 6)).observe(0.5);
  const std::string text = to_prometheus_text(reg);
  std::istringstream lines(text);
  std::string line;
  std::uint64_t inf_count = 0, hist_count = 1;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string name = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    EXPECT_FALSE(value.empty()) << line;
    // Names stay within the sanitized grammar up to the label block.
    for (const char c : name.substr(0, name.find('{')))
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':')
          << line;
    if (name.find("{le=\"+Inf\"}") != std::string::npos)
      inf_count = std::stoull(value);
    if (name == "c_hist_count") hist_count = std::stoull(value);
  }
  EXPECT_EQ(inf_count, hist_count);
  EXPECT_EQ(hist_count, 1u);
}

TEST(PrometheusExpositionTest, SampleOrderFollowsSnapshot) {
  MetricRegistry reg;
  reg.counter("zz").add(1);
  reg.counter("aa").add(1);
  const std::string text = to_prometheus_text(reg);
  EXPECT_LT(text.find("aa_total"), text.find("zz_total"));
}

}  // namespace
}  // namespace moldsched::obs
