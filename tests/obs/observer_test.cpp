#include "moldsched/obs/observer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/obs/trace_writer.hpp"
#include "moldsched/sim/event_queue.hpp"

namespace moldsched::obs {
namespace {

model::ModelPtr roofline(double w, int pbar) {
  return std::make_shared<model::RooflineModel>(w, pbar);
}

class StubAllocator : public core::Allocator {
 public:
  explicit StubAllocator(int value) : value_(value) {}
  int allocate(const model::SpeedupModel&, int) const override {
    return value_;
  }
  std::string name() const override { return "stub"; }

 private:
  int value_;
};

/// Records every hook invocation verbatim for assertions.
class RecordingObserver final : public Observer {
 public:
  struct Ready {
    int task;
    std::string name;
    double time;
    int alloc;
    int alloc_cap;
    std::size_t queue_depth;
  };
  struct Start {
    int task;
    std::string name;
    std::string model;
    double time;
    int procs;
    double waited;
    int layer;
    std::size_t queue_depth;
    int procs_in_use;
  };
  struct End {
    int task;
    double time;
    int procs;
    double exec_time;
    int procs_in_use;
  };
  struct Done {
    double makespan;
    double waiting_area;
    double executing_area;
    std::uint64_t num_events;
  };
  struct Batch {
    double time;
    std::size_t batch_size;
    std::size_t pending;
  };

  std::vector<Ready> ready;
  std::vector<Start> starts;
  std::vector<End> ends;
  std::vector<Done> done;
  std::vector<Batch> batches;
  std::size_t scheduled = 0;
  std::vector<std::pair<std::uint64_t, std::string>> job_starts;
  std::vector<std::pair<std::uint64_t, std::string>> job_ends;

  void on_task_ready(int task, const std::string& name, double time,
                     int alloc, int alloc_cap,
                     std::size_t queue_depth) override {
    ready.push_back({task, name, time, alloc, alloc_cap, queue_depth});
  }
  void on_task_start(int task, const std::string& name,
                     const std::string& model, double time, int procs,
                     double waited, int layer, std::size_t queue_depth,
                     int procs_in_use) override {
    starts.push_back({task, name, model, time, procs, waited, layer,
                      queue_depth, procs_in_use});
  }
  void on_task_end(int task, double time, int procs, double exec_time,
                   std::size_t, int procs_in_use) override {
    ends.push_back({task, time, procs, exec_time, procs_in_use});
  }
  void on_sim_done(double makespan, double waiting_area,
                   double executing_area, std::uint64_t num_events) override {
    done.push_back({makespan, waiting_area, executing_area, num_events});
  }
  void on_event_scheduled(double, double, std::int64_t, std::size_t) override {
    ++scheduled;
  }
  void on_event_batch(double time, std::size_t batch_size,
                      std::size_t pending) override {
    batches.push_back({time, batch_size, pending});
  }
  void on_job_start(std::uint64_t job_id, const std::string& key,
                    double) override {
    job_starts.emplace_back(job_id, key);
  }
  void on_job_end(std::uint64_t job_id, const std::string& key,
                  const std::string&, double) override {
    job_ends.emplace_back(job_id, key);
  }
};

/// Diamond a -> {b, c} -> d of unit-width roofline tasks.
graph::TaskGraph diamond() {
  graph::TaskGraph g;
  const auto a = g.add_task(roofline(2.0, 1), "a");
  const auto b = g.add_task(roofline(2.0, 1), "b");
  const auto c = g.add_task(roofline(2.0, 1), "c");
  const auto d = g.add_task(roofline(2.0, 1), "d");
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  return g;
}

TEST(ObserverTest, DiamondEventOrderingWaitingAndLayers) {
  // On P = 1 the diamond serializes: a [0,2), b [2,4), c [4,6) after
  // waiting 2 time units in the queue, d [6,8).
  const auto g = diamond();
  RecordingObserver rec;
  const StubAllocator alloc(1);
  const auto result =
      core::schedule_online(g, 1, alloc, core::QueuePolicy::kFifo, &rec);
  EXPECT_DOUBLE_EQ(result.makespan, 8.0);

  ASSERT_EQ(rec.ready.size(), 4u);
  ASSERT_EQ(rec.starts.size(), 4u);
  ASSERT_EQ(rec.ends.size(), 4u);
  ASSERT_EQ(rec.done.size(), 1u);

  // Every task: revealed no later than started, started no later than
  // ended, waited = start - ready, exec_time = end - start.
  std::map<int, double> ready_time;
  std::map<int, double> start_time;
  for (const auto& r : rec.ready) ready_time[r.task] = r.time;
  for (const auto& s : rec.starts) {
    ASSERT_TRUE(ready_time.count(s.task));
    EXPECT_LE(ready_time[s.task], s.time);
    EXPECT_DOUBLE_EQ(s.waited, s.time - ready_time[s.task]);
    EXPECT_FALSE(s.model.empty());
    start_time[s.task] = s.time;
  }
  for (const auto& e : rec.ends) {
    ASSERT_TRUE(start_time.count(e.task));
    EXPECT_LE(start_time[e.task], e.time);
    EXPECT_DOUBLE_EQ(e.exec_time, e.time - start_time[e.task]);
  }

  // Hop layers: a = 0, b = c = 1, d = 2.
  std::map<std::string, int> layer;
  for (const auto& s : rec.starts) layer[s.name] = s.layer;
  EXPECT_EQ(layer["a"], 0);
  EXPECT_EQ(layer["b"], 1);
  EXPECT_EQ(layer["c"], 1);
  EXPECT_EQ(layer["d"], 2);

  // The StubAllocator exposes no mu-cap.
  for (const auto& r : rec.ready) EXPECT_EQ(r.alloc_cap, -1);

  // Only c waits (2 time units on 1 processor); the Lemma areas follow.
  const auto& done = rec.done[0];
  EXPECT_DOUBLE_EQ(done.makespan, 8.0);
  EXPECT_DOUBLE_EQ(done.waiting_area, 2.0);
  double executing_area = 0.0;
  for (const auto& r : result.trace.records())
    executing_area += r.procs * (r.end - r.start);
  EXPECT_DOUBLE_EQ(done.executing_area, executing_area);
  EXPECT_EQ(done.num_events, result.num_events);

  // The scheduler wires the observer into its event queue too.
  EXPECT_GT(rec.scheduled, 0u);
  EXPECT_FALSE(rec.batches.empty());
}

TEST(ObserverTest, LpaAllocatorReportsMuCap) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(8.0, 4));
  const core::LpaAllocator alloc(0.38196601125010515);
  RecordingObserver rec;
  const auto result =
      core::schedule_online(g, 4, alloc, core::QueuePolicy::kFifo, &rec);
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
  ASSERT_EQ(rec.ready.size(), 1u);
  EXPECT_EQ(rec.ready[0].alloc, 2);
  EXPECT_EQ(rec.ready[0].alloc_cap, alloc.cap(4));  // ceil(mu * 4) = 2
}

TEST(ObserverTest, EventQueueReportsSchedulesAndBatches) {
  sim::EventQueue q;
  RecordingObserver rec;
  q.set_observer(&rec);
  q.schedule(1.0, 7);
  q.schedule(1.0, 8);
  q.schedule(2.0, 9);
  EXPECT_EQ(rec.scheduled, 3u);
  const auto first = q.pop_simultaneous();
  EXPECT_EQ(first.size(), 2u);
  ASSERT_EQ(rec.batches.size(), 1u);
  EXPECT_DOUBLE_EQ(rec.batches[0].time, 1.0);
  EXPECT_EQ(rec.batches[0].batch_size, 2u);
  EXPECT_EQ(rec.batches[0].pending, 1u);
  const auto second = q.pop_simultaneous();
  EXPECT_EQ(second.size(), 1u);
  ASSERT_EQ(rec.batches.size(), 2u);
  EXPECT_DOUBLE_EQ(rec.batches[1].time, 2.0);
  EXPECT_EQ(rec.batches[1].pending, 0u);
}

TEST(ObserverTest, MetricsObserverFeedsRegistry) {
  MetricRegistry reg;
  MetricsObserver obs(reg);
  const auto g = diamond();
  const StubAllocator alloc(1);
  (void)core::schedule_online(g, 1, alloc, core::QueuePolicy::kFifo, &obs);
  EXPECT_EQ(reg.counter("sim.tasks.ready").value(), 4u);
  EXPECT_EQ(reg.counter("sim.tasks.started").value(), 4u);
  EXPECT_EQ(reg.counter("sim.tasks.completed").value(), 4u);
  EXPECT_EQ(reg.counter("sim.tasks.capped").value(), 0u);  // no mu-cap
  EXPECT_EQ(reg.counter("sim.sims").value(), 1u);
  // b and c are queued together once: peak depth 2.
  EXPECT_DOUBLE_EQ(reg.gauge("sim.queue_depth.peak").value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.waiting_area").value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.executing_area").value(), 8.0);
  EXPECT_EQ(reg.histogram("sim.task.wait").count(), 4u);
  EXPECT_DOUBLE_EQ(reg.histogram("sim.task.wait").sum(), 2.0);
}

TEST(ObserverTest, MetricsObserverCountsCappedAllocations) {
  MetricRegistry reg;
  MetricsObserver obs(reg);
  graph::TaskGraph g;
  (void)g.add_task(roofline(8.0, 4));
  const core::LpaAllocator alloc(0.38196601125010515);
  (void)core::schedule_online(g, 4, alloc, core::QueuePolicy::kFifo, &obs);
  // The single task's allocation (2) hits the cap ceil(mu * 4) = 2.
  EXPECT_EQ(reg.counter("sim.tasks.capped").value(), 1u);
}

TEST(ObserverTest, SimTraceObserverProducesValidChromeTrace) {
  TraceWriter writer;
  const int pid = writer.new_process("sim diamond/P=1");
  SimTraceObserver obs(writer, pid, /*P=*/1);
  const auto g = diamond();
  const StubAllocator alloc(1);
  (void)core::schedule_online(g, 1, alloc, core::QueuePolicy::kFifo, &obs);

  const std::string json = writer.to_json();
  TraceStats stats;
  const auto problem = validate_chrome_trace(json, &stats);
  ASSERT_FALSE(problem.has_value()) << *problem;
  // One span per task (each runs on 1 processor = 1 lane); the "ready"
  // instants plus the closing "sim done" instant; counter samples for
  // the ready-queue and procs-in-use tracks.
  EXPECT_EQ(stats.spans, 4u);
  EXPECT_EQ(stats.instants, 5u);
  EXPECT_GT(stats.counter_samples, 0u);
  ASSERT_EQ(stats.pids.size(), 1u);
  EXPECT_EQ(stats.pids[0], pid);
  for (const char* task : {"\"a\"", "\"b\"", "\"c\"", "\"d\""})
    EXPECT_NE(json.find(task), std::string::npos) << task;
  EXPECT_NE(json.find("proc 0"), std::string::npos);
  EXPECT_NE(json.find("sim done"), std::string::npos);
}

TEST(ObserverTest, FanoutForwardsEveryHookAndIgnoresNulls) {
  RecordingObserver a;
  RecordingObserver b;
  FanoutObserver fan({&a, nullptr, &b});
  fan.on_task_ready(0, "t", 0.0, 1, -1, 1);
  fan.on_task_start(0, "t", "m", 0.0, 1, 0.0, 0, 0, 1);
  fan.on_task_end(0, 1.0, 1, 1.0, 0, 0);
  fan.on_sim_done(1.0, 0.0, 1.0, 1);
  fan.on_event_scheduled(0.0, 1.0, 0, 1);
  fan.on_event_batch(1.0, 1, 0);
  fan.on_job_start(7, "k", 0.5);
  fan.on_job_end(7, "k", "ok", 2.0);
  for (const RecordingObserver* rec : {&a, &b}) {
    EXPECT_EQ(rec->ready.size(), 1u);
    EXPECT_EQ(rec->starts.size(), 1u);
    EXPECT_EQ(rec->ends.size(), 1u);
    EXPECT_EQ(rec->done.size(), 1u);
    EXPECT_EQ(rec->scheduled, 1u);
    EXPECT_EQ(rec->batches.size(), 1u);
    ASSERT_EQ(rec->job_starts.size(), 1u);
    EXPECT_EQ(rec->job_starts[0].second, "k");
    ASSERT_EQ(rec->job_ends.size(), 1u);
    EXPECT_EQ(rec->job_ends[0].first, 7u);
  }
}

TEST(ObserverTest, NullObserverAcceptsEveryHook) {
  NullObserver null;
  Observer& obs = null;
  obs.on_task_ready(0, "", 0.0, 1, -1, 0);
  obs.on_task_start(0, "", "", 0.0, 1, 0.0, 0, 0, 1);
  obs.on_task_end(0, 0.0, 1, 0.0, 0, 0);
  obs.on_sim_done(0.0, 0.0, 0.0, 0);
  obs.on_event_scheduled(0.0, 0.0, 0, 0);
  obs.on_event_batch(0.0, 0, 0);
  obs.on_job_start(0, "", 0.0);
  obs.on_job_end(0, "", "", 0.0);
}

}  // namespace
}  // namespace moldsched::obs
