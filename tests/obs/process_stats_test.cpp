#include "moldsched/obs/process_stats.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

namespace moldsched::obs {
namespace {

TEST(ProcessStatsTest, ReadsPlausibleValues) {
  const ProcessStats stats = read_process_stats();
  // A running test binary has resident pages, at least stdio + the
  // /proc dir stream's fds, and a non-negative uptime.
  EXPECT_GT(stats.rss_bytes, 0.0);
  EXPECT_GT(stats.open_fds, 0.0);
  EXPECT_GE(stats.uptime_s, 0.0);
  EXPECT_LT(stats.uptime_s, 3600.0);  // the test did not run for an hour
}

TEST(ProcessStatsTest, OpenFdCountTracksNewDescriptors) {
  const ProcessStats before = read_process_stats();
  int fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(fds), 0);
  const ProcessStats during = read_process_stats();
  ::close(fds[0]);
  ::close(fds[1]);
  const ProcessStats after = read_process_stats();
  EXPECT_GE(during.open_fds, before.open_fds + 2.0);
  EXPECT_LE(after.open_fds, during.open_fds - 2.0);
}

TEST(ProcessStatsTest, SamplerRegistersAndRefreshesGauges) {
  MetricRegistry reg;
  ProcessSampler sampler(reg, "proc");
  // Gauges exist immediately but hold zero until the first sample.
  EXPECT_DOUBLE_EQ(reg.gauge("proc.rss_bytes").value(), 0.0);
  const ProcessStats stats = sampler.sample();
  EXPECT_DOUBLE_EQ(reg.gauge("proc.rss_bytes").value(), stats.rss_bytes);
  EXPECT_DOUBLE_EQ(reg.gauge("proc.open_fds").value(), stats.open_fds);
  EXPECT_DOUBLE_EQ(reg.gauge("proc.uptime_s").value(), stats.uptime_s);
  EXPECT_GT(stats.rss_bytes, 0.0);
}

TEST(ProcessStatsTest, SamplerHonorsPrefix) {
  MetricRegistry reg;
  ProcessSampler sampler(reg, "myproc");
  sampler.sample();
  EXPECT_GT(reg.gauge("myproc.rss_bytes").value(), 0.0);
}

}  // namespace
}  // namespace moldsched::obs
