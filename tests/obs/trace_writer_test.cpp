#include "moldsched/obs/trace_writer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace moldsched::obs {
namespace {

/// A small but representative trace: engine process with a named worker
/// lane, one sim process, spans, an instant, and a counter track. All
/// timestamps are explicit so the document is fully deterministic.
void fill(TraceWriter& w) {
  w.set_process_name(TraceWriter::kEnginePid, "engine");
  w.set_thread_name(TraceWriter::kEnginePid, 0, "worker 0");
  const int sim_pid = w.new_process("sim adversary/P=4");
  w.set_thread_name(sim_pid, 0, "proc 0");
  w.complete_span(TraceWriter::kEnginePid, 0, "job adversary/P=4", "engine",
                  10.0, 500.0, {{"status", "ok"}, {"queue_ms", "0.25"}});
  w.instant(TraceWriter::kEnginePid, 0, "steal", "engine", 12.0,
            {{"victim", "1"}});
  w.complete_span(sim_pid, 0, "task 0", "sim", 0.0, 4e6,
                  {{"task", "0"}, {"procs", "2"}});
  w.counter(sim_pid, "ready queue", 0.0, {{"depth", 3.0}});
  w.counter(sim_pid, "ready queue", 4e6, {{"depth", 0.0}});
}

TEST(TraceWriterTest, RoundTripThroughStrictValidator) {
  TraceWriter w;
  fill(w);
  const std::string json = w.to_json();
  TraceStats stats;
  const auto problem = validate_chrome_trace(json, &stats);
  EXPECT_FALSE(problem.has_value()) << *problem;
  EXPECT_EQ(stats.events, w.num_events());
  EXPECT_EQ(stats.spans, 2u);
  EXPECT_EQ(stats.instants, 1u);
  EXPECT_EQ(stats.counter_samples, 2u);
  EXPECT_EQ(stats.metadata, 4u);  // 2 process names + 2 thread names
  ASSERT_EQ(stats.pids.size(), 2u);
  EXPECT_EQ(stats.pids[0], TraceWriter::kEnginePid);
  EXPECT_GT(stats.pids[1], TraceWriter::kEnginePid);
}

TEST(TraceWriterTest, OutputIsDeterministic) {
  TraceWriter a;
  TraceWriter b;
  fill(a);
  fill(b);
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(TraceWriterTest, MetadataSortsFirstThenTimestamp) {
  TraceWriter w;
  // Inserted in "wrong" order: a late span, then an early span, then the
  // process name. Export must put metadata first and sort spans by ts.
  w.complete_span(1, 0, "late", "c", 100.0, 1.0);
  w.complete_span(1, 0, "early", "c", 5.0, 1.0);
  w.set_process_name(1, "p");
  const std::string json = w.to_json();
  const auto meta = json.find("process_name");
  const auto early = json.find("\"early\"");
  const auto late = json.find("\"late\"");
  ASSERT_NE(meta, std::string::npos);
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(meta, early);
  EXPECT_LT(early, late);
}

TEST(TraceWriterTest, NumericArgsAreUnquoted) {
  TraceWriter w;
  w.complete_span(1, 0, "s", "c", 0.0, 1.0,
                  {{"procs", "4"}, {"status", "ok"}});
  const std::string json = w.to_json();
  EXPECT_NE(json.find("\"procs\":4"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
}

TEST(TraceWriterTest, MetadataIsIdempotentPerTarget) {
  TraceWriter w;
  w.set_process_name(1, "engine");
  w.set_process_name(1, "renamed");  // dropped
  w.set_thread_name(1, 0, "worker 0");
  w.set_thread_name(1, 0, "renamed");  // dropped
  w.set_thread_name(1, 1, "worker 1");
  EXPECT_EQ(w.num_events(), 3u);
  EXPECT_EQ(w.to_json().find("renamed"), std::string::npos);
}

TEST(TraceWriterTest, NewProcessAllocatesDistinctPids) {
  TraceWriter w;
  const int a = w.new_process("a");
  const int b = w.new_process("b");
  EXPECT_GT(a, TraceWriter::kEnginePid);
  EXPECT_NE(a, b);
  EXPECT_EQ(w.num_events(), 2u);  // the two process_name records
}

TEST(TraceWriterTest, EmptyWriterStillValidates) {
  TraceWriter w;
  TraceStats stats;
  const auto problem = validate_chrome_trace(w.to_json(), &stats);
  EXPECT_FALSE(problem.has_value()) << *problem;
  EXPECT_EQ(stats.events, 0u);
}

TEST(TraceWriterTest, WriteFileCreatesParentDirectories) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "moldsched_trace_writer_test";
  std::filesystem::remove_all(dir);
  const auto path = dir / "nested" / "trace.json";
  TraceWriter w;
  fill(w);
  w.write_file(path.string());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), w.to_json());
  EXPECT_FALSE(validate_chrome_trace(buf.str()).has_value());
  std::filesystem::remove_all(dir);
}

TEST(TraceWriterTest, GlobalTracerSlotSetAndClear) {
  EXPECT_EQ(global_tracer(), nullptr);
  TraceWriter w;
  set_global_tracer(&w);
  EXPECT_EQ(global_tracer(), &w);
  set_global_tracer(nullptr);
  EXPECT_EQ(global_tracer(), nullptr);
}

TEST(TraceWriterTest, NowUsIsMonotonicFromConstruction) {
  TraceWriter w;
  const double a = w.now_us();
  const double b = w.now_us();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(ValidateChromeTraceTest, RejectsMalformedDocuments) {
  // Each entry: (document, reason it must be rejected).
  const char* const bad[] = {
      "",                                              // empty input
      "{",                                             // truncated
      "[]",                                            // top level not object
      "{\"traceEvents\":{}}",                          // events not an array
      "{\"noEvents\":[]}",                             // missing key
      "{\"traceEvents\":[]} garbage",                  // trailing garbage
      "{\"traceEvents\":[42]}",                        // event not an object
      "{\"traceEvents\":[{\"pid\":1,\"tid\":0,\"name\":\"x\",\"ts\":0}]}",
      // ^ missing "ph"
      "{\"traceEvents\":[{\"ph\":\"Z\",\"pid\":1,\"tid\":0,"
      "\"name\":\"x\",\"ts\":0}]}",                    // unknown phase
      "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1,\"tid\":0,"
      "\"ts\":0,\"dur\":1}]}",                         // missing name
      "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":\"1\",\"tid\":0,"
      "\"name\":\"x\",\"ts\":0,\"dur\":1}]}",          // pid not numeric
      "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1,\"tid\":0,"
      "\"name\":\"x\",\"dur\":1}]}",                   // span without ts
      "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1,\"tid\":0,"
      "\"name\":\"x\",\"ts\":0}]}",                    // span without dur
      "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1,\"tid\":0,"
      "\"name\":\"x\",\"ts\":-1,\"dur\":1}]}",         // negative ts
      "{\"traceEvents\":[{\"ph\":\"C\",\"pid\":1,\"tid\":0,"
      "\"name\":\"x\",\"ts\":0}]}",                    // counter without args
      "{\"traceEvents\":[{\"ph\":\"C\",\"pid\":1,\"tid\":0,"
      "\"name\":\"x\",\"ts\":0,\"args\":{\"v\":\"high\"}}]}",
      // ^ counter series not numeric
      "{\"traceEvents\":[{bad json}]}",                // unquoted keys
  };
  for (const char* doc : bad)
    EXPECT_TRUE(validate_chrome_trace(doc).has_value())
        << "accepted: " << doc;
}

TEST(ValidateChromeTraceTest, AcceptsMinimalHandWrittenDocument) {
  const std::string doc =
      "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":2,\"tid\":3,"
      "\"name\":\"t\",\"cat\":\"sim\",\"ts\":1.5,\"dur\":2e3,"
      "\"args\":{\"task\":7}}]}";
  TraceStats stats;
  const auto problem = validate_chrome_trace(doc, &stats);
  EXPECT_FALSE(problem.has_value()) << *problem;
  EXPECT_EQ(stats.events, 1u);
  EXPECT_EQ(stats.spans, 1u);
  ASSERT_EQ(stats.pids.size(), 1u);
  EXPECT_EQ(stats.pids[0], 2);
}

}  // namespace
}  // namespace moldsched::obs
