#include "moldsched/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace moldsched::obs {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddRecordMax) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.record_max(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.record_max(3.0);  // smaller: no effect
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketPlacement) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (bounds are inclusive upper limits)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // +inf bucket
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1006.5 / 4.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(HistogramTest, ConcurrentObservesAreLossless) {
  Histogram h(Histogram::default_time_bounds());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(static_cast<double>(t));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_total = 0;
  for (const auto n : h.bucket_counts()) bucket_total += n;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(HistogramTest, LogBoundsAreGeometric) {
  const auto bounds = Histogram::log_bounds(1e-3, 1e3, 12);
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-3);
  EXPECT_GE(bounds.back(), 1e3);
  // Adjacent bounds differ by the constant factor 10^(1/per_decade).
  const double step = std::pow(10.0, 1.0 / 12.0);
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_NEAR(bounds[i] / bounds[i - 1], step, 1e-9) << "at " << i;
  // Strictly increasing, as Histogram's constructor requires.
  EXPECT_NO_THROW(Histogram h(bounds));
}

TEST(HistogramTest, LogBoundsRejectBadArguments) {
  EXPECT_THROW(Histogram::log_bounds(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Histogram::log_bounds(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Histogram::log_bounds(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Histogram::log_bounds(1.0, 2.0, 0), std::invalid_argument);
}

TEST(HistogramTest, DefaultLatencyBoundsCoverMicrosecondsToMinutes) {
  const auto& bounds = Histogram::default_latency_bounds();
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-3);  // 1 us in ms
  EXPECT_GE(bounds.back(), 6e4);           // 60 s in ms
  EXPECT_EQ(&bounds, &Histogram::default_latency_bounds());  // cached
}

/// Exact nearest-rank quantile on a sorted sample: the smallest value
/// with rank >= ceil(q * n).
double exact_nearest_rank(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  const auto rank =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(q * n)));
  return sorted[std::min(rank, sorted.size()) - 1];
}

TEST(HistogramTest, QuantileTracksExactNearestRankWithinOneBucket) {
  Histogram h(Histogram::log_bounds(1e-3, 1e4, 24));
  std::vector<double> samples;
  // A latency-shaped sample: dense bulk, sparse heavy tail.
  for (int i = 1; i <= 900; ++i)
    samples.push_back(0.05 + 0.001 * static_cast<double>(i));
  for (int i = 1; i <= 99; ++i)
    samples.push_back(2.0 + 0.1 * static_cast<double>(i));
  samples.push_back(500.0);
  for (const double v : samples) h.observe(v);

  const double step = std::pow(10.0, 1.0 / 24.0);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    const double exact = exact_nearest_rank(samples, q);
    const double est = h.quantile(q);
    EXPECT_LE(est, exact * step + 1e-12) << "q=" << q;
    EXPECT_GE(est, exact / step - 1e-12) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileClampsToTrackedMinMax) {
  Histogram h({1.0, 10.0, 100.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  h.observe(7.0);
  // One sample: every quantile is that sample, not a bucket bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.0);
  // +inf bucket: the tracked max stands in for the missing bound.
  h.observe(5000.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5000.0);
  // Out-of-range q clamps to [0, 1] instead of throwing.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(HistogramTest, SampleQuantileMatchesLiveQuantile) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("lat", Histogram::log_bounds(1e-3, 1e3, 24));
  for (int i = 1; i <= 1000; ++i) h.observe(0.01 * static_cast<double>(i));
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  for (const double q : {0.5, 0.9, 0.99})
    EXPECT_DOUBLE_EQ(sample_quantile(samples[0], q), h.quantile(q));
  // Non-histogram samples answer 0.
  MetricSample counter_sample;
  counter_sample.kind = MetricSample::Kind::kCounter;
  EXPECT_DOUBLE_EQ(sample_quantile(counter_sample, 0.5), 0.0);
}

TEST(HistogramTest, ConcurrentMinMaxStress) {
  // Pins the atomic<double> CAS loops for min_/max_: many threads racing
  // observes across a wide value range must converge to the exact
  // extremes, with count intact. Runs under TSan in CI.
  Histogram h(Histogram::log_bounds(1e-3, 1e3, 24));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Per-thread interleaved ramps, so every thread contends on
        // both extremes as they tighten.
        const double v = 0.001 * static_cast<double>(1 + i) *
                         static_cast<double>(1 + t);
        h.observe(v);
        h.observe(1000.0 - v);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(2 * kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0 - 0.001);
}

TEST(MetricRegistryTest, RegistrationIsIdempotent) {
  MetricRegistry reg;
  Counter& a = reg.counter("jobs");
  Counter& b = reg.counter("jobs");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = reg.histogram("latency", {1.0, 2.0});
  Histogram& h2 = reg.histogram("latency");  // bounds ignored on re-lookup
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(MetricRegistryTest, TypeMismatchThrows) {
  MetricRegistry reg;
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("x"), std::invalid_argument);
}

TEST(MetricRegistryTest, ConcurrentRegistrationAndUse) {
  MetricRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) {
        reg.counter("shared.counter").add();
        reg.gauge("shared.gauge").record_max(static_cast<double>(i));
        reg.histogram("shared.hist").observe(1.0);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("shared.counter").value(), 8000u);
  EXPECT_DOUBLE_EQ(reg.gauge("shared.gauge").value(), 999.0);
  EXPECT_EQ(reg.histogram("shared.hist").count(), 8000u);
}

TEST(MetricRegistryTest, SnapshotIsNameSorted) {
  MetricRegistry reg;
  reg.counter("zeta").add(1);
  reg.gauge("alpha").set(3.0);
  reg.histogram("mid").observe(1.0);
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(samples[1].name, "mid");
  EXPECT_EQ(samples[2].name, "zeta");
  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(samples[2].kind, MetricSample::Kind::kCounter);
  EXPECT_DOUBLE_EQ(samples[2].value, 1.0);
}

TEST(MetricRegistryTest, ToJsonHasAllSectionsAndValues) {
  MetricRegistry reg;
  reg.counter("events").add(7);
  reg.gauge("depth").set(2.5);
  reg.histogram("wait", {1.0}).observe(0.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"events\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [1,0]"), std::string::npos);
  // Identical registries serialize identically (determinism).
  EXPECT_EQ(json, reg.to_json());
}

TEST(MetricRegistryTest, ToJsonEscapesMetricNames) {
  MetricRegistry reg;
  reg.counter("weird\"name\\with\nescapes").add(1);
  reg.gauge(std::string("nul") + '\x01' + "byte").set(1.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"weird\\\"name\\\\with\\nescapes\": 1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"nul\\u0001byte\": 1"), std::string::npos) << json;
  // No raw quote/backslash/control char survives inside a key.
  EXPECT_EQ(json.find("weird\"name"), std::string::npos);
  EXPECT_EQ(json.find('\x01'), std::string::npos);
}

TEST(MetricRegistryTest, ToJsonDuplicateRegistrationRendersOnce) {
  MetricRegistry reg;
  reg.counter("dup").add(1);
  reg.counter("dup").add(2);  // same instrument, not a second entry
  const std::string json = reg.to_json();
  std::size_t occurrences = 0;
  for (std::size_t pos = json.find("\"dup\""); pos != std::string::npos;
       pos = json.find("\"dup\"", pos + 1))
    ++occurrences;
  EXPECT_EQ(occurrences, 1u);
  EXPECT_NE(json.find("\"dup\": 3"), std::string::npos) << json;
}

TEST(MetricRegistryTest, ToJsonOmitsMinMaxForEmptyHistogram) {
  MetricRegistry reg;
  (void)reg.histogram("empty", {1.0, 2.0});
  const std::string json = reg.to_json();
  // An empty histogram's min/max are +inf/-inf — not representable in
  // JSON — so the fields are omitted rather than emitted as garbage.
  EXPECT_EQ(json.find("\"min\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"max\""), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos) << json;
  reg.histogram("empty").observe(1.5);
  const std::string populated = reg.to_json();
  EXPECT_NE(populated.find("\"min\": 1.5"), std::string::npos) << populated;
  EXPECT_NE(populated.find("\"max\": 1.5"), std::string::npos) << populated;
}

TEST(MetricRegistryTest, ResetZeroesWithoutInvalidatingReferences) {
  MetricRegistry reg;
  Counter& c = reg.counter("n");
  c.add(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);  // the reference handed out earlier is still live
  EXPECT_EQ(reg.counter("n").value(), 1u);
}

TEST(MetricsCollectionFlagTest, ArmsAndDisarms) {
  EXPECT_FALSE(metrics_collection_enabled());
  set_metrics_collection(true);
  EXPECT_TRUE(metrics_collection_enabled());
  set_metrics_collection(false);
  EXPECT_FALSE(metrics_collection_enabled());
}

}  // namespace
}  // namespace moldsched::obs
