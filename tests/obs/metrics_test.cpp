#include "moldsched/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace moldsched::obs {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddRecordMax) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.record_max(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.record_max(3.0);  // smaller: no effect
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketPlacement) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (bounds are inclusive upper limits)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // +inf bucket
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1006.5 / 4.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(HistogramTest, ConcurrentObservesAreLossless) {
  Histogram h(Histogram::default_time_bounds());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(static_cast<double>(t));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_total = 0;
  for (const auto n : h.bucket_counts()) bucket_total += n;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(MetricRegistryTest, RegistrationIsIdempotent) {
  MetricRegistry reg;
  Counter& a = reg.counter("jobs");
  Counter& b = reg.counter("jobs");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = reg.histogram("latency", {1.0, 2.0});
  Histogram& h2 = reg.histogram("latency");  // bounds ignored on re-lookup
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(MetricRegistryTest, TypeMismatchThrows) {
  MetricRegistry reg;
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("x"), std::invalid_argument);
}

TEST(MetricRegistryTest, ConcurrentRegistrationAndUse) {
  MetricRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) {
        reg.counter("shared.counter").add();
        reg.gauge("shared.gauge").record_max(static_cast<double>(i));
        reg.histogram("shared.hist").observe(1.0);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("shared.counter").value(), 8000u);
  EXPECT_DOUBLE_EQ(reg.gauge("shared.gauge").value(), 999.0);
  EXPECT_EQ(reg.histogram("shared.hist").count(), 8000u);
}

TEST(MetricRegistryTest, SnapshotIsNameSorted) {
  MetricRegistry reg;
  reg.counter("zeta").add(1);
  reg.gauge("alpha").set(3.0);
  reg.histogram("mid").observe(1.0);
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(samples[1].name, "mid");
  EXPECT_EQ(samples[2].name, "zeta");
  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(samples[2].kind, MetricSample::Kind::kCounter);
  EXPECT_DOUBLE_EQ(samples[2].value, 1.0);
}

TEST(MetricRegistryTest, ToJsonHasAllSectionsAndValues) {
  MetricRegistry reg;
  reg.counter("events").add(7);
  reg.gauge("depth").set(2.5);
  reg.histogram("wait", {1.0}).observe(0.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"events\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [1,0]"), std::string::npos);
  // Identical registries serialize identically (determinism).
  EXPECT_EQ(json, reg.to_json());
}

TEST(MetricRegistryTest, ResetZeroesWithoutInvalidatingReferences) {
  MetricRegistry reg;
  Counter& c = reg.counter("n");
  c.add(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);  // the reference handed out earlier is still live
  EXPECT_EQ(reg.counter("n").value(), 1u);
}

TEST(MetricsCollectionFlagTest, ArmsAndDisarms) {
  EXPECT_FALSE(metrics_collection_enabled());
  set_metrics_collection(true);
  EXPECT_TRUE(metrics_collection_enabled());
  set_metrics_collection(false);
  EXPECT_FALSE(metrics_collection_enabled());
}

}  // namespace
}  // namespace moldsched::obs
