#include "moldsched/obs/span.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace moldsched::obs {
namespace {

RequestSpan make_span(std::uint64_t id, const std::string& session,
                      const std::string& op) {
  RequestSpan span;
  span.request_id = id;
  span.seq = static_cast<std::int64_t>(id);
  span.session = session;
  span.op = op;
  span.outcome = "ok";
  span.start_us = 100.0 * static_cast<double>(id);
  span.queue_us = 5.0;
  span.parse_us = 2.0;
  span.schedule_us = 20.0;
  span.serialize_us = 3.0;
  span.write_us = 1.0;
  span.total_us = 40.0;  // phases sum to 31 <= 40
  return span;
}

TEST(TraceSpanObserverTest, ProducesValidChromeTrace) {
  TraceWriter writer;
  TraceSpanObserver obs(writer, "svc requests");
  obs.on_request(make_span(1, "s1", "session.open"));
  obs.on_request(make_span(2, "s1", "task.release"));
  obs.on_request(make_span(3, "s2", "session.open"));

  TraceStats stats;
  const auto err = validate_chrome_trace(writer.to_json(), &stats);
  EXPECT_FALSE(err.has_value()) << *err;
  // Per request: 1 request span + 5 non-zero phase children.
  EXPECT_EQ(stats.spans, 3u * 6u);
  EXPECT_GE(stats.metadata, 3u);  // process name + two session lanes
}

TEST(TraceSpanObserverTest, SessionsGetStableDistinctLanes) {
  TraceWriter writer;
  TraceSpanObserver obs(writer);
  obs.on_request(make_span(1, "s1", "session.open"));
  obs.on_request(make_span(2, "s2", "session.open"));
  obs.on_request(make_span(3, "s1", "task.release"));
  obs.on_request(make_span(4, "", "bogus.op"));  // no-session lane

  const std::string json = writer.to_json();
  // Three lanes named after the session ids (plus the no-session lane);
  // thread_name metadata is idempotent, so "s1" appears exactly once.
  EXPECT_NE(json.find("\"s1\""), std::string::npos);
  EXPECT_NE(json.find("\"s2\""), std::string::npos);
  EXPECT_NE(json.find("\"(no session)\""), std::string::npos);
  EXPECT_EQ(json.find("\"s1\""), json.rfind("\"s1\""));
}

TEST(TraceSpanObserverTest, RequestSpanCarriesIdsAndPhaseArgs) {
  TraceWriter writer;
  TraceSpanObserver obs(writer);
  RequestSpan span = make_span(7, "s3", "task.release");
  span.trace_id = "bench-w4";
  span.outcome = "bad_request";
  obs.on_request(span);

  const std::string json = writer.to_json();
  EXPECT_NE(json.find("\"trace_id\":\"bench-w4\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"outcome\":\"bad_request\""), std::string::npos);
  EXPECT_NE(json.find("\"request_id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"schedule_us\":20.000"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"svc.request\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"svc.phase\""), std::string::npos);
}

TEST(TraceSpanObserverTest, ZeroPhasesEmitNoChildSpans) {
  TraceWriter writer;
  TraceSpanObserver obs(writer);
  RequestSpan span;
  span.request_id = 1;
  span.op = "session.open";
  span.outcome = "ok";
  span.total_us = 10.0;
  span.queue_us = 10.0;  // only one non-zero phase
  obs.on_request(span);

  TraceStats stats;
  ASSERT_FALSE(validate_chrome_trace(writer.to_json(), &stats).has_value());
  EXPECT_EQ(stats.spans, 2u);  // request + queue child only
}

TEST(TraceSpanObserverTest, PhaseChildrenNestInsideParent) {
  TraceWriter writer;
  TraceSpanObserver obs(writer);
  const RequestSpan span = make_span(1, "s1", "session.open");
  obs.on_request(span);

  // Recompute the expected cursor layout and check each child's
  // [ts, ts+dur] stays within the parent's interval.
  const double parent_end = span.start_us + span.total_us;
  double cursor = span.start_us;
  for (const double dur : {span.queue_us, span.parse_us, span.schedule_us,
                           span.serialize_us, span.write_us}) {
    EXPECT_GE(cursor, span.start_us);
    EXPECT_LE(cursor + dur, parent_end);
    cursor += dur;
  }
}

TEST(TraceSpanObserverTest, ConcurrentObserversStayValid) {
  TraceWriter writer;
  TraceSpanObserver obs(writer);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&obs, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto id =
            static_cast<std::uint64_t>(t * kPerThread + i + 1);
        obs.on_request(
            make_span(id, "s" + std::to_string(t % 2 + 1), "task.release"));
      }
    });
  }
  for (auto& th : threads) th.join();

  TraceStats stats;
  const auto err = validate_chrome_trace(writer.to_json(), &stats);
  EXPECT_FALSE(err.has_value()) << *err;
  EXPECT_EQ(stats.spans, static_cast<std::size_t>(kThreads * kPerThread * 6));
}

TEST(SpanObserverTest, DefaultObserverDropsSpans) {
  SpanObserver null_obs;
  null_obs.on_request(make_span(1, "s1", "session.open"));  // must not crash
}

}  // namespace
}  // namespace moldsched::obs
