// The differential self-check harness: on healthy code it must pass
// over the whole shared corpus, and it must actually catch a
// behavior-diverging allocator (otherwise it guards nothing).
#include "moldsched/check/differential.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "moldsched/check/corpus.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::check {
namespace {

graph::TaskGraph small_chain() {
  graph::TaskGraph g;
  const auto a = g.add_task(std::make_shared<model::AmdahlModel>(8.0, 1.0), "a");
  const auto b = g.add_task(std::make_shared<model::AmdahlModel>(6.0, 0.5), "b");
  const auto c = g.add_task(std::make_shared<model::AmdahlModel>(4.0, 2.0), "c");
  g.add_edge(a, b);
  g.add_edge(b, c);
  return g;
}

TEST(CanonicalScheduleTest, IsBitExactAndDiscriminating) {
  const auto g = small_chain();
  const core::LpaAllocator lpa(0.25);
  const auto r1 = core::schedule_online(g, 8, lpa);
  const auto r2 = core::schedule_online(g, 8, lpa);
  EXPECT_EQ(canonical_schedule(r1), canonical_schedule(r2));
  // A different platform size yields a genuinely different schedule.
  const auto r3 = core::schedule_online(g, 2, lpa);
  EXPECT_NE(canonical_schedule(r1), canonical_schedule(r3));
  // Canonical form mentions every task once in its records.
  const auto canon = canonical_schedule(r1);
  EXPECT_NE(canon.find("makespan"), std::string::npos);
}

TEST(DifferentialCheckTest, PassesOnASimpleChain) {
  const auto report = differential_check(small_chain(), 8, 0.25);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.makespan, 0.0);
  EXPECT_GE(report.makespan, report.lower_bound * (1.0 - 1e-9));
  // Three tasks, all cacheable: the cold pass misses three times and
  // the warm pass serves three hits.
  EXPECT_EQ(report.cache_misses, 3u);
  EXPECT_EQ(report.cache_hits, 3u);
}

TEST(DifferentialCheckTest, PassesAcrossTheWholeCorpus) {
  util::Rng rng(2022);
  for (int i = 0; i < 25; ++i) {
    auto inst = corpus_instance(rng);
    const auto report =
        differential_check(inst.graph, inst.P, inst.mu, inst.policy);
    EXPECT_TRUE(report.ok())
        << "family=" << corpus_families()[static_cast<std::size_t>(inst.family)]
        << " P=" << inst.P << " mu=" << inst.mu << '\n'
        << report.to_string();
  }
}

/// Deliberately broken reference: answers drift over repeated calls, so
/// the reference pass and the caching passes cannot agree.
class DriftingAllocator final : public core::Allocator {
 public:
  [[nodiscard]] int allocate(const model::SpeedupModel& m,
                             int P) const override {
    ++calls_;
    const int p_max = m.max_useful_procs(P);
    return 1 + static_cast<int>(calls_ % 2) % p_max;
  }
  [[nodiscard]] std::string name() const override { return "drifting"; }

 private:
  mutable long calls_ = 0;
};

TEST(DifferentialCheckTest, CatchesANonDeterministicAllocator) {
  const auto report = differential_check(small_chain(), 8, DriftingAllocator());
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.to_string().empty());
}

TEST(DifferentialReportTest, ToStringSummarizesOutcome) {
  DifferentialReport report;
  report.makespan = 3.0;
  report.lower_bound = 2.0;
  EXPECT_NE(report.to_string().find("ok"), std::string::npos);
  report.mismatches.push_back("cold pass diverged");
  EXPECT_NE(report.to_string().find("cold pass diverged"), std::string::npos);
}

}  // namespace
}  // namespace moldsched::check
