// The wire differential: streamed sessions must be byte-identical to
// in-process runs across the shared corpus, and the topological relabel
// that makes non-streamable families streamable must be exact.
#include "moldsched/check/wire_check.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "moldsched/check/corpus.hpp"
#include "moldsched/check/differential.hpp"
#include "moldsched/graph/adversary.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/util/rng.hpp"

namespace {

using namespace moldsched;

TEST(MinIdTopologicalOrder, IdentityWhenIdOrderIsTopological) {
  graph::TaskGraph g;
  for (int i = 0; i < 6; ++i)
    g.add_task(std::make_shared<model::AmdahlModel>(2.0, 0.5));
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 5);
  g.add_edge(3, 4);
  const auto order = check::min_id_topological_order(g);
  std::vector<graph::TaskId> identity(6);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_EQ(order, identity);
}

TEST(MinIdTopologicalOrder, PicksSmallestReadyIdFirst) {
  // Edges 3->0 and 2->1: ids are not topological. The stable order
  // schedules the smallest ready id at every step: 2, 1, 3, 0.
  graph::TaskGraph g;
  for (int i = 0; i < 4; ++i)
    g.add_task(std::make_shared<model::AmdahlModel>(1.0, 0.1));
  g.add_edge(3, 0);
  g.add_edge(2, 1);
  const auto order = check::min_id_topological_order(g);
  EXPECT_EQ(order, (std::vector<graph::TaskId>{2, 1, 3, 0}));
}

TEST(RelabelTopological, EveryEdgePointsForwardAfterRelabel) {
  util::Rng rng(11);
  const auto provider = graph::sampling_provider(
      model::ModelSampler(model::ModelKind::kGeneral), rng, 32);
  const graph::TaskGraph g = graph::random_in_tree(40, 3, rng, provider);
  const graph::TaskGraph relabeled = check::relabel_topological(g);
  ASSERT_EQ(relabeled.num_tasks(), g.num_tasks());
  EXPECT_EQ(relabeled.num_edges(), g.num_edges());
  for (graph::TaskId v = 0; v < relabeled.num_tasks(); ++v)
    for (const graph::TaskId u : relabeled.predecessors(v)) EXPECT_LT(u, v);
  // Relabeling permutes ids, it does not change the schedule's makespan:
  // the instance is the same multiset of (model, precedence) pairs.
  sched::SchedulerSpec spec = sched::spec_by_name("lpa", 0.25);
  EXPECT_EQ(spec.run(g, 32).makespan, spec.run(relabeled, 32).makespan);
}

TEST(RelabelTopological, ThrowsOnCycle) {
  graph::TaskGraph g;
  for (int i = 0; i < 2; ++i)
    g.add_task(std::make_shared<model::AmdahlModel>(1.0, 0.1));
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW((void)check::min_id_topological_order(g),
               std::invalid_argument);
  EXPECT_THROW((void)check::relabel_topological(g), std::invalid_argument);
}

TEST(WireRoundtripCheck, PassesAcrossTheCorpus) {
  util::Rng rng(2024);
  bool saw_relabeled = false;
  for (int i = 0; i < 30; ++i) {
    const auto inst = check::corpus_instance(rng);
    const auto report = check::wire_roundtrip_check(inst.graph, inst.P,
                                                    inst.mu, inst.policy);
    EXPECT_TRUE(report.ok())
        << "seed-indexed instance " << i << ": " << report.to_string();
    EXPECT_EQ(report.num_tasks, inst.graph.num_tasks());
    saw_relabeled = saw_relabeled || report.relabeled;
  }
  // The sweep must have exercised the relabel path (the in-tree family
  // points edges from larger to smaller ids).
  EXPECT_TRUE(saw_relabeled);
}

TEST(WireRoundtripCheck, PassesOnAdversariesForEveryWireScheduler) {
  const auto inst = graph::communication_adversary(8, 0.25);
  for (const std::string scheduler : {"lpa", "improved-lpa"}) {
    const auto report = check::wire_roundtrip_check(
        inst.graph, inst.P, scheduler, inst.mu, core::QueuePolicy::kFifo);
    EXPECT_TRUE(report.ok()) << scheduler << ": " << report.to_string();
    EXPECT_FALSE(report.relabeled);
    EXPECT_GT(report.makespan, 0.0);
  }
}

TEST(WireRoundtripCheck, ReportFormatsMismatches) {
  check::WireCheckReport report;
  EXPECT_TRUE(report.ok());
  EXPECT_NE(report.to_string().find("ok"), std::string::npos);
  report.mismatches.push_back("graph re-encode diverged");
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("graph re-encode diverged"),
            std::string::npos);
}

}  // namespace
