// ddmin-style shrinking of failing fuzz / self-check instances: the
// result must still fail, must be 1-minimal with respect to task and
// edge removal, and the helpers must renumber subgraphs correctly.
#include "moldsched/check/shrink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "moldsched/check/corpus.hpp"
#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::check {
namespace {

/// Diamond a -> {b, c} -> d with distinguishable sequential times.
graph::TaskGraph diamond() {
  graph::TaskGraph g;
  const auto a = g.add_task(
      std::make_shared<model::TableModel>(std::vector<double>{1.0}), "a");
  const auto b = g.add_task(
      std::make_shared<model::TableModel>(std::vector<double>{2.0}), "b");
  const auto c = g.add_task(
      std::make_shared<model::TableModel>(std::vector<double>{3.0}), "c");
  const auto d = g.add_task(
      std::make_shared<model::TableModel>(std::vector<double>{4.0}), "d");
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  return g;
}

TEST(InducedSubgraphTest, RenumbersAndKeepsInternalEdges) {
  const auto g = diamond();
  // Keep {a, c, d} (out of order, with a duplicate): new ids 0, 1, 2.
  const auto sub = induced_subgraph(g, {3, 0, 2, 0});
  ASSERT_EQ(sub.num_tasks(), 3);
  EXPECT_DOUBLE_EQ(sub.model_of(0).time(1), 1.0);  // a
  EXPECT_DOUBLE_EQ(sub.model_of(1).time(1), 3.0);  // c
  EXPECT_DOUBLE_EQ(sub.model_of(2).time(1), 4.0);  // d
  EXPECT_EQ(sub.num_edges(), 2u);  // a->c, c->d survive; b's edges die
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 2));
}

TEST(InducedSubgraphTest, RejectsEmptyAndUnknownSelections) {
  const auto g = diamond();
  EXPECT_THROW((void)induced_subgraph(g, {}), std::invalid_argument);
  EXPECT_THROW((void)induced_subgraph(g, {0, 99}), std::invalid_argument);
}

TEST(WithoutEdgeTest, RemovesExactlyOneEdge) {
  const auto g = diamond();
  const auto cut = without_edge(g, 0, 2);
  EXPECT_EQ(cut.num_tasks(), 4);
  EXPECT_EQ(cut.num_edges(), 3u);
  EXPECT_FALSE(cut.has_edge(0, 2));
  EXPECT_TRUE(cut.has_edge(0, 1));
  EXPECT_THROW((void)without_edge(g, 1, 2), std::invalid_argument);
}

TEST(ShrinkTest, ReducesToTheSingleOffendingTask) {
  // A 40-task chain where exactly one task carries the "bug" marker
  // (sequential time 13): the minimal failing instance is that task
  // alone.
  graph::TaskGraph g;
  for (int i = 0; i < 40; ++i) {
    const double t = i == 23 ? 13.0 : 1.0;
    const auto v = g.add_task(
        std::make_shared<model::TableModel>(std::vector<double>{t}));
    if (i > 0) g.add_edge(v - 1, v);
  }
  const FailurePredicate marker = [](const graph::TaskGraph& gg) {
    for (graph::TaskId v = 0; v < gg.num_tasks(); ++v)
      if (gg.model_of(v).time(1) == 13.0) return true;
    return false;
  };

  const auto r = shrink_instance(g, marker);
  EXPECT_EQ(r.graph.num_tasks(), 1);
  EXPECT_EQ(r.graph.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(r.graph.model_of(0).time(1), 13.0);
  EXPECT_EQ(r.tasks_removed, 39);
  EXPECT_GT(r.predicate_calls, 0);
}

TEST(ShrinkTest, DropsEdgesTheFailureDoesNotNeed) {
  const auto g = diamond();
  // Failure depends only on tasks b and c coexisting, not on any edge.
  const FailurePredicate needs_bc = [](const graph::TaskGraph& gg) {
    bool b = false;
    bool c = false;
    for (graph::TaskId v = 0; v < gg.num_tasks(); ++v) {
      if (gg.model_of(v).time(1) == 2.0) b = true;
      if (gg.model_of(v).time(1) == 3.0) c = true;
    }
    return b && c;
  };
  const auto r = shrink_instance(g, needs_bc);
  EXPECT_EQ(r.graph.num_tasks(), 2);
  EXPECT_EQ(r.graph.num_edges(), 0u);
  EXPECT_EQ(r.tasks_removed, 2);
}

TEST(ShrinkTest, SimplifiesModelParameters) {
  // The failure only needs some task: shrinking should also simplify
  // the surviving Eq. (1) model toward unit parameters.
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::AmdahlModel>(77.25, 3.5), "t");
  const FailurePredicate any = [](const graph::TaskGraph& gg) {
    return gg.num_tasks() >= 1;
  };
  const auto r = shrink_instance(g, any);
  EXPECT_EQ(r.graph.num_tasks(), 1);
  EXPECT_GT(r.models_simplified, 0);
}

TEST(ShrinkTest, RequiresAFailingInput) {
  const FailurePredicate never = [](const graph::TaskGraph&) { return false; };
  EXPECT_THROW((void)shrink_instance(diamond(), never), std::invalid_argument);
}

TEST(ShrinkTest, IsDeterministic) {
  util::Rng rng(5);
  const auto g = corpus_graph(1, model::ModelKind::kGeneral, rng, 16);
  const FailurePredicate big = [](const graph::TaskGraph& gg) {
    return gg.num_tasks() >= 3;
  };
  if (!big(g)) GTEST_SKIP() << "corpus draw too small for this seed";
  const auto r1 = shrink_instance(g, big);
  const auto r2 = shrink_instance(g, big);
  EXPECT_EQ(r1.graph.num_tasks(), r2.graph.num_tasks());
  EXPECT_EQ(r1.graph.num_edges(), r2.graph.num_edges());
  EXPECT_EQ(r1.predicate_calls, r2.predicate_calls);
  EXPECT_EQ(r1.graph.num_tasks(), 3);  // 1-minimal for this predicate
}

TEST(ShrinkTest, SingleTaskGraphIsAFixedPoint) {
  // Nothing to remove: the loop must terminate immediately without
  // touching the graph's structure.
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::TableModel>(
                       std::vector<double>{5.0, 3.0}),
                   "only");
  const FailurePredicate any = [](const graph::TaskGraph& gg) {
    return gg.num_tasks() == 1;
  };
  const auto r = shrink_instance(g, any);
  EXPECT_EQ(r.graph.num_tasks(), 1);
  EXPECT_EQ(r.graph.num_edges(), 0u);
  EXPECT_EQ(r.tasks_removed, 0);
  EXPECT_EQ(r.edges_removed, 0);
}

TEST(ShrinkTest, WorksWithAPEqualsOnePredicate) {
  // Predicates often close over a platform; P = 1 (every task runs
  // sequentially) must not trip the reducer or the schedulers it calls.
  const auto g = diamond();
  const FailurePredicate slow_on_one_proc = [](const graph::TaskGraph& gg) {
    double worst = 0.0;
    for (graph::TaskId v = 0; v < gg.num_tasks(); ++v)
      worst = std::max(worst, gg.model_of(v).time(1));
    return worst >= 4.0;  // only the heaviest task satisfies this alone
  };
  const auto r = shrink_instance(g, slow_on_one_proc);
  EXPECT_EQ(r.graph.num_tasks(), 1);
  EXPECT_DOUBLE_EQ(r.graph.model_of(0).time(1), 4.0);
}

TEST(ShrinkTest, AlreadyMinimalInstanceIsUnchanged) {
  // An instance where every task and every edge is load-bearing: the
  // shrinker must recognize the fixed point and stop (no infinite loop,
  // no structural change).
  const auto g = diamond();
  const FailurePredicate exact_shape = [](const graph::TaskGraph& gg) {
    return gg.num_tasks() == 4 && gg.num_edges() == 4u;
  };
  const auto r = shrink_instance(g, exact_shape);
  EXPECT_EQ(r.graph.num_tasks(), 4);
  EXPECT_EQ(r.graph.num_edges(), 4u);
  EXPECT_EQ(r.tasks_removed, 0);
  EXPECT_EQ(r.edges_removed, 0);
  // Re-shrinking the result is also a fixed point.
  const auto again = shrink_instance(r.graph, exact_shape);
  EXPECT_EQ(again.graph.num_tasks(), 4);
  EXPECT_EQ(again.tasks_removed, 0);
}

TEST(DescribeInstanceTest, PrintsAPasteableRepro) {
  const auto g = diamond();
  const auto repro = describe_instance(g, 8, 0.25, "selfcheck mismatch");
  EXPECT_NE(repro.find("P=8"), std::string::npos);
  EXPECT_NE(repro.find("mu=0.25"), std::string::npos);
  EXPECT_NE(repro.find("selfcheck mismatch"), std::string::npos);
  EXPECT_NE(repro.find("0 -> 1"), std::string::npos);
}

}  // namespace
}  // namespace moldsched::check
