// Unit tests of the exact-oracle differential: the sandwich holds on
// honest suites, a scheduler that (impossibly) beats the optimum is
// called out, and the report knows whether the brute-force arbiter and
// the certificate actually ran.
#include "moldsched/check/oracle_check.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "moldsched/model/special_models.hpp"
#include "moldsched/opt/oracle.hpp"

namespace moldsched::check {
namespace {

graph::TaskGraph small_fork() {
  graph::TaskGraph g;
  const auto src =
      g.add_task(std::make_shared<model::RooflineModel>(2.0, 2), "src");
  const auto a =
      g.add_task(std::make_shared<model::AmdahlModel>(6.0, 0.5), "a");
  const auto b =
      g.add_task(std::make_shared<model::RooflineModel>(4.0, 3), "b");
  g.add_edge(src, a);
  g.add_edge(src, b);
  return g;
}

TEST(OracleCheckTest, FullSuitePassesOnATinyInstance) {
  const auto report = exact_oracle_check(small_fork(), 4, 0.3);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(report.certified);
  // 3 tasks <= the default brute cap, so the arbiter must have run.
  EXPECT_TRUE(report.brute_checked);
  EXPECT_GT(report.t_opt, 0.0);
  EXPECT_GE(report.t_opt, report.lower_bound * (1.0 - 1e-9));
  EXPECT_NE(report.to_string().find("OK"), std::string::npos);
}

TEST(OracleCheckTest, SchedulerBeatingTheOptimumIsAMismatch) {
  const auto g = small_fork();
  // A fabricated "scheduler" that claims an impossibly small makespan;
  // both the Lemma 2 and the certified-optimum relations must fire.
  sched::SchedulerSpec cheat;
  cheat.name = "cheat";
  cheat.runner = [](const graph::TaskGraph& gr, int P) {
    (void)P;
    core::ScheduleResult r;
    for (graph::TaskId v = 0; v < gr.num_tasks(); ++v) {
      r.trace.record_start(v, 0.0, 1);
      r.allocation.push_back(1);
      r.ready_time.push_back(0.0);
    }
    for (graph::TaskId v = 0; v < gr.num_tasks(); ++v)
      r.trace.record_end(v, 1e-3);
    r.makespan = 1e-3;
    return r;
  };
  const auto report = exact_oracle_check(g, 4, {cheat});
  EXPECT_FALSE(report.ok());
  bool named = false;
  for (const auto& m : report.mismatches)
    if (m.find("cheat") != std::string::npos) named = true;
  EXPECT_TRUE(named) << report.to_string();
  EXPECT_NE(report.to_string().find("MISMATCH"), std::string::npos);
}

TEST(OracleCheckTest, OverCapInstancesAreNotCertified) {
  graph::TaskGraph big;
  for (int i = 0; i < opt::oracle_defaults().max_tasks + 1; ++i)
    (void)big.add_task(std::make_shared<model::RooflineModel>(1.0, 1));
  const auto report = exact_oracle_check(big, 4, 0.3);
  EXPECT_FALSE(report.certified);
  EXPECT_FALSE(report.brute_checked);
  // The Lemma 2 side of the sandwich still ran and still holds.
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.lower_bound, 0.0);
}

TEST(OracleCheckTest, BruteArbiterSkippedAboveItsCap) {
  const auto report =
      exact_oracle_check(small_fork(), 4, 0.3, /*brute_force_max_tasks=*/2);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(report.certified);
  EXPECT_FALSE(report.brute_checked);
}

}  // namespace
}  // namespace moldsched::check
