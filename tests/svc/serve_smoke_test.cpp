// Black-box smoke test of the moldsched_serve binary: spawn it on an
// ephemeral port, parse its "listening on" line, run real sessions over
// TCP and shut it down remotely. The binary path comes from CMake via
// MOLDSCHED_SERVE_BINARY.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <string>

#include "moldsched/model/special_models.hpp"
#include "moldsched/svc/client.hpp"

namespace {

using namespace moldsched;

TEST(ServeSmoke, ServesSessionsAndStopsRemotely) {
  const std::string command = std::string(MOLDSCHED_SERVE_BINARY) +
                              " --port 0 --allow-remote-stop --quiet 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);

  // First line: "listening on 127.0.0.1:<port>".
  char line[256] = {};
  ASSERT_NE(std::fgets(line, sizeof line, pipe), nullptr);
  const std::string banner(line);
  const std::size_t colon = banner.rfind(':');
  ASSERT_EQ(banner.rfind("listening on 127.0.0.1:", 0), 0u) << banner;
  ASSERT_NE(colon, std::string::npos);
  const int port = std::stoi(banner.substr(colon + 1));
  ASSERT_GT(port, 0);

  {
    svc::Client client;
    client.connect("127.0.0.1", port);
    for (int s = 0; s < 3; ++s) {
      svc::OpenParams open;
      open.P = 4 + s;
      const svc::OpenReply opened = client.open(open);
      ASSERT_TRUE(opened.ok) << opened.error.message;
      svc::ReleaseParams params;
      params.model = std::make_shared<model::AmdahlModel>(8.0, 0.5);
      params.expected_task = 0;
      ASSERT_TRUE(client.release(opened.session, params).ok);
      params.preds = {0};
      params.expected_task = 1;
      ASSERT_TRUE(client.release(opened.session, params).ok);
      const svc::CloseReply closed = client.close_session(opened.session);
      ASSERT_TRUE(closed.ok);
      EXPECT_EQ(closed.num_tasks, 2);
      EXPECT_GT(closed.makespan, 0.0);
    }
    const svc::StopReply stop = client.stop_server();
    EXPECT_TRUE(stop.ok) << stop.error.message;
  }

  const int status = pclose(pipe);
  ASSERT_NE(status, -1);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
