// Black-box smoke tests of the moldsched_serve binary: spawn it on an
// ephemeral port, parse its "listening on" line, run real sessions over
// TCP and shut it down remotely. The binary path comes from CMake via
// MOLDSCHED_SERVE_BINARY.
//
// The telemetry tests fork/exec instead of popen because they need the
// child's pid: SIGUSR1 must produce a flight-recorder JSONL dump whose
// phase timings sum within each request's end-to-end latency, SIGUSR2
// and --metrics-interval must produce metrics JSON snapshots, and the
// admin listener must answer a live Prometheus scrape.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "moldsched/model/special_models.hpp"
#include "moldsched/svc/client.hpp"

namespace {

using namespace moldsched;

TEST(ServeSmoke, ServesSessionsAndStopsRemotely) {
  const std::string command = std::string(MOLDSCHED_SERVE_BINARY) +
                              " --port 0 --allow-remote-stop --quiet 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);

  // First line: "listening on 127.0.0.1:<port>".
  char line[256] = {};
  ASSERT_NE(std::fgets(line, sizeof line, pipe), nullptr);
  const std::string banner(line);
  const std::size_t colon = banner.rfind(':');
  ASSERT_EQ(banner.rfind("listening on 127.0.0.1:", 0), 0u) << banner;
  ASSERT_NE(colon, std::string::npos);
  const int port = std::stoi(banner.substr(colon + 1));
  ASSERT_GT(port, 0);

  {
    svc::Client client;
    client.connect("127.0.0.1", port);
    for (int s = 0; s < 3; ++s) {
      svc::OpenParams open;
      open.P = 4 + s;
      const svc::OpenReply opened = client.open(open);
      ASSERT_TRUE(opened.ok) << opened.error.message;
      svc::ReleaseParams params;
      params.model = std::make_shared<model::AmdahlModel>(8.0, 0.5);
      params.expected_task = 0;
      ASSERT_TRUE(client.release(opened.session, params).ok);
      params.preds = {0};
      params.expected_task = 1;
      ASSERT_TRUE(client.release(opened.session, params).ok);
      const svc::CloseReply closed = client.close_session(opened.session);
      ASSERT_TRUE(closed.ok);
      EXPECT_EQ(closed.num_tasks, 2);
      EXPECT_GT(closed.makespan, 0.0);
    }
    const svc::StopReply stop = client.stop_server();
    EXPECT_TRUE(stop.ok) << stop.error.message;
  }

  const int status = pclose(pipe);
  ASSERT_NE(status, -1);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// ---------------------------------------------------------------------------
// fork/exec harness for the signal- and scrape-driven tests.

struct ServeProc {
  pid_t pid = -1;
  FILE* out = nullptr;  ///< child's stdout+stderr
  int port = 0;
  int admin_port = 0;

  ~ServeProc() {
    if (out != nullptr) std::fclose(out);
    if (pid > 0) {
      ::kill(pid, SIGKILL);  // no-op when already reaped
      int status = 0;
      ::waitpid(pid, &status, WNOHANG);
    }
  }
};

/// Reads one "<label> on <host>:<port>" banner line; 0 on mismatch.
int parse_banner_port(FILE* out, const std::string& label) {
  char line[256] = {};
  if (std::fgets(line, sizeof line, out) == nullptr) return 0;
  const std::string banner(line);
  if (banner.rfind(label + " on ", 0) != 0) {
    ADD_FAILURE() << "unexpected banner: " << banner;
    return 0;
  }
  const std::size_t colon = banner.rfind(':');
  if (colon == std::string::npos) return 0;
  return std::stoi(banner.substr(colon + 1));
}

/// Spawns moldsched_serve with base flags (--port 0 --allow-remote-stop
/// --quiet) plus `extra`, and parses the banner(s). On any failure the
/// returned proc has pid <= 0.
ServeProc spawn_serve(const std::vector<std::string>& extra) {
  ServeProc proc;
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) return proc;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return proc;
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::dup2(fds[1], STDERR_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<std::string> args = {MOLDSCHED_SERVE_BINARY, "--port", "0",
                                     "--allow-remote-stop", "--quiet"};
    args.insert(args.end(), extra.begin(), extra.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::_Exit(127);
  }
  ::close(fds[1]);
  proc.out = ::fdopen(fds[0], "r");
  if (proc.out == nullptr) {
    ::close(fds[0]);
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return proc;
  }
  proc.pid = pid;
  proc.port = parse_banner_port(proc.out, "listening");
  bool wants_admin = false;
  for (const std::string& a : extra) wants_admin |= (a == "--admin-port");
  if (wants_admin) proc.admin_port = parse_banner_port(proc.out, "admin");
  return proc;
}

/// One open/release*/close session against a running server.
void run_session(int port, int tasks, const std::string& trace_id = "") {
  svc::Client client;
  if (!trace_id.empty()) client.set_trace_id(trace_id);
  client.connect("127.0.0.1", port);
  svc::OpenParams open;
  open.P = 4;
  const svc::OpenReply opened = client.open(open);
  ASSERT_TRUE(opened.ok) << opened.error.message;
  for (int t = 0; t < tasks; ++t) {
    svc::ReleaseParams params;
    params.model = std::make_shared<model::AmdahlModel>(8.0, 0.5);
    if (t > 0) params.preds = {static_cast<graph::TaskId>(t - 1)};
    params.expected_task = static_cast<graph::TaskId>(t);
    ASSERT_TRUE(client.release(opened.session, params).ok);
  }
  ASSERT_TRUE(client.close_session(opened.session).ok);
}

/// Remote-stops the server and asserts a clean exit.
void stop_and_reap(ServeProc& proc) {
  {
    svc::Client client;
    client.connect("127.0.0.1", proc.port);
    EXPECT_TRUE(client.stop_server().ok);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(proc.pid, &status, 0), proc.pid);
  proc.pid = -1;
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

bool wait_for_file(const std::string& path, double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  struct stat st{};
  while (std::chrono::steady_clock::now() < deadline) {
    if (::stat(path.c_str(), &st) == 0 && st.st_size > 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The number right after `"key":` in a JSON line; NaN-free tests only.
double json_number_after(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  if (pos == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

std::string unique_tmp(const std::string& stem) {
  return testing::TempDir() + stem + "." + std::to_string(::getpid());
}

/// Minimal HTTP/1.0 GET against the admin listener; returns the whole
/// response (headers + body).
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string response;
  for (;;) {
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ServeSmoke, SigUsr1DumpsFlightRecorderWithConsistentPhases) {
  const std::string dump = unique_tmp("flight.jsonl");
  std::remove(dump.c_str());
  ServeProc proc = spawn_serve(
      {"--phase-metrics", "--flight", "64", "--flight-dump", dump});
  ASSERT_GT(proc.pid, 0);
  ASSERT_GT(proc.port, 0);

  run_session(proc.port, 6, "smoke-usr1");

  // 8 requests (open + 6 releases + close). The client can see its last
  // reply a moment before the server records that request's span, so
  // re-signal until the dump holds all of them.
  std::string doc;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  do {
    ASSERT_EQ(::kill(proc.pid, SIGUSR1), 0);
    ASSERT_TRUE(wait_for_file(dump, 5.0)) << "no flight dump at " << dump;
    doc = read_file(dump);
    if (std::count(doc.begin(), doc.end(), '\n') >= 8) break;
    std::remove(dump.c_str());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  } while (std::chrono::steady_clock::now() < deadline);

  // One JSONL object per line, each with phase timings that sum within
  // the end-to-end latency.
  std::istringstream lines(doc);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    ASSERT_EQ(line.front(), '{') << line;
    ASSERT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"outcome\":\"ok\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"trace_id\":\"smoke-usr1\""), std::string::npos);
    const double total = json_number_after(line, "total_us");
    const double phase_sum = json_number_after(line, "queue") +
                             json_number_after(line, "parse") +
                             json_number_after(line, "schedule") +
                             json_number_after(line, "serialize") +
                             json_number_after(line, "write");
    EXPECT_GT(total, 0.0);
    EXPECT_LE(phase_sum, total * 1.0001) << line;
  }
  EXPECT_EQ(count, 8u);

  stop_and_reap(proc);
  std::remove(dump.c_str());
}

TEST(ServeSmoke, SigUsr2AndIntervalDumpMetricsSnapshots) {
  const std::string metrics = unique_tmp("metrics.json");
  std::remove(metrics.c_str());
  ServeProc proc =
      spawn_serve({"--metrics", metrics, "--metrics-interval", "0.2"});
  ASSERT_GT(proc.pid, 0);
  ASSERT_GT(proc.port, 0);

  run_session(proc.port, 2);
  // The periodic dump appears on its own within a few intervals.
  ASSERT_TRUE(wait_for_file(metrics, 5.0)) << "no interval metrics dump";
  std::string doc = read_file(metrics);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("svc.request.latency_ms"), std::string::npos);

  // On-demand snapshot: remove the file, SIGUSR2 recreates it without
  // waiting a full interval (though the interval would too — the point
  // is the file comes back).
  std::remove(metrics.c_str());
  ASSERT_EQ(::kill(proc.pid, SIGUSR2), 0);
  ASSERT_TRUE(wait_for_file(metrics, 5.0)) << "no SIGUSR2 metrics dump";
  doc = read_file(metrics);
  EXPECT_NE(doc.find("svc.requests.received"), std::string::npos) << doc;

  stop_and_reap(proc);
  std::remove(metrics.c_str());
}

TEST(ServeSmoke, AdminListenerAnswersLiveScrapes) {
  ServeProc proc = spawn_serve(
      {"--admin-port", "0", "--phase-metrics", "--flight", "32"});
  ASSERT_GT(proc.pid, 0);
  ASSERT_GT(proc.port, 0);
  ASSERT_GT(proc.admin_port, 0);

  run_session(proc.port, 4, "smoke-scrape");

  const std::string health = http_get(proc.admin_port, "/healthz");
  EXPECT_EQ(health.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << health;

  // The client sees its last reply a moment before the server finishes
  // observing that request's span, so poll the scrape briefly.
  std::string scrape;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    scrape = http_get(proc.admin_port, "/metrics");
    if (scrape.find("svc_phase_schedule_ms_count 6\n") != std::string::npos)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(scrape.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  // Phase histograms observed the 6 requests of the session.
  EXPECT_NE(scrape.find("svc_phase_schedule_ms_count 6\n"), std::string::npos)
      << scrape.substr(0, 512);
  EXPECT_NE(scrape.find("svc_request_latency_ms_count 6\n"),
            std::string::npos);
  EXPECT_NE(scrape.find("proc_rss_bytes"), std::string::npos);

  const std::string flight = http_get(proc.admin_port, "/flight");
  EXPECT_EQ(flight.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(flight.find("\"trace_id\":\"smoke-scrape\""), std::string::npos);

  stop_and_reap(proc);
}

}  // namespace
