// Session state machine: streamed scheduling must be bit-exact against
// the in-process SchedulerSpec, and malformed streams must be rejected
// without corrupting the session.
#include "moldsched/svc/session.hpp"

#include <gtest/gtest.h>

#include "moldsched/check/differential.hpp"
#include "moldsched/graph/adversary.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/sched/registry.hpp"

namespace {

using namespace moldsched;

svc::ReleaseParams release_of(const graph::TaskGraph& g, graph::TaskId v) {
  svc::ReleaseParams params;
  params.name = g.name(v);
  params.model = g.model_ptr(v);
  for (const graph::TaskId u : g.predecessors(v)) params.preds.push_back(u);
  params.expected_task = v;
  return params;
}

TEST(Session, StreamedScheduleMatchesInProcessBitExactly) {
  graph::WorkflowModelConfig config;
  config.kind = model::ModelKind::kAmdahl;
  const graph::TaskGraph g = graph::cholesky(3, config);
  const int P = 16;

  svc::OpenParams open;
  open.scheduler = "lpa";
  open.P = P;
  open.mu = 0.25;
  svc::Session session("t", open);
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    const svc::ReleaseReply r = session.release(release_of(g, v));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.task, v);
    EXPECT_GE(r.alloc, 1);
    EXPECT_LE(r.alloc, P);
    EXPECT_LE(r.ready, r.start);
    EXPECT_LT(r.start, r.end);
    EXPECT_LE(r.end, r.projected_makespan);
  }
  const svc::CloseReply closed = session.close();
  ASSERT_TRUE(closed.ok);

  sched::SchedulerSpec spec = sched::spec_by_name("lpa", 0.25);
  const core::ScheduleResult reference = spec.run(g, P);
  EXPECT_EQ(closed.makespan, reference.makespan);
  EXPECT_EQ(closed.allocation, reference.allocation);
  EXPECT_EQ(closed.num_events, reference.num_events);
  ASSERT_EQ(closed.records.size(), reference.trace.records().size());
  for (std::size_t i = 0; i < closed.records.size(); ++i) {
    EXPECT_EQ(closed.records[i].task, reference.trace.records()[i].task);
    EXPECT_EQ(closed.records[i].start, reference.trace.records()[i].start);
    EXPECT_EQ(closed.records[i].end, reference.trace.records()[i].end);
    EXPECT_EQ(closed.records[i].procs, reference.trace.records()[i].procs);
  }
  EXPECT_EQ(closed.stats.releases,
            static_cast<std::uint64_t>(g.num_tasks()));
  // close reuses the last prefix run: exactly one simulation per release.
  EXPECT_EQ(closed.stats.reschedules,
            static_cast<std::uint64_t>(g.num_tasks()));
}

TEST(Session, AdversaryInstanceMatchesAndRatioIsConsistent) {
  const auto inst = graph::roofline_adversary(32, 0.25);
  svc::OpenParams open;
  open.P = inst.P;
  open.mu = inst.mu;
  svc::Session session("adv", open);
  for (graph::TaskId v = 0; v < inst.graph.num_tasks(); ++v)
    ASSERT_TRUE(session.release(release_of(inst.graph, v)).ok);
  const svc::CloseReply closed = session.close();
  ASSERT_TRUE(closed.ok);
  sched::SchedulerSpec spec = sched::spec_by_name("lpa", inst.mu);
  EXPECT_EQ(closed.makespan, spec.run(inst.graph, inst.P).makespan);
  ASSERT_GT(closed.lower_bound, 0.0);
  EXPECT_EQ(closed.ratio, closed.makespan / closed.lower_bound);
}

TEST(Session, ZeroTaskSessionClosesCleanly) {
  svc::OpenParams open;
  open.P = 8;
  svc::Session session("empty", open);
  const svc::CloseReply closed = session.close();
  ASSERT_TRUE(closed.ok);
  EXPECT_EQ(closed.num_tasks, 0);
  EXPECT_EQ(closed.makespan, 0.0);
  EXPECT_EQ(closed.lower_bound, 0.0);
  EXPECT_EQ(closed.ratio, 1.0);
  EXPECT_TRUE(closed.records.empty());
  EXPECT_EQ(closed.stats.releases, 0u);
}

TEST(Session, RejectsUnknownScheduler) {
  svc::OpenParams open;
  open.scheduler = "definitely-not-a-scheduler";
  open.P = 4;
  try {
    svc::Session session("x", open);
    FAIL() << "expected SessionError";
  } catch (const svc::SessionError& e) {
    EXPECT_EQ(e.code(), svc::ErrorCode::kBadRequest);
  }
}

TEST(Session, RejectsDuplicateAndOutOfOrderReleases) {
  svc::OpenParams open;
  open.P = 4;
  svc::Session session("x", open);
  svc::ReleaseParams t0;
  t0.model = std::make_shared<model::AmdahlModel>(4.0, 0.5);
  t0.expected_task = 0;
  ASSERT_TRUE(session.release(t0).ok);

  // Re-sending task 0 is a duplicate: the session expects 1.
  try {
    (void)session.release(t0);
    FAIL() << "expected SessionError";
  } catch (const svc::SessionError& e) {
    EXPECT_EQ(e.code(), svc::ErrorCode::kBadRequest);
  }
  // Skipping ahead to task 5 is out of order.
  svc::ReleaseParams t5 = t0;
  t5.expected_task = 5;
  EXPECT_THROW((void)session.release(t5), svc::SessionError);
  // The failures left the session intact: releasing task 1 still works.
  svc::ReleaseParams t1 = t0;
  t1.expected_task = 1;
  EXPECT_TRUE(session.release(t1).ok);
  EXPECT_EQ(session.num_tasks(), 2);
}

TEST(Session, RejectsUnreleasedAndDuplicatePredecessors) {
  svc::OpenParams open;
  open.P = 4;
  svc::Session session("x", open);
  svc::ReleaseParams t0;
  t0.model = std::make_shared<model::AmdahlModel>(4.0, 0.5);
  ASSERT_TRUE(session.release(t0).ok);

  // A predecessor that was never released (including the task itself).
  svc::ReleaseParams bad = t0;
  bad.preds = {7};
  EXPECT_THROW((void)session.release(bad), svc::SessionError);
  bad.preds = {1};  // would-be self-edge: id 1 is the task being released
  EXPECT_THROW((void)session.release(bad), svc::SessionError);
  bad.preds = {0, 0};  // duplicate edge
  EXPECT_THROW((void)session.release(bad), svc::SessionError);
  // Session still at one task and still usable.
  EXPECT_EQ(session.num_tasks(), 1);
  svc::ReleaseParams good = t0;
  good.preds = {0};
  EXPECT_TRUE(session.release(good).ok);
}

TEST(Session, MissingModelIsRejected) {
  svc::OpenParams open;
  open.P = 2;
  svc::Session session("x", open);
  svc::ReleaseParams params;  // model left null
  EXPECT_THROW((void)session.release(params), svc::SessionError);
}

TEST(Session, TraceRequestShipsChromeJson) {
  svc::OpenParams open;
  open.P = 4;
  open.trace = true;
  svc::Session session("tr", open);
  svc::ReleaseParams t0;
  t0.model = std::make_shared<model::RooflineModel>(8.0, 4);
  ASSERT_TRUE(session.release(t0).ok);
  const svc::CloseReply closed = session.close();
  ASSERT_TRUE(closed.ok);
  EXPECT_NE(closed.trace_json.find("traceEvents"), std::string::npos);
}

TEST(Session, IdleSecondsGrowsAndResetsOnActivity) {
  svc::OpenParams open;
  open.P = 2;
  svc::Session session("idle", open);
  const double before = session.idle_seconds();
  EXPECT_GE(before, 0.0);
  svc::ReleaseParams t0;
  t0.model = std::make_shared<model::AmdahlModel>(1.0, 0.1);
  ASSERT_TRUE(session.release(t0).ok);
  EXPECT_LT(session.idle_seconds(), 10.0);
}

}  // namespace
