// Protocol layer: request/reply JSON codecs and the error taxonomy.
#include "moldsched/svc/protocol.hpp"

#include <gtest/gtest.h>

#include "moldsched/model/special_models.hpp"
#include "moldsched/svc/wire.hpp"

namespace {

using namespace moldsched;

TEST(ErrorCodes, RoundTripEveryCode) {
  for (const auto code :
       {svc::ErrorCode::kParseError, svc::ErrorCode::kBadRequest,
        svc::ErrorCode::kUnknownOp, svc::ErrorCode::kUnknownSession,
        svc::ErrorCode::kOverloaded, svc::ErrorCode::kQuotaExceeded,
        svc::ErrorCode::kShuttingDown, svc::ErrorCode::kForbidden,
        svc::ErrorCode::kInternal}) {
    EXPECT_EQ(svc::error_code_from_string(svc::to_string(code)), code);
  }
  EXPECT_THROW((void)svc::error_code_from_string("nope"),
               std::invalid_argument);
}

TEST(RequestCodec, OpenRoundTrip) {
  svc::OpenParams params;
  params.scheduler = "improved-lpa";
  params.P = 48;
  params.mu = 0.31;
  params.policy = core::QueuePolicy::kLargestWorkFirst;
  params.trace = true;
  const svc::Request req =
      svc::parse_request(svc::open_request_json(params, 17));
  EXPECT_EQ(req.op, svc::Request::Op::kOpen);
  EXPECT_EQ(req.seq, 17);
  EXPECT_EQ(req.open.scheduler, "improved-lpa");
  EXPECT_EQ(req.open.P, 48);
  EXPECT_EQ(req.open.mu, 0.31);  // wire_number is lossless
  EXPECT_EQ(req.open.policy, core::QueuePolicy::kLargestWorkFirst);
  EXPECT_TRUE(req.open.trace);
}

TEST(RequestCodec, ReleaseRoundTrip) {
  svc::ReleaseParams params;
  params.name = "t \"7\"";
  params.model = std::make_shared<model::AmdahlModel>(12.5, 0.125);
  params.preds = {0, 3, 5};
  params.expected_task = 6;
  const svc::Request req =
      svc::parse_request(svc::release_request_json("s42", params, 9));
  EXPECT_EQ(req.op, svc::Request::Op::kRelease);
  EXPECT_EQ(req.session, "s42");
  EXPECT_EQ(req.release.name, "t \"7\"");
  ASSERT_TRUE(req.release.model);
  EXPECT_EQ(req.release.model->time(4), params.model->time(4));
  EXPECT_EQ(req.release.preds, (std::vector<int>{0, 3, 5}));
  ASSERT_TRUE(req.release.expected_task.has_value());
  EXPECT_EQ(*req.release.expected_task, 6);
}

TEST(RequestCodec, CloseAndStopRoundTrip) {
  const svc::Request close =
      svc::parse_request(svc::close_request_json("abc", 3));
  EXPECT_EQ(close.op, svc::Request::Op::kClose);
  EXPECT_EQ(close.session, "abc");
  const svc::Request stop = svc::parse_request(svc::stop_request_json(4));
  EXPECT_EQ(stop.op, svc::Request::Op::kStop);
  EXPECT_EQ(stop.seq, 4);
}

TEST(RequestCodec, ClassifiesBadInputs) {
  // Invalid JSON -> parse_error prefix (the server maps it to the code).
  try {
    (void)svc::parse_request("{nope");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).rfind("parse_error: ", 0), 0u);
  }
  // Unknown op -> unknown_op prefix.
  try {
    (void)svc::parse_request("{\"op\":\"task.explode\"}");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).rfind("unknown_op: ", 0), 0u);
  }
  // Structural problems -> plain bad-request messages.
  EXPECT_THROW((void)svc::parse_request("[1,2]"), std::invalid_argument);
  EXPECT_THROW((void)svc::parse_request("{\"op\":\"session.open\"}"),
               std::invalid_argument);  // missing P
  EXPECT_THROW(
      (void)svc::parse_request(
          "{\"op\":\"session.open\",\"P\":0}"),
      std::invalid_argument);  // P < 1
  EXPECT_THROW(
      (void)svc::parse_request(
          "{\"op\":\"session.open\",\"P\":4,\"policy\":\"speed\"}"),
      std::invalid_argument);  // unknown policy
  EXPECT_THROW((void)svc::parse_request("{\"op\":\"task.release\"}"),
               std::invalid_argument);  // missing session + model
  EXPECT_THROW(
      (void)svc::parse_request(
          "{\"op\":\"task.release\",\"session\":\"s\",\"model\":"
          "{\"kind\":\"amdahl\",\"w\":1,\"d\":1},\"preds\":[-1]}"),
      std::invalid_argument);  // negative predecessor
}

TEST(ReplyCodec, ErrorReplyRoundTrip) {
  const std::string payload = svc::error_reply_json(
      21, svc::ErrorCode::kOverloaded, "queue full \"now\"");
  const svc::StopReply r = svc::parse_stop_reply(payload);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.seq, 21);
  EXPECT_EQ(r.error.code, svc::ErrorCode::kOverloaded);
  EXPECT_EQ(r.error.message, "queue full \"now\"");
}

TEST(ReplyCodec, OpenReplyRoundTrip) {
  svc::OpenReply reply;
  reply.ok = true;
  reply.seq = 2;
  reply.session = "s7";
  reply.scheduler = "lpa";
  reply.P = 99;
  const svc::OpenReply back =
      svc::parse_open_reply(svc::open_reply_json(reply));
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.seq, 2);
  EXPECT_EQ(back.session, "s7");
  EXPECT_EQ(back.scheduler, "lpa");
  EXPECT_EQ(back.P, 99);
}

TEST(ReplyCodec, ReleaseReplyIsBitExact) {
  svc::ReleaseReply reply;
  reply.ok = true;
  reply.seq = 5;
  reply.task = 3;
  reply.alloc = 12;
  reply.ready = 1.0 / 3.0;
  reply.start = 0.1 + 0.2;  // deliberately not 0.3
  reply.end = 1e-17;
  reply.projected_makespan = 123.4567890123456789;
  const svc::ReleaseReply back =
      svc::parse_release_reply(svc::release_reply_json(reply));
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.task, 3);
  EXPECT_EQ(back.alloc, 12);
  EXPECT_EQ(back.ready, reply.ready);
  EXPECT_EQ(back.start, reply.start);
  EXPECT_EQ(back.end, reply.end);
  EXPECT_EQ(back.projected_makespan, reply.projected_makespan);
}

TEST(ReplyCodec, CloseReplyCarriesRecordsStatsAndTrace) {
  svc::CloseReply reply;
  reply.ok = true;
  reply.seq = 11;
  reply.makespan = 7.25;
  reply.lower_bound = 3.5;
  reply.ratio = 7.25 / 3.5;
  reply.num_tasks = 2;
  reply.num_events = 2;
  reply.allocation = {4, 1};
  reply.records.push_back(sim::TaskRecord{0, 0.0, 3.5, 4});
  reply.records.push_back(sim::TaskRecord{1, 3.5, 7.25, 1});
  reply.stats.releases = 2;
  reply.stats.reschedules = 2;
  reply.stats.schedule_ms = 0.75;
  reply.trace_json = "{\"traceEvents\":[]}";
  const svc::CloseReply back =
      svc::parse_close_reply(svc::close_reply_json(reply));
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.makespan, 7.25);
  EXPECT_EQ(back.lower_bound, 3.5);
  EXPECT_EQ(back.ratio, reply.ratio);
  EXPECT_EQ(back.num_tasks, 2);
  EXPECT_EQ(back.num_events, 2u);
  EXPECT_EQ(back.allocation, (std::vector<int>{4, 1}));
  ASSERT_EQ(back.records.size(), 2u);
  EXPECT_EQ(back.records[1].task, 1);
  EXPECT_EQ(back.records[1].start, 3.5);
  EXPECT_EQ(back.records[1].end, 7.25);
  EXPECT_EQ(back.records[1].procs, 1);
  EXPECT_EQ(back.stats.releases, 2u);
  EXPECT_EQ(back.stats.reschedules, 2u);
  EXPECT_EQ(back.stats.schedule_ms, 0.75);
  EXPECT_EQ(back.trace_json, "{\"traceEvents\":[]}");
}

}  // namespace
