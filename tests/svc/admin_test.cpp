// AdminServer tests: route() payloads without a socket, then real
// HTTP/1.0 exchanges over a loopback connection (status lines, headers,
// query-string stripping, 404/405 answers, /flight backed by a live
// Server's flight recorder).
#include "moldsched/svc/admin.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "moldsched/engine/executor.hpp"
#include "moldsched/obs/metrics.hpp"
#include "moldsched/svc/server.hpp"

namespace {

using namespace moldsched;

/// One blocking HTTP exchange: connect, send `request` verbatim, read to
/// EOF (the admin server is Connection: close).
std::string http_exchange(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0 && errno == EINTR) continue;
    EXPECT_GT(n, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  for (;;) {
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(int port, const std::string& path) {
  return http_exchange(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

TEST(AdminServerRoute, ServesPrometheusTextWithProcessGauges) {
  obs::MetricRegistry reg;
  reg.counter("svc.requests.received").add(7);
  svc::AdminServer admin(reg);
  std::string body, content_type;
  ASSERT_TRUE(admin.route("/metrics", body, content_type));
  EXPECT_EQ(content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(body.find("svc_requests_received_total 7\n"), std::string::npos)
      << body;
  // The scrape refreshed the proc.* gauges before rendering.
  EXPECT_NE(body.find("proc_rss_bytes"), std::string::npos);
  EXPECT_NE(body.find("proc_open_fds"), std::string::npos);
  EXPECT_NE(body.find("proc_uptime_s"), std::string::npos);
}

TEST(AdminServerRoute, ServesJsonHealthzAndRejectsUnknownPaths) {
  obs::MetricRegistry reg;
  reg.gauge("svc.queue.depth").set(3.0);
  svc::AdminServer admin(reg);
  std::string body, content_type;

  ASSERT_TRUE(admin.route("/metrics.json", body, content_type));
  EXPECT_EQ(content_type, "application/json");
  EXPECT_EQ(body.front(), '{');
  EXPECT_EQ(body.back(), '\n');
  EXPECT_NE(body.find("svc.queue.depth"), std::string::npos) << body;

  ASSERT_TRUE(admin.route("/healthz", body, content_type));
  EXPECT_EQ(body, "ok\n");

  // /flight without a backing server answers an empty document, not 404.
  ASSERT_TRUE(admin.route("/flight", body, content_type));
  EXPECT_EQ(body, "");
  EXPECT_EQ(content_type, "application/x-ndjson");

  EXPECT_FALSE(admin.route("/nope", body, content_type));
  EXPECT_FALSE(admin.route("", body, content_type));
}

TEST(AdminServerHttp, AnswersGetOverARealSocket) {
  obs::MetricRegistry reg;
  reg.counter("svc.requests.received").add(1);
  svc::AdminServer admin(reg);
  const int port = admin.listen("127.0.0.1", 0);
  ASSERT_GT(port, 0);
  EXPECT_EQ(admin.port(), port);

  const std::string response = http_get(port, "/healthz");
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Type: text/plain\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\nok\n"), std::string::npos);

  // Scrapers may append query strings; routing ignores them.
  const std::string metrics = http_get(port, "/metrics?ts=123");
  EXPECT_EQ(metrics.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(metrics.find("svc_requests_received_total 1\n"),
            std::string::npos);

  const std::string missing = http_get(port, "/bogus");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u) << missing;
  EXPECT_NE(missing.find("unknown path '/bogus'"), std::string::npos);

  const std::string post =
      http_exchange(port, "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(post.rfind("HTTP/1.0 405 Method Not Allowed\r\n", 0), 0u) << post;

  admin.stop();
  admin.stop();  // idempotent
}

TEST(AdminServerHttp, FlightEndpointServesTheServersRecorder) {
  engine::Executor executor(2);
  obs::MetricRegistry registry;
  svc::ServerTelemetry telemetry;
  telemetry.flight_capacity = 32;
  svc::Server server({}, telemetry, executor, registry);
  ASSERT_GT(server.listen(), 0);

  svc::AdminServer admin(registry, &server);
  const int admin_port = admin.listen("127.0.0.1", 0);

  // No traffic yet: the endpoint exists and answers an empty JSONL doc.
  std::string response = http_get(admin_port, "/flight");
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(response.find("Content-Type: application/x-ndjson\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("Content-Length: 0\r\n"), std::string::npos)
      << response;

  admin.stop();
  server.stop();
  server.wait();
}

}  // namespace
