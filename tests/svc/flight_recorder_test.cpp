#include "moldsched/svc/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace moldsched::svc {
namespace {

obs::RequestSpan make_span(std::uint64_t id) {
  obs::RequestSpan span;
  span.request_id = id;
  span.seq = static_cast<std::int64_t>(id) * 10;
  span.session = "s" + std::to_string(id % 5);
  span.op = "task.release";
  span.trace_id = "t" + std::to_string(id);
  span.outcome = "ok";
  span.start_us = 1.5 * static_cast<double>(id);
  span.total_us = 42.25;
  span.queue_us = 1.0;
  span.parse_us = 2.0;
  span.schedule_us = 30.0;
  span.serialize_us = 4.0;
  span.write_us = 5.0;
  return span;
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwoMinimumEight) {
  EXPECT_EQ(FlightRecorder(0).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(1).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(8).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(9).capacity(), 16u);
  EXPECT_EQ(FlightRecorder(1000).capacity(), 1024u);
}

TEST(FlightRecorderTest, RecordSnapshotRoundtripsAllFields) {
  FlightRecorder rec(8);
  rec.record(make_span(3));
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  const obs::RequestSpan& s = spans[0];
  EXPECT_EQ(s.request_id, 3u);
  EXPECT_EQ(s.seq, 30);
  EXPECT_EQ(s.session, "s3");
  EXPECT_EQ(s.op, "task.release");
  EXPECT_EQ(s.trace_id, "t3");
  EXPECT_EQ(s.outcome, "ok");
  EXPECT_DOUBLE_EQ(s.start_us, 4.5);
  EXPECT_DOUBLE_EQ(s.total_us, 42.25);
  EXPECT_DOUBLE_EQ(s.queue_us, 1.0);
  EXPECT_DOUBLE_EQ(s.parse_us, 2.0);
  EXPECT_DOUBLE_EQ(s.schedule_us, 30.0);
  EXPECT_DOUBLE_EQ(s.serialize_us, 4.0);
  EXPECT_DOUBLE_EQ(s.write_us, 5.0);
  EXPECT_EQ(rec.recorded(), 1u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(FlightRecorderTest, WraparoundKeepsTheLastN) {
  FlightRecorder rec(8);
  for (std::uint64_t id = 1; id <= 20; ++id) rec.record(make_span(id));
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 8u);
  // Oldest-first, exactly ids 13..20.
  for (std::size_t i = 0; i < spans.size(); ++i)
    EXPECT_EQ(spans[i].request_id, 13u + i);
  EXPECT_EQ(rec.recorded(), 20u);
}

TEST(FlightRecorderTest, EmptySessionAndUnknownCodesSurvive) {
  FlightRecorder rec(8);
  obs::RequestSpan span = make_span(1);
  span.session.clear();
  span.op = "something.odd";
  span.outcome = "weird_failure";
  rec.record(span);
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].session, "");
  // Off-catalog strings collapse to the "other" bucket by design.
  EXPECT_EQ(spans[0].op, "other");
  EXPECT_EQ(spans[0].outcome, "other");
}

TEST(FlightRecorderTest, KnownOutcomesRoundtripExactly) {
  for (const char* outcome :
       {"ok", "parse_error", "bad_request", "unknown_op", "unknown_session",
        "overloaded", "quota_exceeded", "shutting_down", "forbidden",
        "internal"}) {
    FlightRecorder rec(8);
    obs::RequestSpan span = make_span(1);
    span.outcome = outcome;
    rec.record(span);
    const auto spans = rec.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].outcome, outcome);
  }
}

TEST(FlightRecorderTest, TraceIdTruncatesToTwentyFourBytes) {
  FlightRecorder rec(8);
  obs::RequestSpan span = make_span(1);
  span.trace_id = std::string(40, 'x') + "tail";
  rec.record(span);
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, std::string(FlightRecorder::kMaxTraceIdBytes,
                                           'x'));
}

TEST(FlightRecorderTest, JsonlEscapesTraceIdAndHasOneObjectPerLine) {
  FlightRecorder rec(8);
  obs::RequestSpan span = make_span(1);
  span.trace_id = "a\"b\\c";
  rec.record(span);
  rec.record(make_span(2));
  const std::string jsonl = rec.to_jsonl();
  EXPECT_NE(jsonl.find("\"trace_id\":\"a\\\"b\\\\c\""), std::string::npos)
      << jsonl;
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"phases_us\":{"), std::string::npos);
  }
  EXPECT_EQ(count, 2u);
}

TEST(FlightRecorderTest, ConcurrentWritersNeverBlockOrTear) {
  FlightRecorder rec(64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::atomic<std::uint64_t> next_id{1};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, &next_id] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t id =
            next_id.fetch_add(1, std::memory_order_relaxed);
        rec.record(make_span(id));
        if (i % 512 == 0) (void)rec.snapshot();  // concurrent readers
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(rec.recorded() + rec.dropped(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto spans = rec.snapshot();
  EXPECT_LE(spans.size(), rec.capacity());
  EXPECT_FALSE(spans.empty());
  // Every surviving record must be internally consistent — the seqlock
  // guarantees no torn reads, so derived fields still match the id.
  for (const obs::RequestSpan& s : spans) {
    EXPECT_EQ(s.seq, static_cast<std::int64_t>(s.request_id) * 10);
    EXPECT_EQ(s.session, "s" + std::to_string(s.request_id % 5));
    EXPECT_EQ(s.trace_id, "t" + std::to_string(s.request_id));
    EXPECT_DOUBLE_EQ(s.start_us, 1.5 * static_cast<double>(s.request_id));
  }
  // Oldest-first ordering holds under contention too.
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_LT(spans[i - 1].request_id, spans[i].request_id);
}

}  // namespace
}  // namespace moldsched::svc
