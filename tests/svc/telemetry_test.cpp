// End-to-end telemetry: a real client streams a graph through a real
// server over a socket with a trace_id attached, and every sink agrees —
// the Chrome trace validates with per-session lanes and nested phase
// spans, the flight recorder retains the requests with the trace_id and
// internally-consistent phase timings, and the svc.phase.* histograms
// fill in. Uses a private MetricRegistry so concurrently-running tests
// sharing default_registry() cannot perturb the counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "moldsched/engine/executor.hpp"
#include "moldsched/graph/adversary.hpp"
#include "moldsched/obs/metrics.hpp"
#include "moldsched/obs/span.hpp"
#include "moldsched/obs/trace_writer.hpp"
#include "moldsched/svc/client.hpp"
#include "moldsched/svc/server.hpp"

namespace {

using namespace moldsched;

svc::ReleaseParams release_of(const graph::TaskGraph& g, graph::TaskId v) {
  svc::ReleaseParams params;
  params.name = g.name(v);
  params.model = g.model_ptr(v);
  for (const graph::TaskId u : g.predecessors(v)) params.preds.push_back(u);
  params.expected_task = v;
  return params;
}

TEST(ServiceTelemetry, EndToEndSessionFeedsEverySink) {
  engine::Executor executor(2);
  obs::MetricRegistry registry;
  obs::TraceWriter writer;
  obs::TraceSpanObserver span_obs(writer, "svc requests");

  svc::ServerTelemetry telemetry;
  telemetry.phases = true;
  telemetry.spans = &span_obs;
  telemetry.flight_capacity = 256;
  svc::Server server({}, telemetry, executor, registry);
  const int port = server.listen();
  ASSERT_GT(port, 0);

  const auto inst = graph::roofline_adversary(12, 0.25);
  svc::OpenParams open;
  open.P = inst.P;
  open.mu = inst.mu;

  svc::Client client;
  client.set_trace_id("e2e-telemetry");
  client.connect("127.0.0.1", port);
  const svc::OpenReply opened = client.open(open);
  ASSERT_TRUE(opened.ok) << opened.error.message;
  for (graph::TaskId v = 0; v < inst.graph.num_tasks(); ++v) {
    const svc::ReleaseReply r =
        client.release(opened.session, release_of(inst.graph, v));
    ASSERT_TRUE(r.ok) << r.error.message;
  }
  const svc::CloseReply closed = client.close_session(opened.session);
  ASSERT_TRUE(closed.ok) << closed.error.message;
  client.disconnect();
  server.stop();
  server.wait();

  const auto expected_requests =
      static_cast<std::uint64_t>(inst.graph.num_tasks()) + 2;  // open+close

  // Sink 1: the Chrome trace validates, with the session as its own lane
  // and nested svc.phase children inside svc.request spans.
  const std::string json = writer.to_json();
  obs::TraceStats stats;
  const auto err = obs::validate_chrome_trace(json, &stats);
  ASSERT_FALSE(err.has_value()) << *err;
  EXPECT_GE(stats.spans, expected_requests);  // request span per request
  EXPECT_NE(json.find("\"cat\":\"svc.request\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"svc.phase\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"e2e-telemetry\""), std::string::npos);
  EXPECT_NE(json.find('"' + opened.session + '"'), std::string::npos)
      << "session lane name missing";

  // Sink 2: the flight recorder retained every request, each carrying
  // the trace id, a known outcome, and phases that sum within the
  // request's end-to-end latency.
  ASSERT_NE(server.flight(), nullptr);
  const auto records = server.flight()->snapshot();
  ASSERT_EQ(records.size(), expected_requests);
  EXPECT_EQ(server.flight()->recorded(), expected_requests);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const obs::RequestSpan& r = records[i];
    EXPECT_EQ(r.trace_id, "e2e-telemetry");
    EXPECT_EQ(r.outcome, "ok");
    EXPECT_GT(r.total_us, 0.0);
    const double phase_sum =
        r.queue_us + r.parse_us + r.schedule_us + r.serialize_us + r.write_us;
    EXPECT_LE(phase_sum, r.total_us * 1.0000001) << "request " << r.request_id;
    if (i > 0) {
      EXPECT_LT(records[i - 1].request_id, r.request_id);
    }
  }
  EXPECT_EQ(records.front().op, "session.open");
  EXPECT_EQ(records.back().op, "session.close");
  EXPECT_EQ(records.back().session, opened.session);

  // The same records rendered as JSONL — one line per request.
  const std::string jsonl = server.flight_jsonl();
  std::size_t lines = 0;
  for (const char c : jsonl) lines += (c == '\n');
  EXPECT_EQ(lines, expected_requests);
  EXPECT_NE(jsonl.find("\"trace_id\":\"e2e-telemetry\""), std::string::npos);

  // Sink 3: the svc.phase.* histograms observed every request, and the
  // latency histogram still matches (same request count).
  for (const char* name :
       {"svc.phase.queue_ms", "svc.phase.parse_ms", "svc.phase.schedule_ms",
        "svc.phase.serialize_ms", "svc.phase.write_ms",
        "svc.request.latency_ms"}) {
    EXPECT_EQ(registry.histogram(name).count(), expected_requests) << name;
  }
  // Phase means decompose the end-to-end mean: each phase is a disjoint
  // sub-interval, so the means sum to at most the latency mean.
  const double mean_phases_ms = registry.histogram("svc.phase.queue_ms").mean() +
                                registry.histogram("svc.phase.parse_ms").mean() +
                                registry.histogram("svc.phase.schedule_ms").mean() +
                                registry.histogram("svc.phase.serialize_ms").mean() +
                                registry.histogram("svc.phase.write_ms").mean();
  EXPECT_LE(mean_phases_ms,
            registry.histogram("svc.request.latency_ms").mean() * 1.0000001);
}

TEST(ServiceTelemetry, UnarmedServerProducesNoSpansOrPhaseCounts) {
  engine::Executor executor(2);
  obs::MetricRegistry registry;
  svc::Server server({}, executor, registry);  // legacy ctor: telemetry off
  const int port = server.listen();

  svc::OpenParams open;
  open.P = 4;
  svc::Client client;
  client.connect("127.0.0.1", port);
  const svc::OpenReply opened = client.open(open);
  ASSERT_TRUE(opened.ok) << opened.error.message;
  ASSERT_TRUE(client.close_session(opened.session).ok);
  client.disconnect();
  server.stop();
  server.wait();

  EXPECT_EQ(server.flight(), nullptr);
  EXPECT_EQ(server.flight_jsonl(), "");
  // The always-on latency histogram observed both requests; the phase
  // histograms exist (registered up front) but never fired.
  EXPECT_EQ(registry.histogram("svc.request.latency_ms").count(), 2u);
  EXPECT_EQ(registry.histogram("svc.phase.schedule_ms").count(), 0u);
  EXPECT_EQ(registry.histogram("svc.phase.queue_ms").count(), 0u);
}

TEST(ServiceTelemetry, TraceIdRidesTheWireIntoErrorOutcomesToo) {
  engine::Executor executor(2);
  obs::MetricRegistry registry;
  svc::ServerTelemetry telemetry;
  telemetry.flight_capacity = 16;
  svc::Server server({}, telemetry, executor, registry);
  const int port = server.listen();

  svc::Client client;
  client.set_trace_id("bad-session-probe");
  client.connect("127.0.0.1", port);
  const svc::CloseReply closed = client.close_session("s999");
  EXPECT_FALSE(closed.ok);
  EXPECT_EQ(closed.error.code, svc::ErrorCode::kUnknownSession);
  client.disconnect();
  server.stop();
  server.wait();

  const auto records = server.flight()->snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, "unknown_session");
  EXPECT_EQ(records[0].trace_id, "bad-session-probe");
  EXPECT_EQ(records[0].op, "session.close");
  EXPECT_EQ(records[0].session, "s999");
}

}  // namespace
