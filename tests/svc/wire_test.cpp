// Wire layer: framing under arbitrary fragmentation, frame caps, and the
// bit-exact model / graph codec.
#include "moldsched/svc/wire.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/general_model.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/util/rng.hpp"

namespace {

using namespace moldsched;

TEST(FrameCodec, RoundTripsSinglePayload) {
  const std::string frame = svc::encode_frame("hello");
  ASSERT_EQ(frame.size(), 9u);
  svc::FrameReader reader;
  reader.feed(frame.data(), frame.size());
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "hello");
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameCodec, EmptyPayloadIsAValidFrame) {
  const std::string frame = svc::encode_frame("");
  svc::FrameReader reader;
  reader.feed(frame.data(), frame.size());
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_TRUE(payload->empty());
}

TEST(FrameCodec, ReassemblesAcrossEveryFragmentation) {
  const std::string a = svc::encode_frame("first payload");
  const std::string b = svc::encode_frame(std::string(300, 'x'));
  const std::string stream = a + b;
  // Split the byte stream at every position; framing must never care.
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    svc::FrameReader reader;
    reader.feed(stream.data(), cut);
    std::vector<std::string> got;
    while (auto p = reader.next()) got.push_back(*p);
    reader.feed(stream.data() + cut, stream.size() - cut);
    while (auto p = reader.next()) got.push_back(*p);
    ASSERT_EQ(got.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(got[0], "first payload");
    EXPECT_EQ(got[1], std::string(300, 'x'));
  }
}

TEST(FrameCodec, ByteAtATimeFeeding) {
  const std::string frame = svc::encode_frame("drip-fed");
  svc::FrameReader reader;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.feed(frame.data() + i, 1);
    EXPECT_FALSE(reader.next().has_value());
  }
  reader.feed(frame.data() + frame.size() - 1, 1);
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "drip-fed");
}

TEST(FrameCodec, EncodeRejectsPayloadOverCap) {
  EXPECT_THROW(svc::encode_frame(std::string(100, 'x'), 99),
               std::invalid_argument);
  EXPECT_NO_THROW(svc::encode_frame(std::string(100, 'x'), 100));
}

TEST(FrameCodec, ReaderRejectsHeaderOverCap) {
  // Header announcing 2^31 bytes against a small cap: must throw as soon
  // as the 4 header bytes arrive, without allocating the payload.
  const char header[4] = {'\x80', '\x00', '\x00', '\x00'};
  svc::FrameReader reader(1 << 20);
  reader.feed(header, 4);
  EXPECT_THROW(reader.next(), std::invalid_argument);
}

TEST(FrameCodec, ManySmallFramesStayLinear) {
  svc::FrameReader reader;
  for (int i = 0; i < 10000; ++i) {
    const std::string frame = svc::encode_frame(std::to_string(i));
    reader.feed(frame.data(), frame.size());
    const auto payload = reader.next();
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(*payload, std::to_string(i));
  }
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(WireNumber, RoundTripsExactBitPatterns) {
  util::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform(-1e12, 1e12) *
                     (i % 3 == 0 ? 1e-9 : 1.0);
    const double back = std::strtod(svc::wire_number(v).c_str(), nullptr);
    EXPECT_EQ(back, v);
  }
  // Awkward exact values.
  for (const double v : {0.1, 1.0 / 3.0, std::numeric_limits<double>::min(),
                         std::numeric_limits<double>::denorm_min(),
                         std::numeric_limits<double>::max(), 0.0}) {
    EXPECT_EQ(std::strtod(svc::wire_number(v).c_str(), nullptr), v);
  }
}

void expect_model_roundtrip(const model::SpeedupModel& m, int P) {
  const std::string encoded = svc::encode_model(m);
  const auto decoded = svc::decode_model(io::parse_json(encoded));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->kind(), m.kind());
  // Bit-exact: identical fingerprints and identical time(p) everywhere.
  const auto f1 = m.fingerprint(), f2 = decoded->fingerprint();
  EXPECT_EQ(f1.cacheable, f2.cacheable);
  EXPECT_EQ(f1.words, f2.words);
  for (int p = 1; p <= P; ++p) EXPECT_EQ(decoded->time(p), m.time(p));
  // Re-encode stability.
  EXPECT_EQ(svc::encode_model(*decoded), encoded);
}

TEST(ModelCodec, RoundTripsEveryWireKind) {
  expect_model_roundtrip(model::RooflineModel(3.7, 12), 32);
  expect_model_roundtrip(
      model::RooflineModel(5.0,
                           model::GeneralParams::kUnboundedParallelism),
      32);
  expect_model_roundtrip(model::CommunicationModel(100.0, 0.37), 32);
  expect_model_roundtrip(model::AmdahlModel(250.0, 1.0 / 3.0), 32);
  model::GeneralParams params;
  params.w = 123.456;
  params.d = 0.1;
  params.c = 0.01;
  params.pbar = 17;
  expect_model_roundtrip(model::GeneralModel(params), 32);
  expect_model_roundtrip(model::TableModel({5.0, 3.0, 2.5, 2.5001}), 4);
}

TEST(ModelCodec, RandomParametersSurviveExactly) {
  util::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    model::GeneralParams params;
    params.w = rng.uniform(1e-6, 1e9);
    params.d = rng.uniform(0.0, 10.0);
    params.c = rng.uniform(0.0, 1.0);
    expect_model_roundtrip(model::GeneralModel(params), 16);
  }
}

TEST(ModelCodec, RejectsMalformedModels) {
  EXPECT_THROW(svc::decode_model(io::parse_json("42")),
               std::invalid_argument);
  EXPECT_THROW(svc::decode_model(io::parse_json("{}")),
               std::invalid_argument);
  EXPECT_THROW(svc::decode_model(io::parse_json("{\"kind\":\"nope\"}")),
               std::invalid_argument);
  EXPECT_THROW(
      svc::decode_model(io::parse_json("{\"kind\":\"amdahl\",\"w\":1}")),
      std::invalid_argument);  // missing d
  EXPECT_THROW(svc::decode_model(
                   io::parse_json("{\"kind\":\"arbitrary\",\"times\":[]}")),
               std::invalid_argument);  // TableModel rejects empty tables
  EXPECT_THROW(
      svc::decode_model(io::parse_json(
          "{\"kind\":\"roofline\",\"w\":1,\"pbar\":2.5}")),
      std::invalid_argument);  // non-integer pbar
}

TEST(ModelCodec, FunctionModelIsNotSerializable) {
  const model::FunctionModel m([](int p) { return 1.0 / p; }, "f");
  EXPECT_THROW(svc::encode_model(m), std::invalid_argument);
}

TEST(GraphCodec, RoundTripsTasksEdgesAndNames) {
  graph::TaskGraph g;
  g.add_task(std::make_shared<model::AmdahlModel>(10.0, 1.0), "load \"x\"");
  g.add_task(std::make_shared<model::RooflineModel>(4.0, 8), "");
  g.add_task(std::make_shared<model::TableModel>(
                 std::vector<double>{3.0, 2.0}),
             "reduce");
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);

  const std::string encoded = svc::encode_graph(g);
  const graph::TaskGraph back = svc::decode_graph(encoded);
  ASSERT_EQ(back.num_tasks(), 3);
  EXPECT_EQ(back.num_edges(), 3u);
  EXPECT_EQ(back.name(0), "load \"x\"");
  EXPECT_EQ(back.name(2), "reduce");
  EXPECT_TRUE(back.has_edge(0, 1));
  EXPECT_TRUE(back.has_edge(1, 2));
  for (graph::TaskId v = 0; v < 3; ++v)
    for (int p = 1; p <= 8; ++p)
      EXPECT_EQ(back.model_of(v).time(p), g.model_of(v).time(p));
  EXPECT_EQ(svc::encode_graph(back), encoded);
}

TEST(GraphCodec, RejectsBadDocuments) {
  EXPECT_THROW(svc::decode_graph("[]"), std::invalid_argument);
  EXPECT_THROW(svc::decode_graph("{}"), std::invalid_argument);
  // Non-dense ids.
  EXPECT_THROW(
      svc::decode_graph("{\"tasks\":[{\"id\":1,\"model\":{\"kind\":"
                        "\"amdahl\",\"w\":1,\"d\":1}}]}"),
      std::invalid_argument);
  // Edge endpoint out of range.
  EXPECT_THROW(
      svc::decode_graph(
          "{\"tasks\":[{\"id\":0,\"model\":{\"kind\":\"amdahl\",\"w\":1,"
          "\"d\":1}}],\"edges\":[[0,5]]}"),
      std::invalid_argument);
}

}  // namespace
