// End-to-end server/client tests over real sockets on an ephemeral port:
// bit-exact streamed scheduling, admission control (overload, quota,
// reaper), remote stop, and malformed-input resilience.
#include "moldsched/svc/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "moldsched/engine/executor.hpp"
#include "moldsched/graph/adversary.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/obs/metrics.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/svc/client.hpp"

namespace {

using namespace moldsched;

svc::ReleaseParams release_of(const graph::TaskGraph& g, graph::TaskId v) {
  svc::ReleaseParams params;
  params.name = g.name(v);
  params.model = g.model_ptr(v);
  for (const graph::TaskId u : g.predecessors(v)) params.preds.push_back(u);
  params.expected_task = v;
  return params;
}

/// Retry loop shared by every request kind below: an `overloaded`
/// rejection means the request was not admitted — resend it. Any other
/// failure is recorded and ends the loop (`send` result with ok=false).
template <typename Reply, typename Send>
Reply retry_overloaded(const Send& send, std::uint64_t* retries) {
  for (;;) {
    const Reply r = send();
    if (r.ok || r.error.code != svc::ErrorCode::kOverloaded) {
      EXPECT_TRUE(r.ok) << r.error.message;
      return r;
    }
    if (retries != nullptr) ++*retries;
    std::this_thread::yield();
  }
}

/// Streams `g` through one client session and returns the close reply,
/// retrying any request the server rejected with `overloaded` (the
/// contract under backpressure).
svc::CloseReply stream_instance(svc::Client& client, const graph::TaskGraph& g,
                                const svc::OpenParams& open,
                                std::uint64_t* retries = nullptr) {
  const svc::OpenReply opened = retry_overloaded<svc::OpenReply>(
      [&] { return client.open(open); }, retries);
  if (!opened.ok) return {};
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    const svc::ReleaseParams params = release_of(g, v);
    const svc::ReleaseReply r = retry_overloaded<svc::ReleaseReply>(
        [&] { return client.release(opened.session, params); }, retries);
    if (!r.ok) return {};
  }
  return retry_overloaded<svc::CloseReply>(
      [&] { return client.close_session(opened.session); }, retries);
}

TEST(ServerClient, StreamedAdversaryMatchesInProcessBitExactly) {
  engine::Executor executor(2);
  obs::MetricRegistry registry;
  svc::Server server({}, executor, registry);
  const int port = server.listen();
  ASSERT_GT(port, 0);
  EXPECT_EQ(server.port(), port);

  const auto inst = graph::roofline_adversary(16, 0.25);
  svc::OpenParams open;
  open.P = inst.P;
  open.mu = inst.mu;
  open.trace = true;

  svc::Client client;
  client.connect("127.0.0.1", port);
  const svc::CloseReply closed = stream_instance(client, inst.graph, open);

  sched::SchedulerSpec spec = sched::spec_by_name("lpa", inst.mu);
  const core::ScheduleResult reference = spec.run(inst.graph, inst.P);
  EXPECT_EQ(closed.makespan, reference.makespan);
  EXPECT_EQ(closed.allocation, reference.allocation);
  EXPECT_EQ(closed.num_events, reference.num_events);
  ASSERT_EQ(closed.records.size(), reference.trace.records().size());
  for (std::size_t i = 0; i < closed.records.size(); ++i) {
    EXPECT_EQ(closed.records[i].task, reference.trace.records()[i].task);
    EXPECT_EQ(closed.records[i].start, reference.trace.records()[i].start);
    EXPECT_EQ(closed.records[i].end, reference.trace.records()[i].end);
    EXPECT_EQ(closed.records[i].procs, reference.trace.records()[i].procs);
  }
  EXPECT_NE(closed.trace_json.find("traceEvents"), std::string::npos);

  EXPECT_GE(registry.counter("svc.requests.received").value(),
            static_cast<std::uint64_t>(inst.graph.num_tasks()) + 2);
  EXPECT_EQ(registry.counter("svc.sessions.opened").value(), 1u);
  EXPECT_EQ(registry.counter("svc.sessions.closed").value(), 1u);
  EXPECT_EQ(server.num_sessions(), 0);

  client.disconnect();
  server.stop();
  server.wait();
  EXPECT_TRUE(server.stopped());
}

TEST(ServerClient, SessionLimitRejectsWithOverloaded) {
  engine::Executor executor(2);
  obs::MetricRegistry registry;
  svc::ServerLimits limits;
  limits.max_sessions = 1;
  svc::Server server(limits, executor, registry);
  const int port = server.listen();

  svc::Client client;
  client.connect("127.0.0.1", port);
  svc::OpenParams open;
  open.P = 4;
  const svc::OpenReply first = client.open(open);
  ASSERT_TRUE(first.ok);
  const svc::OpenReply second = client.open(open);
  EXPECT_FALSE(second.ok);
  EXPECT_EQ(second.error.code, svc::ErrorCode::kOverloaded);
  EXPECT_GE(registry.counter("svc.rejected.overloaded").value(), 1u);
  // Closing the first session frees the slot.
  EXPECT_TRUE(client.close_session(first.session).ok);
  EXPECT_TRUE(client.open(open).ok);
}

TEST(ServerClient, BackpressureUnderConcurrencyRejectsButStaysCorrect) {
  engine::Executor executor(4);
  obs::MetricRegistry registry;
  svc::ServerLimits limits;
  limits.max_in_flight = 1;  // every overlapping request is rejected
  svc::Server server(limits, executor, registry);
  const int port = server.listen();

  graph::WorkflowModelConfig config;
  config.kind = model::ModelKind::kAmdahl;
  const graph::TaskGraph g = graph::cholesky(4, config);
  sched::SchedulerSpec spec = sched::spec_by_name("lpa", 0.25);
  const double reference = spec.run(g, 8).makespan;

  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::vector<double> makespans(kClients, -1.0);
  std::atomic<std::uint64_t> retries{0};
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      svc::Client client;
      client.connect("127.0.0.1", port);
      svc::OpenParams open;
      open.P = 8;
      std::uint64_t local_retries = 0;
      const svc::CloseReply closed =
          stream_instance(client, g, open, &local_retries);
      makespans[static_cast<std::size_t>(i)] = closed.makespan;
      retries += local_retries;
    });
  }
  for (auto& t : threads) t.join();

  // Rejections never corrupt results: every stream converges to the same
  // bit-exact makespan after retries.
  for (const double m : makespans) EXPECT_EQ(m, reference);
  EXPECT_EQ(retries.load(),
            registry.counter("svc.rejected.overloaded").value());
}

TEST(ServerClient, UnknownSessionAndQuota) {
  engine::Executor executor(2);
  obs::MetricRegistry registry;
  svc::ServerLimits limits;
  limits.max_tasks_per_session = 2;
  svc::Server server(limits, executor, registry);
  const int port = server.listen();

  svc::Client client;
  client.connect("127.0.0.1", port);

  svc::ReleaseParams params;
  params.model = std::make_shared<model::AmdahlModel>(4.0, 0.5);
  const svc::ReleaseReply ghost = client.release("s999", params);
  EXPECT_FALSE(ghost.ok);
  EXPECT_EQ(ghost.error.code, svc::ErrorCode::kUnknownSession);
  EXPECT_FALSE(client.close_session("s999").ok);

  svc::OpenParams open;
  open.P = 4;
  const svc::OpenReply opened = client.open(open);
  ASSERT_TRUE(opened.ok);
  params.expected_task = 0;
  EXPECT_TRUE(client.release(opened.session, params).ok);
  params.expected_task = 1;
  EXPECT_TRUE(client.release(opened.session, params).ok);
  params.expected_task = 2;
  const svc::ReleaseReply third = client.release(opened.session, params);
  EXPECT_FALSE(third.ok);
  EXPECT_EQ(third.error.code, svc::ErrorCode::kQuotaExceeded);
  // The session survives the quota rejection and closes with 2 tasks.
  const svc::CloseReply closed = client.close_session(opened.session);
  ASSERT_TRUE(closed.ok);
  EXPECT_EQ(closed.num_tasks, 2);
}

TEST(ServerClient, IdleSessionsAreReaped) {
  engine::Executor executor(2);
  obs::MetricRegistry registry;
  svc::ServerLimits limits;
  limits.idle_timeout_s = 0.05;
  svc::Server server(limits, executor, registry);
  const int port = server.listen();

  svc::Client client;
  client.connect("127.0.0.1", port);
  svc::OpenParams open;
  open.P = 2;
  const svc::OpenReply opened = client.open(open);
  ASSERT_TRUE(opened.ok);
  EXPECT_EQ(server.num_sessions(), 1);

  // The reaper sweeps about once a second; give it two chances.
  for (int i = 0; i < 50 && server.num_sessions() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(server.num_sessions(), 0);
  EXPECT_GE(registry.counter("svc.sessions.reaped").value(), 1u);

  svc::ReleaseParams params;
  params.model = std::make_shared<model::AmdahlModel>(1.0, 0.1);
  const svc::ReleaseReply r = client.release(opened.session, params);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, svc::ErrorCode::kUnknownSession);
}

TEST(ServerClient, RemoteStopIsForbiddenByDefault) {
  engine::Executor executor(2);
  obs::MetricRegistry registry;
  svc::Server server({}, executor, registry);
  const int port = server.listen();

  svc::Client client;
  client.connect("127.0.0.1", port);
  const svc::StopReply r = client.stop_server();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, svc::ErrorCode::kForbidden);
  EXPECT_FALSE(server.stopped());
  // The server keeps serving after the refused stop.
  svc::OpenParams open;
  open.P = 2;
  EXPECT_TRUE(client.open(open).ok);
}

TEST(ServerClient, RemoteStopShutsDownWhenAllowed) {
  engine::Executor executor(2);
  obs::MetricRegistry registry;
  svc::ServerLimits limits;
  limits.allow_remote_stop = true;
  svc::Server server(limits, executor, registry);
  const int port = server.listen();

  svc::Client client;
  client.connect("127.0.0.1", port);
  const svc::StopReply r = client.stop_server();
  EXPECT_TRUE(r.ok) << r.error.message;
  EXPECT_TRUE(server.wait_for(10.0));
  EXPECT_TRUE(server.stopped());
}

TEST(ServerClient, MalformedPayloadsGetErrorRepliesNotHangs) {
  engine::Executor executor(2);
  obs::MetricRegistry registry;
  svc::Server server({}, executor, registry);
  const int port = server.listen();

  svc::Client client;
  client.connect("127.0.0.1", port);

  const svc::StopReply bad_json =
      svc::parse_stop_reply(client.roundtrip("{definitely not json"));
  EXPECT_FALSE(bad_json.ok);
  EXPECT_EQ(bad_json.error.code, svc::ErrorCode::kParseError);

  const svc::StopReply bad_op = svc::parse_stop_reply(
      client.roundtrip("{\"op\":\"task.explode\",\"seq\":7}"));
  EXPECT_FALSE(bad_op.ok);
  EXPECT_EQ(bad_op.error.code, svc::ErrorCode::kUnknownOp);
  EXPECT_EQ(bad_op.seq, 7);

  const svc::StopReply bad_open = svc::parse_stop_reply(
      client.roundtrip("{\"op\":\"session.open\",\"P\":-3}"));
  EXPECT_FALSE(bad_open.ok);
  EXPECT_EQ(bad_open.error.code, svc::ErrorCode::kBadRequest);

  EXPECT_GE(registry.counter("svc.replies.error").value(), 3u);
  // The connection is still healthy after three error replies.
  svc::OpenParams open;
  open.P = 2;
  EXPECT_TRUE(client.open(open).ok);
}

TEST(ServerClient, DestructorDrainsWithLiveConnections) {
  engine::Executor executor(2);
  obs::MetricRegistry registry;
  svc::Client client;
  {
    svc::Server server({}, executor, registry);
    const int port = server.listen();
    client.connect("127.0.0.1", port);
    svc::OpenParams open;
    open.P = 2;
    ASSERT_TRUE(client.open(open).ok);
    // Destructor runs with the session open and the client connected.
  }
  // After shutdown the client sees a closed socket (throws) rather than
  // a hang.
  svc::OpenParams open;
  open.P = 2;
  EXPECT_THROW((void)client.open(open), std::runtime_error);
}

}  // namespace
