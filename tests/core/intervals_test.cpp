#include "moldsched/core/intervals.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moldsched::core {
namespace {

/// Hand-built trace on P = 10, mu = 0.3: thresholds ceil(3) = 3 and
/// ceil(7) = 7.
sim::Trace make_trace() {
  sim::Trace t;
  // [0, 1): 2 procs  -> I1 (2 < 3)
  // [1, 2): 5 procs  -> I2 (3 <= 5 < 7)
  // [2, 3): 8 procs  -> I3 (>= 7)
  t.record_start(0, 0.0, 2);
  t.record_end(0, 1.0);
  t.record_start(1, 1.0, 5);
  t.record_end(1, 2.0);
  t.record_start(2, 2.0, 8);
  t.record_end(2, 3.0);
  return t;
}

TEST(IntervalsTest, ThresholdsMatchPaperDefinition) {
  const auto b = classify_intervals(make_trace(), 10, 0.3);
  EXPECT_EQ(b.low_threshold, 3);   // ceil(0.3 * 10)
  EXPECT_EQ(b.high_threshold, 7);  // ceil(0.7 * 10)
}

TEST(IntervalsTest, ClassifiesEachCategory) {
  const auto b = classify_intervals(make_trace(), 10, 0.3);
  EXPECT_DOUBLE_EQ(b.t0, 0.0);
  EXPECT_DOUBLE_EQ(b.t1, 1.0);
  EXPECT_DOUBLE_EQ(b.t2, 1.0);
  EXPECT_DOUBLE_EQ(b.t3, 1.0);
  EXPECT_DOUBLE_EQ(b.makespan, 3.0);
  EXPECT_DOUBLE_EQ(b.total(), b.makespan);
}

TEST(IntervalsTest, BoundaryUtilizationGoesToUpperCategory) {
  sim::Trace t;
  t.record_start(0, 0.0, 3);  // exactly ceil(mu P): belongs to I2
  t.record_end(0, 1.0);
  t.record_start(1, 1.0, 7);  // exactly ceil((1-mu) P): belongs to I3
  t.record_end(1, 2.0);
  const auto b = classify_intervals(t, 10, 0.3);
  EXPECT_DOUBLE_EQ(b.t1, 0.0);
  EXPECT_DOUBLE_EQ(b.t2, 1.0);
  EXPECT_DOUBLE_EQ(b.t3, 1.0);
}

TEST(IntervalsTest, InteriorIdleCountsAsT0) {
  sim::Trace t;
  t.record_start(0, 0.0, 1);
  t.record_end(0, 1.0);
  t.record_start(1, 3.0, 1);
  t.record_end(1, 4.0);
  const auto b = classify_intervals(t, 10, 0.3);
  EXPECT_DOUBLE_EQ(b.t0, 2.0);
  EXPECT_DOUBLE_EQ(b.t1, 2.0);
}

TEST(IntervalsTest, FullMachineIsI3) {
  sim::Trace t;
  t.record_start(0, 0.0, 10);
  t.record_end(0, 2.0);
  const auto b = classify_intervals(t, 10, 0.3);
  EXPECT_DOUBLE_EQ(b.t3, 2.0);
  EXPECT_DOUBLE_EQ(b.t1 + b.t2 + b.t0, 0.0);
}

TEST(IntervalsTest, RejectsBadArguments) {
  const sim::Trace t;
  EXPECT_THROW((void)classify_intervals(t, 0, 0.3), std::invalid_argument);
  EXPECT_THROW((void)classify_intervals(t, 4, 0.0), std::invalid_argument);
  EXPECT_THROW((void)classify_intervals(t, 4, 0.5), std::invalid_argument);
}

TEST(IntervalsTest, LemmaLhsFormulas) {
  IntervalBreakdown b;
  b.t1 = 2.0;
  b.t2 = 3.0;
  b.t3 = 4.0;
  EXPECT_DOUBLE_EQ(lemma3_lhs(b, 0.25), 0.25 * 3.0 + 0.75 * 4.0);
  EXPECT_DOUBLE_EQ(lemma4_lhs(b, 0.25, 2.0), 2.0 / 2.0 + 0.25 * 3.0);
  EXPECT_THROW((void)lemma4_lhs(b, 0.25, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace moldsched::core
