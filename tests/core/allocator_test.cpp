#include "moldsched/core/allocator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::core {
namespace {

constexpr double kMuRoofline = 0.38196601125010515;

TEST(LpaAllocatorTest, RejectsBadMu) {
  EXPECT_THROW(LpaAllocator(0.0), std::invalid_argument);
  EXPECT_THROW(LpaAllocator(-0.1), std::invalid_argument);
  EXPECT_THROW(LpaAllocator(0.4), std::invalid_argument);
  EXPECT_NO_THROW(LpaAllocator{kMuRoofline});
  EXPECT_NO_THROW(LpaAllocator{0.2});
}

TEST(LpaAllocatorTest, DeltaMatchesFormula) {
  const LpaAllocator a(0.25);
  EXPECT_NEAR(a.delta(), (1.0 - 0.5) / (0.25 * 0.75), 1e-12);
  const LpaAllocator b(kMuRoofline);
  EXPECT_NEAR(b.delta(), 1.0, 1e-12);
}

TEST(LpaAllocatorTest, CapIsCeilMuP) {
  const LpaAllocator a(0.25);
  EXPECT_EQ(a.cap(100), 25);
  EXPECT_EQ(a.cap(101), 26);
  EXPECT_EQ(a.cap(1), 1);
  EXPECT_THROW((void)a.cap(0), std::invalid_argument);
}

TEST(LpaAllocatorTest, RooflineWholeMachineTaskIsCapped) {
  // Theorem 5's task: w = P, pbar = P at mu = (3-sqrt(5))/2.
  const int P = 100;
  const LpaAllocator alloc(kMuRoofline);
  const model::RooflineModel m(static_cast<double>(P), P);
  const auto d = alloc.decide(m, P);
  EXPECT_EQ(d.p_max, P);
  EXPECT_DOUBLE_EQ(d.t_min, 1.0);
  EXPECT_DOUBLE_EQ(d.a_min, static_cast<double>(P));
  // delta = 1 forces the initial allocation to p_max = P...
  EXPECT_EQ(d.initial, P);
  // ...then Step 2 caps it at ceil(mu P) = 39.
  EXPECT_EQ(d.final_alloc, 39);
  EXPECT_EQ(alloc.allocate(m, P), 39);
}

TEST(LpaAllocatorTest, CommunicationModelHandComputedCase) {
  // w = 100, c = 1: p_max = 10, t_min = 19, a_min = 100.
  const model::CommunicationModel m(100.0, 1.0);
  const LpaAllocator alloc(0.324);
  const int P = 64;
  const auto d = alloc.decide(m, P);
  EXPECT_EQ(d.p_max, 10);
  EXPECT_DOUBLE_EQ(d.t_min, 19.0);
  EXPECT_DOUBLE_EQ(d.a_min, 100.0);
  // threshold = delta * 19 ~ 30.55; t(3) = 35.33 > it, t(4) = 28 <= it.
  EXPECT_EQ(d.initial, 4);
  EXPECT_EQ(d.final_alloc, 4);  // cap = ceil(0.324*64) = 21, no reduction
  EXPECT_NEAR(d.alpha, 1.12, 1e-12);
  EXPECT_NEAR(d.beta, 28.0 / 19.0, 1e-12);
}

TEST(LpaAllocatorTest, AmdahlModelHandComputedCase) {
  // w = 100, d = 10, P = 10: p_max = 10, t_min = 20, a_min = 110.
  const model::AmdahlModel m(100.0, 10.0);
  const LpaAllocator alloc(0.271);
  const auto d = alloc.decide(m, 10);
  EXPECT_EQ(d.p_max, 10);
  EXPECT_DOUBLE_EQ(d.t_min, 20.0);
  EXPECT_DOUBLE_EQ(d.a_min, 110.0);
  // threshold ~ 2.318 * 20 = 46.37: t(2) = 60 > it, t(3) = 43.3 <= it.
  EXPECT_EQ(d.initial, 3);
  EXPECT_EQ(d.final_alloc, 3);
}

TEST(LpaAllocatorTest, InitialAllocationIsMinimalFeasible) {
  util::Rng rng(123);
  const int P = 40;
  for (const auto kind :
       {model::ModelKind::kRoofline, model::ModelKind::kCommunication,
        model::ModelKind::kAmdahl, model::ModelKind::kGeneral}) {
    const model::ModelSampler sampler(kind);
    const LpaAllocator alloc(0.3);
    for (int rep = 0; rep < 30; ++rep) {
      const auto m = sampler.sample(rng, P);
      const auto d = alloc.decide(*m, P);
      // Feasible: beta <= delta (with rounding slack).
      EXPECT_LE(d.beta, alloc.delta() * (1.0 + 1e-9)) << m->describe();
      // Minimal: one processor less would violate the constraint.
      if (d.initial > 1) {
        const double beta_prev = m->time(d.initial - 1) / d.t_min;
        EXPECT_GT(beta_prev, alloc.delta() * (1.0 - 1e-9)) << m->describe();
      }
      // Step 2 only ever reduces.
      EXPECT_LE(d.final_alloc, d.initial);
      EXPECT_LE(d.final_alloc, alloc.cap(P));
      EXPECT_GE(d.final_alloc, 1);
    }
  }
}

TEST(LpaAllocatorTest, MatchesExhaustiveReferenceOnRandomModels) {
  util::Rng rng(321);
  const int P = 24;
  const LpaAllocator alloc(0.25);
  for (const auto kind :
       {model::ModelKind::kCommunication, model::ModelKind::kAmdahl,
        model::ModelKind::kGeneral}) {
    const model::ModelSampler sampler(kind);
    for (int rep = 0; rep < 25; ++rep) {
      const auto m = sampler.sample(rng, P);
      const auto d = alloc.decide(*m, P);
      // Exhaustive reference for Step 1.
      int best = -1;
      double best_area = 0.0;
      const double threshold = alloc.delta() * d.t_min * (1.0 + 1e-9);
      for (int p = 1; p <= d.p_max; ++p) {
        if (m->time(p) <= threshold &&
            (best < 0 || m->area(p) < best_area - 1e-12)) {
          best = p;
          best_area = m->area(p);
        }
      }
      ASSERT_GT(best, 0) << m->describe();
      EXPECT_NEAR(m->area(d.initial), best_area, 1e-9 * best_area)
          << m->describe();
    }
  }
}

TEST(LpaAllocatorTest, ArbitraryModelUsesExhaustiveSearch) {
  // Non-monotone table: minimum area inside the feasible set is at p = 2,
  // not at the smallest feasible p.
  // t: p=1 -> 10, p=2 -> 4, p=3 -> 3.9, p=4 -> 1.0
  // a:      10,       8,        11.7,       4.0
  const model::TableModel m({10.0, 4.0, 3.9, 1.0});
  const LpaAllocator alloc(0.2);  // delta = 3.75, t_min = 1 -> threshold 3.75
  // Feasible allocations: none of p=1..3 (all t > 3.75) except p=4.
  const auto d = alloc.decide(m, 4);
  EXPECT_EQ(d.p_max, 4);
  EXPECT_EQ(d.initial, 4);
  // Now loosen: with delta*t_min above 4, p=2 (area 8) beats p=4 (area 4)?
  // No: area(4) = 4 < 8, so p=4 still wins on area.
  EXPECT_DOUBLE_EQ(d.alpha, 1.0);
}

TEST(LpaAllocatorTest, ArbitraryModelPicksMinAreaFeasible) {
  // t: 2.0, 1.9, 1.0, 0.9 -> a: 2.0, 3.8, 3.0, 3.6; t_min = 0.9.
  const model::TableModel m({2.0, 1.9, 1.0, 0.9});
  const LpaAllocator alloc(0.3);  // delta ~ 1.905, threshold ~ 1.714
  const auto d = alloc.decide(m, 4);
  // Feasible: p = 3 (t=1.0) and p = 4 (t=0.9); min area is p = 3.
  EXPECT_EQ(d.initial, 3);
}

TEST(LpaAllocatorTest, SingleProcessorPlatform) {
  const model::AmdahlModel m(10.0, 1.0);
  const LpaAllocator alloc(0.3);
  EXPECT_EQ(alloc.allocate(m, 1), 1);
}

TEST(LpaAllocatorTest, NameMentionsMu) {
  const LpaAllocator alloc(0.25);
  EXPECT_NE(alloc.name().find("0.25"), std::string::npos);
}

// Lemmas 6-9: at the per-model optimal (mu*, x*), the allocator's alpha
// never exceeds the lemma's alpha_x (the lemma exhibits *a* feasible
// allocation; Algorithm 2 minimizes alpha over all feasible ones).
class LemmaAlphaBoundTest
    : public testing::TestWithParam<model::ModelKind> {};

TEST_P(LemmaAlphaBoundTest, AllocatorAlphaWithinLemmaBound) {
  const auto kind = GetParam();
  const double mu = analysis::optimal_mu(kind);
  const auto choice = analysis::best_x(kind, mu);
  ASSERT_TRUE(choice.feasible);
  const LpaAllocator alloc(mu);

  util::Rng rng(777);
  const model::ModelSampler sampler(kind);
  for (const int P : {8, 64, 333}) {
    for (int rep = 0; rep < 40; ++rep) {
      const auto m = sampler.sample(rng, P);
      const auto d = alloc.decide(*m, P);
      EXPECT_LE(d.alpha, choice.alpha + 1e-6)
          << m->describe() << " P=" << P << " mu=" << mu;
      EXPECT_LE(d.beta, analysis::delta_of_mu(mu) + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LemmaAlphaBoundTest,
                         testing::Values(model::ModelKind::kRoofline,
                                         model::ModelKind::kCommunication,
                                         model::ModelKind::kAmdahl,
                                         model::ModelKind::kGeneral),
                         [](const auto& param_info) {
                           return model::to_string(param_info.param);
                         });

}  // namespace
}  // namespace moldsched::core
