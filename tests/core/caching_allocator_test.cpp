// The memoizing CachingAllocator and its DecisionCache: the decorator
// must be decision-for-decision identical to the wrapped allocator, the
// cache must evict FIFO at capacity, and the hit/miss totals must be
// mirrored into the obs registry under "core.alloc_cache.*".
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "moldsched/core/allocator.hpp"
#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/obs/metrics.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::core {
namespace {

model::ModelPtr table_model(std::vector<double> times) {
  return std::make_shared<model::TableModel>(std::move(times));
}

TEST(DecisionCacheTest, LookupMissThenHitAfterInsert) {
  DecisionCache cache(8);
  const DecisionCache::Key key{1, {2, 3, 4, 5}, 0, 16};
  EXPECT_EQ(cache.lookup(key), -1);
  EXPECT_EQ(cache.misses(), 1u);
  cache.insert(key, 7);
  EXPECT_EQ(cache.lookup(key), 7);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DecisionCacheTest, InsertIsIdempotent) {
  DecisionCache cache(8);
  const DecisionCache::Key key{1, {2, 3, 4, 5}, 0, 16};
  cache.insert(key, 7);
  cache.insert(key, 9);  // ignored: first insertion wins
  EXPECT_EQ(cache.lookup(key), 7);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DecisionCacheTest, EvictsOldestAtCapacity) {
  DecisionCache cache(4);
  EXPECT_EQ(cache.capacity(), 4u);
  for (std::int32_t p = 1; p <= 5; ++p)
    cache.insert({1, {2, 3, 4, 5}, 0, p}, p);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 1u);
  // FIFO: the first key (P=1) died; the other four survive.
  EXPECT_EQ(cache.lookup({1, {2, 3, 4, 5}, 0, 1}), -1);
  for (std::int32_t p = 2; p <= 5; ++p)
    EXPECT_EQ(cache.lookup({1, {2, 3, 4, 5}, 0, p}), p);
}

TEST(DecisionCacheTest, ClearForgetsEverything) {
  DecisionCache cache(8);
  const DecisionCache::Key key{1, {2, 3, 4, 5}, 0, 16};
  cache.insert(key, 7);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(key), -1);
}

TEST(DecisionCacheTest, RejectsZeroCapacity) {
  EXPECT_THROW(DecisionCache cache(0), std::invalid_argument);
}

TEST(DecisionCacheTest, ProcessWideIsASingleton) {
  EXPECT_EQ(DecisionCache::process_wide().get(),
            DecisionCache::process_wide().get());
  EXPECT_NE(DecisionCache::process_wide(), nullptr);
}

TEST(CachingAllocatorTest, AgreesWithInnerAcrossModelsAndPlatforms) {
  util::Rng rng(42);
  const LpaAllocator lpa(0.25);
  const CachingAllocator cached(lpa);
  const model::ModelKind kinds[] = {
      model::ModelKind::kRoofline, model::ModelKind::kCommunication,
      model::ModelKind::kAmdahl, model::ModelKind::kGeneral};
  for (const auto kind : kinds) {
    const model::ModelSampler sampler(kind);
    for (const int P : {1, 2, 7, 64, 1000}) {
      for (int i = 0; i < 20; ++i) {
        const auto m = sampler.sample(rng, P);
        const int want = lpa.allocate(*m, P);
        // First sighting (miss) and repeat (hit) must both agree.
        EXPECT_EQ(cached.allocate(*m, P), want) << m->describe();
        EXPECT_EQ(cached.allocate(*m, P), want) << m->describe();
      }
    }
  }
  EXPECT_GT(cached.cache().hits(), 0u);
}

TEST(CachingAllocatorTest, RepeatDecisionsAreServedFromTheCache) {
  const LpaAllocator lpa(0.25);
  const CachingAllocator cached(lpa);
  const auto m = table_model({10.0, 6.0, 4.5});
  const int first = cached.allocate(*m, 3);
  EXPECT_EQ(cached.cache().misses(), 1u);
  EXPECT_EQ(cached.cache().hits(), 0u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(cached.allocate(*m, 3), first);
  EXPECT_EQ(cached.cache().hits(), 5u);
  EXPECT_EQ(cached.cache().misses(), 1u);
}

TEST(CachingAllocatorTest, MirrorsHitAndMissTotalsIntoObsRegistry) {
  auto& reg = obs::default_registry();
  const auto hits0 = reg.counter("core.alloc_cache.hits").value();
  const auto misses0 = reg.counter("core.alloc_cache.misses").value();

  const LpaAllocator lpa(0.25);
  const CachingAllocator cached(lpa);
  const auto m = table_model({8.0, 5.0});
  (void)cached.allocate(*m, 2);  // miss
  (void)cached.allocate(*m, 2);  // hit
  (void)cached.allocate(*m, 2);  // hit

  EXPECT_EQ(reg.counter("core.alloc_cache.hits").value() - hits0, 2u);
  EXPECT_EQ(reg.counter("core.alloc_cache.misses").value() - misses0, 1u);
}

TEST(CachingAllocatorTest, EvictionsAreCountedAndMirrored) {
  auto& reg = obs::default_registry();
  const auto evict0 = reg.counter("core.alloc_cache.evictions").value();

  const LpaAllocator lpa(0.25);
  const auto cache = std::make_shared<DecisionCache>(2);
  const CachingAllocator cached(lpa, cache);
  const auto m1 = table_model({9.0, 5.0});
  const auto m2 = table_model({9.0, 6.0});
  const auto m3 = table_model({9.0, 7.0});
  (void)cached.allocate(*m1, 2);
  (void)cached.allocate(*m2, 2);
  (void)cached.allocate(*m3, 2);  // evicts m1's entry
  EXPECT_EQ(cache->evictions(), 1u);
  EXPECT_EQ(reg.counter("core.alloc_cache.evictions").value() - evict0, 1u);

  // The evicted decision is recomputed, not served stale.
  const auto misses = cache->misses();
  EXPECT_EQ(cached.allocate(*m1, 2), lpa.allocate(*m1, 2));
  EXPECT_EQ(cache->misses(), misses + 1);
}

TEST(CachingAllocatorTest, IsDeterministicAcrossFreshCaches) {
  const LpaAllocator lpa(0.21);
  std::vector<int> first, second;
  for (int run = 0; run < 2; ++run) {
    util::Rng rng(7);
    const model::ModelSampler sampler(model::ModelKind::kGeneral);
    const CachingAllocator cached(lpa);  // fresh private cache per run
    auto& out = run == 0 ? first : second;
    for (int i = 0; i < 50; ++i) {
      const auto m = sampler.sample(rng, 32);
      out.push_back(cached.allocate(*m, 32));
      out.push_back(cached.allocate(*m, 32));
    }
    EXPECT_EQ(cached.cache().hits(), 50u);
    EXPECT_EQ(cached.cache().misses(), 50u);
  }
  EXPECT_EQ(first, second);
}

TEST(CachingAllocatorTest, UncacheableFunctionModelsPassThrough) {
  const LpaAllocator lpa(0.25);
  const CachingAllocator cached(lpa);
  const model::FunctionModel fn([](int p) { return 12.0 / p; }, "f", true);
  EXPECT_FALSE(fn.fingerprint().cacheable);
  const int want = lpa.allocate(fn, 8);
  EXPECT_EQ(cached.allocate(fn, 8), want);
  EXPECT_EQ(cached.allocate(fn, 8), want);
  // Nothing was stored or counted: the cache never saw the model.
  EXPECT_EQ(cached.cache().size(), 0u);
  EXPECT_EQ(cached.cache().hits(), 0u);
  EXPECT_EQ(cached.cache().misses(), 0u);
}

TEST(CachingAllocatorTest, SharedCacheKeepsDistinctMuApart) {
  // Two LPA instances with different mu share one store; the
  // allocator_tag (hashed from name(), which embeds mu) must keep their
  // entries separate even for the identical (model, P) query.
  const LpaAllocator tight(0.05);
  const LpaAllocator loose(0.38);
  const auto cache = std::make_shared<DecisionCache>();
  const CachingAllocator cached_tight(tight, cache);
  const CachingAllocator cached_loose(loose, cache);
  const model::AmdahlModel m(100.0, 1.0);
  for (const int P : {8, 64, 512}) {
    const int want_tight = tight.allocate(m, P);
    const int want_loose = loose.allocate(m, P);
    // Warm both in interleaved order, then re-query.
    EXPECT_EQ(cached_tight.allocate(m, P), want_tight);
    EXPECT_EQ(cached_loose.allocate(m, P), want_loose);
    EXPECT_EQ(cached_tight.allocate(m, P), want_tight);
    EXPECT_EQ(cached_loose.allocate(m, P), want_loose);
  }
  // mu caps differ wildly at P=512: the decisions genuinely diverge,
  // so agreement above proves the entries did not cross-talk.
  EXPECT_NE(tight.allocate(m, 512), loose.allocate(m, 512));
}

TEST(CachingAllocatorTest, OwningConstructorKeepsInnerAlive) {
  auto inner = std::make_shared<const LpaAllocator>(0.25);
  const model::AmdahlModel m(50.0, 2.0);
  const int want = inner->allocate(m, 16);
  const CachingAllocator cached(std::move(inner));  // sole owner now
  EXPECT_EQ(cached.allocate(m, 16), want);
  EXPECT_EQ(cached.name(), "cached(lpa(mu=0.25))");
  EXPECT_THROW(CachingAllocator(std::shared_ptr<const Allocator>()),
               std::invalid_argument);
}

// Run under TSan in CI: readers race the seqlock L1 against concurrent
// inserts and must still return only correct decisions.
TEST(CachingAllocatorConcurrencyTest, ParallelLookupsAreRaceFreeAndCorrect) {
  const LpaAllocator lpa(0.25);
  const auto cache = std::make_shared<DecisionCache>(64);  // force evictions
  const CachingAllocator cached(lpa, cache);

  constexpr int kP = 128;
  std::vector<model::ModelPtr> models;
  std::vector<int> want;
  util::Rng rng(11);
  const model::ModelSampler sampler(model::ModelKind::kGeneral);
  for (int i = 0; i < 256; ++i) {
    models.push_back(sampler.sample(rng, kP));
    want.push_back(lpa.allocate(*models.back(), kP));
  }

  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    const std::size_t start = static_cast<std::size_t>(t % 2);
    threads.emplace_back([&, start] {
      for (int round = 0; round < 40; ++round) {
        for (std::size_t i = start; i < models.size(); i += 1 + start) {
          if (cached.allocate(*models[i], kP) != want[i])
            wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
}

}  // namespace
}  // namespace moldsched::core
