#include "moldsched/core/online_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::core {
namespace {

model::ModelPtr roofline(double w, int pbar) {
  return std::make_shared<model::RooflineModel>(w, pbar);
}

/// Allocator stub returning a fixed value regardless of the model.
class StubAllocator : public Allocator {
 public:
  explicit StubAllocator(int value) : value_(value) {}
  int allocate(const model::SpeedupModel&, int) const override {
    return value_;
  }
  std::string name() const override { return "stub"; }

 private:
  int value_;
};

TEST(OnlineSchedulerTest, SingleTask) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(8.0, 4));
  const LpaAllocator alloc(0.38196601125010515);
  const auto result = schedule_online(g, 4, alloc);
  // delta = 1 -> initial = p_max = 4; cap = ceil(0.382*4) = 2 -> t = 4.
  EXPECT_EQ(result.allocation[0], 2);
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
  sim::expect_valid_schedule(g, result.trace, 4);
}

TEST(OnlineSchedulerTest, ChainExecutesSequentially) {
  graph::TaskGraph g;
  const auto a = g.add_task(roofline(2.0, 1), "a");
  const auto b = g.add_task(roofline(3.0, 1), "b");
  const auto c = g.add_task(roofline(4.0, 1), "c");
  g.add_edge(a, b);
  g.add_edge(b, c);
  const StubAllocator alloc(1);
  const auto result = schedule_online(g, 2, alloc);
  EXPECT_DOUBLE_EQ(result.makespan, 9.0);
  EXPECT_DOUBLE_EQ(result.ready_time[a], 0.0);
  EXPECT_DOUBLE_EQ(result.ready_time[b], 2.0);
  EXPECT_DOUBLE_EQ(result.ready_time[c], 5.0);
  sim::expect_valid_schedule(g, result.trace, 2);
}

TEST(OnlineSchedulerTest, IndependentTasksPackUpToCapacity) {
  // Four unit tasks each needing 1 processor on P = 2: two waves.
  graph::TaskGraph g;
  for (int i = 0; i < 4; ++i) (void)g.add_task(roofline(1.0, 1));
  const StubAllocator alloc(1);
  const auto result = schedule_online(g, 2, alloc);
  EXPECT_DOUBLE_EQ(result.makespan, 2.0);
  sim::expect_valid_schedule(g, result.trace, 2);
}

TEST(OnlineSchedulerTest, ListSchedulingSkipsOverBlockedTask) {
  // Task 0 needs 3 procs, task 1 needs 1; P = 2. FIFO scan starts task 1
  // immediately even though task 0 (earlier in the queue) cannot run...
  graph::TaskGraph g;
  (void)g.add_task(roofline(6.0, 3), "big");
  (void)g.add_task(roofline(1.0, 1), "small");
  // Allocators that return per-model p_max.
  class MaxAllocator : public Allocator {
   public:
    int allocate(const model::SpeedupModel& m, int P) const override {
      return m.max_useful_procs(P);
    }
    std::string name() const override { return "max"; }
  };
  const MaxAllocator alloc;
  const auto result = schedule_online(g, 2, alloc);
  // ...but p_max is capped at P = 2 anyway; both fit sequentially:
  // big runs [0, 3) on 2 procs (t = 6/2), small [0, 1) would need procs.
  // Queue order: big first (2 procs), then small waits until 3.
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
  sim::expect_valid_schedule(g, result.trace, 2);
}

TEST(OnlineSchedulerTest, FifoVersusLifoChangesOrder) {
  // Three independent 1-proc tasks of different lengths on P = 1.
  graph::TaskGraph g;
  (void)g.add_task(roofline(1.0, 1), "t0");
  (void)g.add_task(roofline(2.0, 1), "t1");
  (void)g.add_task(roofline(3.0, 1), "t2");
  const StubAllocator alloc(1);

  const auto fifo =
      schedule_online(g, 1, alloc, QueuePolicy::kFifo).trace.records();
  EXPECT_EQ(fifo[0].task, 0);
  EXPECT_EQ(fifo[1].task, 1);
  EXPECT_EQ(fifo[2].task, 2);

  const auto lifo =
      schedule_online(g, 1, alloc, QueuePolicy::kLifo).trace.records();
  // All three revealed at t=0 in id order; LIFO serves newest first.
  EXPECT_EQ(lifo[0].task, 2);
}

TEST(OnlineSchedulerTest, LargestWorkFirstPolicy) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(1.0, 1), "small");
  (void)g.add_task(roofline(9.0, 1), "large");
  (void)g.add_task(roofline(4.0, 1), "medium");
  const StubAllocator alloc(1);
  const auto recs =
      schedule_online(g, 1, alloc, QueuePolicy::kLargestWorkFirst)
          .trace.records();
  EXPECT_EQ(recs[0].task, 1);
  EXPECT_EQ(recs[1].task, 2);
  EXPECT_EQ(recs[2].task, 0);
}

TEST(OnlineSchedulerTest, SmallestAllocFirstPolicy) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(8.0, 4), "wide");
  (void)g.add_task(roofline(2.0, 1), "narrow");
  class MaxAllocator : public Allocator {
   public:
    int allocate(const model::SpeedupModel& m, int P) const override {
      return m.max_useful_procs(P);
    }
    std::string name() const override { return "max"; }
  };
  const MaxAllocator alloc;
  const auto recs =
      schedule_online(g, 4, alloc, QueuePolicy::kSmallestAllocFirst)
          .trace.records();
  EXPECT_EQ(recs[0].task, 1);  // narrow first
}

TEST(OnlineSchedulerTest, DiamondRespectsDependencies) {
  graph::TaskGraph g;
  const auto a = g.add_task(roofline(2.0, 2), "a");
  const auto b = g.add_task(roofline(2.0, 2), "b");
  const auto c = g.add_task(roofline(4.0, 2), "c");
  const auto d = g.add_task(roofline(2.0, 2), "d");
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  const StubAllocator alloc(2);
  const auto result = schedule_online(g, 4, alloc);
  // a: [0,1) on 2 procs; b and c in parallel: b [1,2), c [1,3); d [3,4).
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
  EXPECT_DOUBLE_EQ(result.ready_time[d], 3.0);
  sim::expect_valid_schedule(g, result.trace, 4);
}

TEST(OnlineSchedulerTest, AllocatorOutOfRangeIsDetected) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(1.0, 1));
  const StubAllocator bad(5);
  EXPECT_THROW((void)schedule_online(g, 2, bad), std::logic_error);
}

TEST(OnlineSchedulerTest, RejectsBadConstruction) {
  graph::TaskGraph empty;
  const StubAllocator alloc(1);
  EXPECT_THROW(OnlineScheduler(empty, 2, alloc), std::logic_error);
  graph::TaskGraph g;
  (void)g.add_task(roofline(1.0, 1));
  EXPECT_THROW(OnlineScheduler(g, 0, alloc), std::invalid_argument);
}

TEST(OnlineSchedulerTest, EventCountMatchesTaskCount) {
  util::Rng rng(5);
  const model::ModelSampler sampler(model::ModelKind::kAmdahl);
  const auto g = graph::layered_random(
      5, 2, 6, 0.4, rng, graph::sampling_provider(sampler, rng, 8));
  const LpaAllocator alloc(0.271);
  const auto result = schedule_online(g, 8, alloc);
  EXPECT_EQ(result.num_events, static_cast<std::uint64_t>(g.num_tasks()));
  sim::expect_valid_schedule(g, result.trace, 8);
}

TEST(OnlineSchedulerTest, DeterministicAcrossRuns) {
  util::Rng rng(6);
  const model::ModelSampler sampler(model::ModelKind::kGeneral);
  const auto g = graph::erdos_renyi_dag(
      40, 0.1, rng, graph::sampling_provider(sampler, rng, 16));
  const LpaAllocator alloc(0.211);
  const auto r1 = schedule_online(g, 16, alloc);
  const auto r2 = schedule_online(g, 16, alloc);
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.allocation, r2.allocation);
}

TEST(OnlineSchedulerTest, AllPoliciesProduceValidSchedules) {
  util::Rng rng(7);
  const model::ModelSampler sampler(model::ModelKind::kCommunication);
  const auto g = graph::layered_random(
      6, 2, 8, 0.3, rng, graph::sampling_provider(sampler, rng, 12));
  const LpaAllocator alloc(0.324);
  for (const auto policy :
       {QueuePolicy::kFifo, QueuePolicy::kLifo, QueuePolicy::kLargestWorkFirst,
        QueuePolicy::kLongestMinTimeFirst, QueuePolicy::kSmallestAllocFirst}) {
    const auto result = schedule_online(g, 12, alloc, policy);
    sim::expect_valid_schedule(g, result.trace, 12);
    EXPECT_GT(result.makespan, 0.0);
  }
}

}  // namespace
}  // namespace moldsched::core
