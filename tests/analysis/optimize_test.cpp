#include "moldsched/analysis/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace moldsched::analysis {
namespace {

TEST(GoldenSectionTest, QuadraticMinimum) {
  const auto r = golden_section_minimize(
      [](double x) { return (x - 2.0) * (x - 2.0) + 3.0; }, 0.0, 10.0);
  // x converges like sqrt(tol) for a flat quadratic bottom.
  EXPECT_NEAR(r.x, 2.0, 1e-6);
  EXPECT_NEAR(r.value, 3.0, 1e-12);
  EXPECT_GT(r.iterations, 0);
}

TEST(GoldenSectionTest, MinimumAtBoundary) {
  const auto r =
      golden_section_minimize([](double x) { return x; }, 1.0, 5.0);
  EXPECT_NEAR(r.x, 1.0, 1e-8);
}

TEST(GoldenSectionTest, NonSmoothUnimodal) {
  const auto r = golden_section_minimize(
      [](double x) { return std::abs(x - 1.5); }, -4.0, 4.0);
  EXPECT_NEAR(r.x, 1.5, 1e-8);
  EXPECT_NEAR(r.value, 0.0, 1e-8);
}

TEST(GoldenSectionTest, RejectsBadArguments) {
  const auto f = [](double x) { return x; };
  EXPECT_THROW((void)golden_section_minimize(f, 2.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)golden_section_minimize(f, 0.0, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)golden_section_minimize(nullptr, 0.0, 1.0),
               std::invalid_argument);
}

TEST(GridThenGoldenTest, SurvivesInfinitePlateaus) {
  // f = +inf left of 3, quadratic with min at 4 on the right — exactly the
  // shape of the communication-model ratio in mu.
  const auto f = [](double x) {
    if (x < 3.0) return std::numeric_limits<double>::infinity();
    return (x - 4.0) * (x - 4.0) + 1.0;
  };
  const auto r = grid_then_golden_minimize(f, 0.0, 10.0);
  EXPECT_NEAR(r.x, 4.0, 1e-6);
  EXPECT_NEAR(r.value, 1.0, 1e-10);
}

TEST(GridThenGoldenTest, AllInfiniteThrows) {
  const auto f = [](double) {
    return std::numeric_limits<double>::infinity();
  };
  EXPECT_THROW((void)grid_then_golden_minimize(f, 0.0, 1.0),
               std::invalid_argument);
}

TEST(GridThenGoldenTest, RejectsBadGrid) {
  const auto f = [](double x) { return x; };
  EXPECT_THROW((void)grid_then_golden_minimize(f, 0.0, 1.0, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace moldsched::analysis
