// Unit tests of the decoupled (mu, nu) program in analysis/improved.hpp:
// the R(mu, nu) surface, the joint optima, and the mixed-kind envelope
// of the per-model-aware allocator.
#include "moldsched/analysis/improved.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::analysis {
namespace {

const std::vector<model::ModelKind> kAnalytic = {
    model::ModelKind::kRoofline, model::ModelKind::kCommunication,
    model::ModelKind::kAmdahl, model::ModelKind::kGeneral};

TEST(ThresholdOfNu, ClampsAtOneAndMatchesDelta) {
  // delta(mu) crosses 1 at mu_max; below that it exceeds 1.
  EXPECT_DOUBLE_EQ(threshold_of_nu(kMuMax), 1.0);
  const double nu = 0.25;
  EXPECT_DOUBLE_EQ(threshold_of_nu(nu), delta_of_mu(nu));
  EXPECT_GT(threshold_of_nu(0.1), 1.0);
}

TEST(ThresholdOfNu, RejectsOutOfDomain) {
  EXPECT_THROW((void)threshold_of_nu(0.0), std::invalid_argument);
  EXPECT_THROW((void)threshold_of_nu(kMuMax + 0.01), std::invalid_argument);
}

TEST(ImprovedUpperRatio, CoupledDiagonalReproducesLemma5) {
  // At nu == mu the decoupled program is exactly the coupled analysis:
  // R(mu, mu) = delta(mu) + alpha(delta(mu)) / (1 - mu) = lemma5_ratio.
  for (const auto kind : kAnalytic) {
    for (const double mu : {0.15, 0.25, 0.33}) {
      const double r = improved_upper_ratio(kind, mu, mu);
      if (std::isinf(r)) continue;  // threshold infeasible for this model
      const auto choice = best_x(kind, mu);
      EXPECT_NEAR(r, lemma5_ratio(choice.alpha, mu), 1e-12)
          << model::to_string(kind) << " mu=" << mu;
    }
  }
}

TEST(ImprovedUpperRatio, RejectsArbitraryModel) {
  EXPECT_THROW(
      (void)improved_upper_ratio(model::ModelKind::kArbitrary, 0.2, 0.2),
      std::invalid_argument);
}

TEST(ImprovedOptimalRatio, JointOptimumNeverWorseThanCoupled) {
  // The coupled point (mu*, mu*) is in the feasible set of the decoupled
  // program, so the joint minimum cannot exceed the Table 1 constant.
  for (const auto kind : kAnalytic) {
    const auto refined = improved_optimal_ratio(kind);
    const auto coupled = optimal_ratio(kind);
    EXPECT_LE(refined.upper_bound, coupled.upper_bound * (1.0 + 1e-9))
        << model::to_string(kind);
    EXPECT_NEAR(refined.coupled_bound, coupled.upper_bound, 1e-12);
    // The reported point must reproduce the reported value.
    EXPECT_NEAR(improved_upper_ratio(kind, refined.mu_star, refined.nu_star),
                refined.upper_bound, 1e-9);
    EXPECT_NEAR(refined.threshold, threshold_of_nu(refined.nu_star), 1e-12);
    EXPECT_GE(refined.threshold, 1.0);
    EXPECT_GT(refined.alpha_star, 0.0);
  }
}

TEST(ImprovedOptimalRatio, CachedCallsAreConsistent) {
  const auto a = improved_optimal_ratio(model::ModelKind::kAmdahl);
  const auto b = improved_optimal_ratio(model::ModelKind::kAmdahl);
  EXPECT_DOUBLE_EQ(a.upper_bound, b.upper_bound);
  EXPECT_DOUBLE_EQ(a.mu_star, b.mu_star);
  EXPECT_DOUBLE_EQ(a.nu_star, b.nu_star);
}

TEST(ComputeImprovedTable, FourRowsInTableOneOrder) {
  const auto rows = compute_improved_table();
  ASSERT_EQ(rows.size(), 4u);
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_EQ(rows[i].kind, kAnalytic[i]);
}

TEST(MixedEnvelope, SingleKindCollapsesToOwnConstant) {
  for (const auto kind : kAnalytic) {
    const auto env = improved_mixed_envelope({kind});
    const auto refined = improved_optimal_ratio(kind);
    EXPECT_NEAR(env.bound, refined.upper_bound, 1e-9)
        << model::to_string(kind);
    EXPECT_DOUBLE_EQ(env.mu_min, refined.mu_star);
    EXPECT_DOUBLE_EQ(env.alpha_max, refined.alpha_star);
  }
}

TEST(MixedEnvelope, MixedKindsAreBoundedByGeneralEnvelope) {
  const auto all = improved_mixed_envelope(kAnalytic);
  EXPECT_TRUE(std::isfinite(all.bound));
  // A strict subset of kinds can only tighten the envelope.
  const auto pair = improved_mixed_envelope(
      {model::ModelKind::kRoofline, model::ModelKind::kAmdahl});
  EXPECT_LE(pair.bound, all.bound * (1.0 + 1e-12));
  // And any envelope dominates each member's own constant.
  EXPECT_GE(pair.bound,
            improved_optimal_ratio(model::ModelKind::kAmdahl).upper_bound *
                (1.0 - 1e-12));
}

TEST(MixedEnvelope, ArbitraryKindIsUnbounded) {
  const auto env = improved_mixed_envelope(
      {model::ModelKind::kRoofline, model::ModelKind::kArbitrary});
  EXPECT_TRUE(std::isinf(env.bound));
}

TEST(EnvelopeForGraph, CollectsDistinctKindsAndRejectsEmpty) {
  util::Rng rng(7);
  const model::ModelSampler amdahl(model::ModelKind::kAmdahl);
  const auto provider = graph::sampling_provider(amdahl, rng, 16);
  const auto g = graph::chain(5, provider);
  const auto env = improved_envelope_for_graph(g);
  EXPECT_NEAR(env.bound,
              improved_optimal_ratio(model::ModelKind::kAmdahl).upper_bound,
              1e-9);
  const graph::TaskGraph empty;
  EXPECT_THROW((void)improved_envelope_for_graph(empty), std::invalid_argument);
}

}  // namespace
}  // namespace moldsched::analysis
