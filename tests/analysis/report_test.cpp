#include "moldsched/analysis/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace moldsched::analysis {
namespace {

TEST(Table1TableTest, RendersAllModels) {
  const auto rows = compute_table1();
  const auto table = table1_table(rows);
  const auto text = table.to_ascii();
  EXPECT_NE(text.find("roofline"), std::string::npos);
  EXPECT_NE(text.find("communication"), std::string::npos);
  EXPECT_NE(text.find("amdahl"), std::string::npos);
  EXPECT_NE(text.find("general"), std::string::npos);
  EXPECT_NE(text.find("Upper bound"), std::string::npos);
  // Spot-check a famous number.
  EXPECT_NE(text.find("2.618"), std::string::npos);
}

TEST(SuiteTableTest, RendersSchedulers) {
  AggregateRow row;
  row.scheduler = "lpa";
  row.ratio.mean = 1.5;
  row.ratio.p95 = 2.0;
  row.ratio.max = 2.5;
  row.mean_utilization = 0.8;
  const auto table = suite_table({row});
  EXPECT_NE(table.to_ascii().find("lpa"), std::string::npos);
  EXPECT_NE(table.to_ascii().find("1.500"), std::string::npos);
}

TEST(WriteFileTest, CreatesDirectoriesAndWrites) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "moldsched_report_test";
  std::filesystem::remove_all(dir);
  const auto path = (dir / "sub" / "out.csv").string();
  write_file(path, "a,b\n1,2\n");
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\n1,2\n");
  std::filesystem::remove_all(dir);
}

TEST(WriteFileTest, FailsOnUnwritablePath) {
  EXPECT_THROW(write_file("/proc/definitely/not/writable/x.txt", "data"),
               std::runtime_error);
}

}  // namespace
}  // namespace moldsched::analysis
