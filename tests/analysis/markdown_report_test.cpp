#include "moldsched/analysis/markdown_report.hpp"

#include <gtest/gtest.h>

namespace moldsched::analysis {
namespace {

TEST(MarkdownReportTest, ContainsEverySection) {
  ReportConfig config;
  config.P = 8;
  config.repetitions = 1;
  config.max_chains_k = 4;
  config.include_adversaries = false;  // keep the test fast
  const auto report = generate_markdown_report(config);
  EXPECT_NE(report.find("# moldsched experiment report"), std::string::npos);
  EXPECT_NE(report.find("## Table 1"), std::string::npos);
  EXPECT_NE(report.find("2.618"), std::string::npos);
  EXPECT_NE(report.find("## Random DAGs"), std::string::npos);
  EXPECT_NE(report.find("### roofline"), std::string::npos);
  EXPECT_NE(report.find("### general"), std::string::npos);
  EXPECT_NE(report.find("## Theorem 9"), std::string::npos);
  // No adversary section when skipped.
  EXPECT_EQ(report.find("Theorems 5-8"), std::string::npos);
}

TEST(MarkdownReportTest, DeterministicForFixedSeed) {
  ReportConfig config;
  config.P = 8;
  config.repetitions = 1;
  config.max_chains_k = 4;
  config.include_adversaries = false;
  EXPECT_EQ(generate_markdown_report(config),
            generate_markdown_report(config));
}

}  // namespace
}  // namespace moldsched::analysis
