#include "moldsched/analysis/experiment.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "moldsched/sched/registry.hpp"

namespace moldsched::analysis {
namespace {

TEST(MeasureSchedulerTest, ProducesConsistentNumbers) {
  util::Rng rng(1);
  const auto cases = random_graph_catalog(model::ModelKind::kAmdahl, 8, rng);
  const auto spec = sched::lpa_spec(0.271);
  const auto m = measure_scheduler(cases.front().graph, 8, spec);
  EXPECT_EQ(m.scheduler, "lpa");
  EXPECT_GT(m.makespan, 0.0);
  EXPECT_GT(m.lower_bound, 0.0);
  EXPECT_GE(m.ratio_vs_lb, 1.0 - 1e-9);
  EXPECT_GT(m.avg_utilization, 0.0);
  EXPECT_LE(m.avg_utilization, 1.0 + 1e-9);
}

TEST(MeasureSchedulerTest, NullAllocatorRejected) {
  util::Rng rng(2);
  const auto cases =
      random_graph_catalog(model::ModelKind::kRoofline, 4, rng);
  sched::SchedulerSpec bad;
  bad.name = "broken";
  EXPECT_THROW((void)measure_scheduler(cases.front().graph, 4, bad),
               std::invalid_argument);
}

TEST(RandomCatalogTest, CoversDiverseShapes) {
  util::Rng rng(3);
  const auto cases = random_graph_catalog(model::ModelKind::kGeneral, 16, rng);
  EXPECT_GE(cases.size(), 8u);
  std::set<std::string> names;
  for (const auto& c : cases) {
    EXPECT_TRUE(names.insert(c.name).second);
    EXPECT_GE(c.graph.num_tasks(), 1);
    EXPECT_NO_THROW(c.graph.validate());
  }
  EXPECT_TRUE(names.count("layered"));
  EXPECT_TRUE(names.count("fork-join"));
  EXPECT_THROW((void)random_graph_catalog(model::ModelKind::kGeneral, 16, rng,
                                          0),
               std::invalid_argument);
}

TEST(WorkflowCatalogTest, CoversNamedWorkflows) {
  const auto cases = workflow_catalog(model::ModelKind::kCommunication);
  std::set<std::string> names;
  for (const auto& c : cases) {
    names.insert(c.name);
    EXPECT_NO_THROW(c.graph.validate());
  }
  EXPECT_TRUE(names.count("cholesky"));
  EXPECT_TRUE(names.count("lu"));
  EXPECT_TRUE(names.count("fft"));
  EXPECT_TRUE(names.count("montage"));
  EXPECT_TRUE(names.count("wavefront"));
}

TEST(CompareSuiteTest, OneRowPerScheduler) {
  util::Rng rng(4);
  auto cases = random_graph_catalog(model::ModelKind::kAmdahl, 8, rng);
  cases.resize(3);  // keep the test fast
  const auto suite = sched::standard_suite(0.271);
  const auto rows = compare_suite(cases, 8, suite);
  ASSERT_EQ(rows.size(), suite.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].scheduler, suite[i].name);
    EXPECT_EQ(rows[i].ratio.count, cases.size());
    EXPECT_GE(rows[i].ratio.min, 1.0 - 1e-9);
  }
}

TEST(CompareSuiteTest, EmptyCasesRejected) {
  const auto suite = sched::standard_suite(0.3);
  EXPECT_THROW((void)compare_suite({}, 8, suite), std::invalid_argument);
}

}  // namespace
}  // namespace moldsched::analysis
