#include "moldsched/analysis/bounds.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/model/special_models.hpp"

namespace moldsched::analysis {
namespace {

model::ModelPtr roofline(double w, int pbar) {
  return std::make_shared<model::RooflineModel>(w, pbar);
}

/// Chain a(w=8, pbar 4) -> b(w=4, pbar 2) plus independent c(w=6, pbar 1).
graph::TaskGraph make_graph() {
  graph::TaskGraph g;
  const auto a = g.add_task(roofline(8.0, 4), "a");
  const auto b = g.add_task(roofline(4.0, 2), "b");
  (void)g.add_task(roofline(6.0, 1), "c");
  g.add_edge(a, b);
  return g;
}

TEST(BoundsTest, MinTimesUseEquationFive) {
  const auto g = make_graph();
  const auto t = min_times(g, 4);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0], 2.0);  // 8/4
  EXPECT_DOUBLE_EQ(t[1], 2.0);  // 4/2
  EXPECT_DOUBLE_EQ(t[2], 6.0);  // sequential task
  // Smaller platform raises the minimum times.
  EXPECT_DOUBLE_EQ(min_times(g, 2)[0], 4.0);
}

TEST(BoundsTest, MinTotalAreaIsSumOfSequentialAreas) {
  const auto g = make_graph();
  // Roofline min area = w.
  EXPECT_DOUBLE_EQ(min_total_area(g, 4), 8.0 + 4.0 + 6.0);
}

TEST(BoundsTest, MinCriticalPath) {
  const auto g = make_graph();
  // Path a->b: 2 + 2 = 4; isolated c: 6. C_min = 6.
  EXPECT_DOUBLE_EQ(min_critical_path(g, 4), 6.0);
  // On P = 1 everything is sequential: a->b = 12, c = 6.
  EXPECT_DOUBLE_EQ(min_critical_path(g, 1), 12.0);
}

TEST(BoundsTest, LowerBoundIsMaxOfBothTerms) {
  const auto g = make_graph();
  const auto b = lower_bounds(g, 4);
  EXPECT_DOUBLE_EQ(b.min_total_area, 18.0);
  EXPECT_DOUBLE_EQ(b.min_critical_path, 6.0);
  // max(18/4, 6) = 6.
  EXPECT_DOUBLE_EQ(b.lower_bound, 6.0);
  EXPECT_DOUBLE_EQ(optimal_makespan_lower_bound(g, 4), 6.0);
  // On P = 2: max(18/2, 8) = 9 (area-bound regime).
  EXPECT_DOUBLE_EQ(optimal_makespan_lower_bound(g, 2), 9.0);
}

TEST(BoundsTest, AmdahlMinAreaIncludesSequentialPart) {
  graph::TaskGraph g;
  (void)g.add_task(std::make_shared<model::AmdahlModel>(10.0, 2.0));
  EXPECT_DOUBLE_EQ(min_total_area(g, 8), 12.0);       // a(1) = w + d
  EXPECT_DOUBLE_EQ(min_critical_path(g, 8), 10.0 / 8.0 + 2.0);
}

TEST(BoundsTest, RejectsBadP) {
  const auto g = make_graph();
  EXPECT_THROW((void)min_times(g, 0), std::invalid_argument);
  EXPECT_THROW((void)min_total_area(g, 0), std::invalid_argument);
}

}  // namespace
}  // namespace moldsched::analysis
