// Reproduction of the paper's Table 1: every upper and lower bound,
// together with the optimal mu* and x* named in Theorems 1-8.
#include "moldsched/analysis/ratios.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace moldsched::analysis {
namespace {

TEST(DeltaTest, MatchesClosedForm) {
  EXPECT_NEAR(delta_of_mu(kMuMax), 1.0, 1e-12);
  EXPECT_NEAR(delta_of_mu(0.25), 8.0 / 3.0, 1e-12);
  EXPECT_THROW((void)delta_of_mu(0.0), std::invalid_argument);
  EXPECT_THROW((void)delta_of_mu(0.4), std::invalid_argument);
}

TEST(Lemma5RatioTest, Formula) {
  // (mu*alpha + 1 - 2mu) / (mu(1-mu)); with alpha = 1 this is 1/mu.
  EXPECT_NEAR(lemma5_ratio(1.0, 0.25), 4.0, 1e-12);
  EXPECT_NEAR(lemma5_ratio(2.0, 0.25), (0.5 + 0.5) / (0.25 * 0.75), 1e-12);
  EXPECT_THROW((void)lemma5_ratio(0.5, 0.25), std::invalid_argument);
}

TEST(BestXTest, RooflineAlwaysAlphaBetaOne) {
  for (const double mu : {0.05, 0.15, 0.3, kMuMax}) {
    const auto c = best_x(model::ModelKind::kRoofline, mu);
    EXPECT_TRUE(c.feasible);
    EXPECT_DOUBLE_EQ(c.alpha, 1.0);
    EXPECT_DOUBLE_EQ(c.beta, 1.0);
  }
}

TEST(BestXTest, CommunicationXInLemmaRange) {
  const double mu = 0.324;
  const auto c = best_x(model::ModelKind::kCommunication, mu);
  ASSERT_TRUE(c.feasible);
  EXPECT_GE(c.x, (std::sqrt(13.0) - 1.0) / 6.0 - 1e-12);
  EXPECT_LE(c.x, 0.5 + 1e-12);
  // beta_x <= delta must hold.
  EXPECT_LE(c.beta, delta_of_mu(mu) + 1e-9);
  EXPECT_NEAR(c.alpha, 1.0 + c.x * c.x + c.x / 3.0, 1e-12);
}

TEST(BestXTest, CommunicationInfeasibleNearMuMax) {
  // At mu = kMuMax, delta = 1 < 3/2: the construction cannot work.
  const auto c = best_x(model::ModelKind::kCommunication, kMuMax);
  EXPECT_FALSE(c.feasible);
  EXPECT_TRUE(std::isinf(
      upper_ratio(model::ModelKind::kCommunication, kMuMax)));
}

TEST(BestXTest, AmdahlClosedForm) {
  const double mu = 0.271;
  const auto c = best_x(model::ModelKind::kAmdahl, mu);
  ASSERT_TRUE(c.feasible);
  // x* = mu(1-mu)/(mu^2 - 3mu + 1), the paper's Theorem 3 expression.
  const double expect = mu * (1.0 - mu) / (mu * mu - 3.0 * mu + 1.0);
  EXPECT_NEAR(c.x, expect, 1e-12);
  EXPECT_NEAR(c.beta, delta_of_mu(mu), 1e-9);  // tight at x*
}

TEST(BestXTest, GeneralNeedsDeltaAtLeastThree) {
  // delta(0.3) ~ 1.90 < 3: infeasible.
  EXPECT_FALSE(best_x(model::ModelKind::kGeneral, 0.3).feasible);
  // delta(0.21) ~ 3.49 >= 3: feasible with x > 1.
  const auto c = best_x(model::ModelKind::kGeneral, 0.21);
  ASSERT_TRUE(c.feasible);
  EXPECT_GT(c.x, 1.0);
  EXPECT_NEAR(c.beta, c.x + 1.0 + 1.0 / c.x, 1e-12);
  EXPECT_LE(c.beta, delta_of_mu(0.21) + 1e-9);
}

TEST(BestXTest, ArbitraryThrows) {
  EXPECT_THROW((void)best_x(model::ModelKind::kArbitrary, 0.2),
               std::invalid_argument);
  EXPECT_THROW((void)lower_bound_limit(model::ModelKind::kArbitrary, 0.2),
               std::invalid_argument);
  EXPECT_THROW((void)optimal_mu(model::ModelKind::kArbitrary),
               std::invalid_argument);
}

// ---- Table 1, column by column -------------------------------------

TEST(Table1Test, RooflineColumn) {
  const auto r = optimal_ratio(model::ModelKind::kRoofline);
  // Upper bound 2.62, achieved at mu = (3-sqrt(5))/2 ~ 0.382 (Theorem 1).
  EXPECT_NEAR(r.upper_bound, (3.0 + std::sqrt(5.0)) / 2.0, 1e-6);
  EXPECT_LT(r.upper_bound, 2.62);
  EXPECT_NEAR(r.mu_star, kMuMax, 1e-6);
  // Lower bound 2.61 (Theorem 5): 1/mu at the same mu.
  EXPECT_GT(r.lower_bound, 2.61);
  EXPECT_NEAR(r.lower_bound, r.upper_bound, 1e-6);  // tight for roofline
}

TEST(Table1Test, CommunicationColumn) {
  const auto r = optimal_ratio(model::ModelKind::kCommunication);
  // Upper bound 3.61 at mu ~ 0.324, x* ~ 0.446 (Theorem 2).
  EXPECT_LT(r.upper_bound, 3.611);
  EXPECT_GT(r.upper_bound, 3.59);
  EXPECT_NEAR(r.mu_star, 0.324, 0.002);
  EXPECT_NEAR(r.x_star, 0.446, 0.002);
  // Lower bound 3.51 (Theorem 6).
  EXPECT_GT(r.lower_bound, 3.51);
  EXPECT_LT(r.lower_bound, 3.6);
}

TEST(Table1Test, AmdahlColumn) {
  const auto r = optimal_ratio(model::ModelKind::kAmdahl);
  // Upper bound 4.74 at mu ~ 0.271, x* ~ 0.759 (Theorem 3).
  EXPECT_LT(r.upper_bound, 4.74);
  EXPECT_GT(r.upper_bound, 4.72);
  EXPECT_NEAR(r.mu_star, 0.271, 0.002);
  EXPECT_NEAR(r.x_star, 0.759, 0.002);
  // Lower bound 4.73 (Theorem 7).
  EXPECT_GT(r.lower_bound, 4.73);
  EXPECT_LT(r.lower_bound, 4.74);
}

TEST(Table1Test, GeneralColumn) {
  const auto r = optimal_ratio(model::ModelKind::kGeneral);
  // Upper bound 5.72 at mu ~ 0.211, x* ~ 1.972 (Theorem 4).
  EXPECT_LT(r.upper_bound, 5.72);
  EXPECT_GT(r.upper_bound, 5.70);
  EXPECT_NEAR(r.mu_star, 0.211, 0.002);
  EXPECT_NEAR(r.x_star, 1.972, 0.005);
  // Lower bound 5.25 (Theorem 8).
  EXPECT_GT(r.lower_bound, 5.25);
  EXPECT_LT(r.lower_bound, 5.26);
}

TEST(Table1Test, ComputeTable1CoversAllFourModels) {
  const auto rows = compute_table1();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].kind, model::ModelKind::kRoofline);
  EXPECT_EQ(rows[1].kind, model::ModelKind::kCommunication);
  EXPECT_EQ(rows[2].kind, model::ModelKind::kAmdahl);
  EXPECT_EQ(rows[3].kind, model::ModelKind::kGeneral);
  // Ratios increase with model generality (the paper's Table 1 ordering).
  EXPECT_LT(rows[0].upper_bound, rows[1].upper_bound);
  EXPECT_LT(rows[1].upper_bound, rows[2].upper_bound);
  EXPECT_LT(rows[2].upper_bound, rows[3].upper_bound);
  // Lower bounds never exceed upper bounds.
  for (const auto& r : rows) EXPECT_LE(r.lower_bound, r.upper_bound + 1e-9);
}

TEST(Table1Test, OptimalMuCachedAndConsistent) {
  const double a = optimal_mu(model::ModelKind::kAmdahl);
  const double b = optimal_mu(model::ModelKind::kAmdahl);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NEAR(a, 0.271, 0.002);
}

TEST(UpperRatioTest, MuStarIsALocalMinimum) {
  for (const auto kind :
       {model::ModelKind::kCommunication, model::ModelKind::kAmdahl,
        model::ModelKind::kGeneral}) {
    const double mu = optimal_mu(kind);
    const double at = upper_ratio(kind, mu);
    EXPECT_GE(upper_ratio(kind, mu - 0.005), at - 1e-9);
    EXPECT_GE(upper_ratio(kind, mu + 0.005), at - 1e-9);
  }
}

}  // namespace
}  // namespace moldsched::analysis
