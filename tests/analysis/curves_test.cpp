#include "moldsched/analysis/curves.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "moldsched/analysis/ratios.hpp"

namespace moldsched::analysis {
namespace {

TEST(RatioCurveTest, SamplesTheWholeMuRange) {
  const auto curve = ratio_curve(model::ModelKind::kAmdahl, 100);
  ASSERT_EQ(curve.size(), 100u);
  EXPECT_GT(curve.front().mu, 0.0);
  EXPECT_NEAR(curve.back().mu, kMuMax, 1e-12);
}

TEST(RatioCurveTest, MinimumMatchesOptimalRatio) {
  for (const auto kind :
       {model::ModelKind::kRoofline, model::ModelKind::kCommunication,
        model::ModelKind::kAmdahl, model::ModelKind::kGeneral}) {
    const auto curve = ratio_curve(kind, 2000);
    double best = std::numeric_limits<double>::infinity();
    for (const auto& p : curve) best = std::min(best, p.upper_bound);
    EXPECT_NEAR(best, optimal_ratio(kind).upper_bound, 1e-3)
        << model::to_string(kind);
  }
}

TEST(RatioCurveTest, LowerNeverAboveUpperWhereBothFinite) {
  for (const auto kind :
       {model::ModelKind::kCommunication, model::ModelKind::kAmdahl,
        model::ModelKind::kGeneral}) {
    for (const auto& p : ratio_curve(kind, 300)) {
      if (std::isfinite(p.upper_bound) &&
          std::isfinite(p.lower_bound_limit)) {
        EXPECT_LE(p.lower_bound_limit, p.upper_bound + 1e-9)
            << model::to_string(kind) << " mu=" << p.mu;
      }
    }
  }
}

TEST(RatioCurveTest, RejectsBadArguments) {
  EXPECT_THROW((void)ratio_curve(model::ModelKind::kAmdahl, 1),
               std::invalid_argument);
  EXPECT_THROW((void)ratio_curve(model::ModelKind::kArbitrary, 10),
               std::invalid_argument);
}

TEST(RatioCurvesCsvTest, WellFormed) {
  const auto csv = ratio_curves_csv(50);
  // Header + 50 rows.
  std::size_t lines = 0;
  for (const char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 51u);
  EXPECT_NE(csv.find("mu,roofline_upper,roofline_lower"), std::string::npos);
  EXPECT_NE(csv.find("general_upper"), std::string::npos);
  // Infeasible general entries near mu_max appear as empty cells (",,").
  EXPECT_NE(csv.find(",,"), std::string::npos);
}

}  // namespace
}  // namespace moldsched::analysis
