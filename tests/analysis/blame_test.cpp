#include "moldsched/analysis/blame.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/core/allocator.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::analysis {
namespace {

model::ModelPtr roofline(double w, int pbar) {
  return std::make_shared<model::RooflineModel>(w, pbar);
}

class OneAlloc : public core::Allocator {
 public:
  int allocate(const model::SpeedupModel&, int) const override { return 1; }
  std::string name() const override { return "one"; }
};

TEST(BlameChainTest, PureChainIsAllPrecedence) {
  graph::TaskGraph g;
  const auto a = g.add_task(roofline(1.0, 1), "a");
  const auto b = g.add_task(roofline(2.0, 1), "b");
  const auto c = g.add_task(roofline(3.0, 1), "c");
  g.add_edge(a, b);
  g.add_edge(b, c);
  const OneAlloc alloc;
  const auto run = core::schedule_online(g, 4, alloc);
  const auto chain = blame_chain(g, run);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].task, c);
  EXPECT_EQ(chain[0].reason, BlameReason::kPrecedence);
  EXPECT_EQ(chain[0].blamed, b);
  EXPECT_EQ(chain[1].task, b);
  EXPECT_EQ(chain[1].blamed, a);
  EXPECT_EQ(chain[2].task, a);
  EXPECT_EQ(chain[2].reason, BlameReason::kStartOfSchedule);
}

TEST(BlameChainTest, SerializedIndependentTasksAreResourceBound) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(1.0, 1), "t0");
  (void)g.add_task(roofline(1.0, 1), "t1");
  (void)g.add_task(roofline(1.0, 1), "t2");
  const OneAlloc alloc;
  const auto run = core::schedule_online(g, 1, alloc);  // P = 1 serializes
  const auto chain = blame_chain(g, run);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].reason, BlameReason::kResources);
  EXPECT_EQ(chain[1].reason, BlameReason::kResources);
  EXPECT_EQ(chain[2].reason, BlameReason::kStartOfSchedule);
}

TEST(BlameChainTest, ChainCoversTheMakespanContiguously) {
  util::Rng rng(81);
  const model::ModelSampler sampler(model::ModelKind::kGeneral);
  const int P = 8;
  const auto g = graph::layered_random(
      5, 2, 6, 0.4, rng, graph::sampling_provider(sampler, rng, P));
  const core::LpaAllocator alloc(0.211);
  const auto run = core::schedule_online(g, P, alloc);
  const auto chain = blame_chain(g, run);
  ASSERT_FALSE(chain.empty());
  // First link finishes at the makespan; last link starts at 0; links
  // walk strictly backwards in start time.
  EXPECT_DOUBLE_EQ(chain.front().end, run.makespan);
  EXPECT_NEAR(chain.back().start, 0.0, 1e-12);
  for (std::size_t i = 1; i < chain.size(); ++i)
    EXPECT_LT(chain[i].start, chain[i - 1].start);
}

TEST(BlameChainTest, FormatMentionsTasksAndReasons) {
  graph::TaskGraph g;
  const auto a = g.add_task(roofline(1.0, 1), "head");
  const auto b = g.add_task(roofline(1.0, 1), "tail");
  g.add_edge(a, b);
  const OneAlloc alloc;
  const auto run = core::schedule_online(g, 2, alloc);
  const auto text = format_blame_chain(g, blame_chain(g, run));
  EXPECT_NE(text.find("tail"), std::string::npos);
  EXPECT_NE(text.find("precedence"), std::string::npos);
  EXPECT_NE(text.find("waited on head"), std::string::npos);
  EXPECT_NE(text.find("start-of-schedule"), std::string::npos);
}

TEST(BlameChainTest, RejectsIncompleteTrace) {
  graph::TaskGraph g;
  (void)g.add_task(roofline(1.0, 1));
  (void)g.add_task(roofline(1.0, 1));
  core::ScheduleResult run;
  run.ready_time = {0.0, 0.0};
  run.trace.record_start(0, 0.0, 1);
  run.trace.record_end(0, 1.0);
  EXPECT_THROW((void)blame_chain(g, run), std::invalid_argument);
}

}  // namespace
}  // namespace moldsched::analysis
