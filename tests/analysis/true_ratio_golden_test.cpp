// Golden pins of the *true* competitive ratios T / T_opt over the
// frozen opt::small_corpus(), alongside the T_opt and Lemma 2 values
// themselves. The corpus is append-only and every producer involved is
// deterministic, so these values are stable to far better than the 1e-9
// pin tolerance; a drift means scheduler or oracle behavior changed.
//
// Why pin both denominators: a T/LB pin stays green while a scheduler
// regresses by up to the LB's slack (T_opt / LB below — up to ~1.27 on
// this corpus, e.g. sampled-er-arbitrary at 3.0618 vs LB 2.4147). The
// T/T_opt pins have no such blind spot.
#include <gtest/gtest.h>

#include <iterator>
#include <string>
#include <vector>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/experiment.hpp"
#include "moldsched/opt/oracle.hpp"
#include "moldsched/sched/registry.hpp"

namespace moldsched::analysis {
namespace {

struct GoldenPin {
  const char* instance;
  int P;
  double t_opt;      ///< certified exact optimum
  double lemma2_lb;  ///< max(A_min / P, C_min) — note the slack vs t_opt
  // True ratios T / T_opt for a representative column set: the paper's
  // online algorithm, the greedy baseline, and both offline references.
  double lpa;
  double min_time;
  double wl_canonical;
  double wl_compress;
};

// Regenerate (after an intentional corpus or scheduler change) by
// printing "%.17g" from a loop over opt::small_corpus() with
// opt::exact_topt and sched::spec_by_name at each instance's mu.
constexpr GoldenPin kPins[] = {
    {"chain-amdahl", 4, 7.375, 7.375,
     1.728813559322034, 1.0, 2.7118644067796609, 1.0},
    {"forkjoin-roofline", 6, 6.25, 6.25,
     1.1200000000000001, 1.1066666666666667, 1.1066666666666667,
     1.1066666666666667},
    {"diamond-comm", 4, 7.8499999999999996, 6.75,
     2.1656050955414012, 1.1528662420382165, 1.910828025477707,
     1.1592356687898089},
    {"independent-mixed", 3, 12.550000000000001, 12.183333333333332,
     1.1394422310756973, 1.201859229747676, 1.0756972111553784,
     1.0756972111553784},
    {"ladder-general", 5, 8.5500000000000007, 7.3200000000000003,
     1.2865497076023391, 1.1929824561403508, 2.4327485380116958,
     1.0818713450292397},
    {"table-tree", 4, 9.6999999999999993, 8.125,
     1.2371134020618557, 1.4226804123711341, 1.8041237113402062,
     1.1649484536082475},
    {"sampled-layered-roofline", 5, 602.96364577095994, 583.04115328369187,
     1.2921137861360585, 1.1248289048243885, 1.1248289048243885,
     1.1248289048243885},
    {"sampled-forkjoin-amdahl", 4, 335.47145162139907, 314.12487622724399,
     1.4981053664682948, 1.0, 1.6087293245192418, 1.1236140750178438},
    {"sampled-sp-comm", 6, 861.12446319399749, 861.1244631939976,
     1.8649963840775041, 1.0834820218133889, 2.4410002385450942, 1.0},
    {"sampled-outtree-general", 5, 1229.9570428114157, 1229.9570428114157,
     1.1202809389271282, 1.3035366045020937, 1.3870351613784166, 1.0},
    // The arbitrary-speedup instance is the corpus's cautionary tale:
    // LPA's true ratio is 18x while both offline references hit the
    // optimum — kArbitrary has no online guarantee (Theorem 9).
    {"sampled-er-arbitrary", 4, 3.061752510583772, 2.414739743558969,
     18.004834371998676, 1.0450409593000578, 1.0, 1.0},
    {"sampled-diamond-amdahl", 8, 394.42497890498379, 386.55484007939742,
     1.8973460565074527, 1.0314021192188201, 2.214556590598634,
     1.0183149379649949},
};

const opt::SmallInstance* find_instance(
    const std::vector<opt::SmallInstance>& corpus, const std::string& name) {
  for (const auto& inst : corpus)
    if (inst.name == name) return &inst;
  return nullptr;
}

TEST(TrueRatioGoldenTest, EveryFrozenInstanceIsPinned) {
  const auto corpus = opt::small_corpus();
  // Append-only: every pin resolves, and any *new* corpus instance
  // should gain a pin when added (checked loosely — the pin table must
  // not fall behind by more than the instances added in one change).
  EXPECT_GE(corpus.size(), std::size(kPins));
  for (const auto& pin : kPins)
    EXPECT_NE(find_instance(corpus, pin.instance), nullptr) << pin.instance;
}

TEST(TrueRatioGoldenTest, ToptAndLowerBoundPinsHold) {
  const auto corpus = opt::small_corpus();
  for (const auto& pin : kPins) {
    const auto* inst = find_instance(corpus, pin.instance);
    ASSERT_NE(inst, nullptr) << pin.instance;
    ASSERT_EQ(inst->P, pin.P) << pin.instance;
    const auto t_opt = opt::exact_topt(inst->graph, inst->P);
    ASSERT_TRUE(t_opt.has_value()) << pin.instance;
    EXPECT_NEAR(*t_opt, pin.t_opt, 1e-9 * pin.t_opt) << pin.instance;
    const double lb = optimal_makespan_lower_bound(inst->graph, inst->P);
    EXPECT_NEAR(lb, pin.lemma2_lb, 1e-9 * pin.lemma2_lb) << pin.instance;
    // The documented slack: T_opt sits on or above the Lemma 2 proxy,
    // never below.
    EXPECT_GE(*t_opt, lb * (1.0 - 1e-9)) << pin.instance;
  }
}

TEST(TrueRatioGoldenTest, TrueRatioPinsHoldAt1em9) {
  const auto corpus = opt::small_corpus();
  const struct {
    const char* name;
    double GoldenPin::*column;
  } schedulers[] = {{"lpa", &GoldenPin::lpa},
                    {"min-time", &GoldenPin::min_time},
                    {"wl-canonical", &GoldenPin::wl_canonical},
                    {"wl-compress", &GoldenPin::wl_compress}};
  for (const auto& pin : kPins) {
    const auto* inst = find_instance(corpus, pin.instance);
    ASSERT_NE(inst, nullptr) << pin.instance;
    for (const auto& [name, column] : schedulers) {
      const auto m = measure_scheduler(
          inst->graph, inst->P, sched::spec_by_name(name, inst->mu),
          pin.t_opt);
      EXPECT_NEAR(m.ratio_vs_opt, pin.*column, 1e-9 * pin.*column)
          << pin.instance << " / " << name;
      // Internal consistency of the measurement: the true ratio always
      // sits at or below the LB-denominated one, and never below 1.
      EXPECT_GE(m.ratio_vs_opt, 1.0 - 1e-12) << pin.instance;
      EXPECT_LE(m.ratio_vs_opt, m.ratio_vs_lb * (1.0 + 1e-12))
          << pin.instance;
    }
  }
}

}  // namespace
}  // namespace moldsched::analysis
