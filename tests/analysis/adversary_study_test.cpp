#include "moldsched/analysis/adversary_study.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "moldsched/analysis/ratios.hpp"

namespace moldsched::analysis {
namespace {

class AdversaryStudyTest : public testing::TestWithParam<model::ModelKind> {};

TEST_P(AdversaryStudyTest, RatiosClimbTowardLimitWithinUpperBound) {
  const auto kind = GetParam();
  const double upper = optimal_ratio(kind).upper_bound;
  double prev = 0.0;
  for (const int size : default_adversary_sizes(kind)) {
    const auto m = measure_adversary(kind, size);
    EXPECT_TRUE(m.allocations_match_proof)
        << model::to_string(kind) << " size " << size;
    EXPECT_GT(m.ratio, 1.0);
    EXPECT_LE(m.ratio, m.ratio_limit + 1e-9);
    EXPECT_LE(m.ratio, upper + 1e-9);
    EXPECT_GE(m.ratio, prev * 0.999);  // monotone climb along the ladder
    prev = m.ratio;
  }
  // The largest instance gets close to the limit.
  EXPECT_GT(prev, 0.85 * optimal_ratio(kind).lower_bound);
}

INSTANTIATE_TEST_SUITE_P(AllModels, AdversaryStudyTest,
                         testing::Values(model::ModelKind::kRoofline,
                                         model::ModelKind::kCommunication,
                                         model::ModelKind::kAmdahl,
                                         model::ModelKind::kGeneral),
                         [](const auto& param_info) {
                           return model::to_string(param_info.param);
                         });

TEST(AdversaryStudyTest, DefaultMuIsOptimalMu) {
  const auto m = measure_adversary(model::ModelKind::kAmdahl, 12);
  EXPECT_DOUBLE_EQ(m.mu, optimal_mu(model::ModelKind::kAmdahl));
  const auto m2 = measure_adversary(model::ModelKind::kAmdahl, 12, 0.25);
  EXPECT_DOUBLE_EQ(m2.mu, 0.25);
}

TEST(AdversaryStudyTest, MetadataIsFilledIn) {
  const auto m = measure_adversary(model::ModelKind::kCommunication, 32);
  EXPECT_EQ(m.kind, model::ModelKind::kCommunication);
  EXPECT_EQ(m.size, 32);
  EXPECT_EQ(m.P, 32);
  EXPECT_GT(m.num_tasks, 100);
  EXPECT_GT(m.t_opt_upper, 0.0);
}

TEST(AdversaryStudyTest, ArbitraryModelRejected) {
  EXPECT_THROW((void)measure_adversary(model::ModelKind::kArbitrary, 8),
               std::invalid_argument);
  EXPECT_THROW((void)default_adversary_sizes(model::ModelKind::kArbitrary),
               std::invalid_argument);
}

}  // namespace
}  // namespace moldsched::analysis
