#include "moldsched/analysis/lemma_check.hpp"

#include <gtest/gtest.h>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::analysis {
namespace {

TEST(LemmaCheckTest, AllLemmasHoldOnRandomGraph) {
  util::Rng rng(42);
  const model::ModelSampler sampler(model::ModelKind::kCommunication);
  const int P = 24;
  const auto g = graph::layered_random(
      6, 2, 8, 0.35, rng, graph::sampling_provider(sampler, rng, P));
  const core::LpaAllocator alloc(
      optimal_mu(model::ModelKind::kCommunication));
  const auto run = core::schedule_online(g, P, alloc);
  const auto check = check_framework(g, P, alloc, run);

  EXPECT_TRUE(check.lemma3_holds()) << check.lemma3_lhs << " vs "
                                    << check.lemma3_rhs;
  EXPECT_TRUE(check.lemma4_holds()) << check.lemma4_lhs << " vs "
                                    << check.lemma4_rhs;
  EXPECT_TRUE(check.lemma5_holds());
  EXPECT_TRUE(check.all_hold());
}

TEST(LemmaCheckTest, FieldsAreInternallyConsistent) {
  util::Rng rng(43);
  const model::ModelSampler sampler(model::ModelKind::kAmdahl);
  const int P = 16;
  const auto g =
      graph::fork_join(3, 6, graph::sampling_provider(sampler, rng, P));
  const core::LpaAllocator alloc(optimal_mu(model::ModelKind::kAmdahl));
  const auto run = core::schedule_online(g, P, alloc);
  const auto check = check_framework(g, P, alloc, run);

  EXPECT_DOUBLE_EQ(check.makespan, run.makespan);
  EXPECT_GE(check.alpha, 1.0);
  EXPECT_DOUBLE_EQ(check.beta, std::max(1.0, alloc.delta()));
  EXPECT_DOUBLE_EQ(
      check.lower_bound,
      std::max(check.min_total_area / P, check.min_critical_path));
  // Realized alpha can never exceed the model's alpha_x (Lemma 8).
  const auto choice = best_x(model::ModelKind::kAmdahl,
                             optimal_mu(model::ModelKind::kAmdahl));
  EXPECT_LE(check.alpha, choice.alpha + 1e-9);
  // Lemma 5 ratio recomputed from alpha and mu.
  EXPECT_NEAR(check.lemma5_ratio, lemma5_ratio(check.alpha, alloc.mu()),
              1e-12);
}

TEST(LemmaCheckTest, HoldsOnWorkflows) {
  graph::WorkflowModelConfig cfg;
  cfg.kind = model::ModelKind::kGeneral;
  const auto g = graph::lu(5, cfg);
  const int P = 32;
  const core::LpaAllocator alloc(optimal_mu(cfg.kind));
  const auto run = core::schedule_online(g, P, alloc);
  EXPECT_TRUE(check_framework(g, P, alloc, run).all_hold());
}

}  // namespace
}  // namespace moldsched::analysis
