// Golden regression pins for the paper's Table 1 (Theorems 1-8).
//
// ratios_test.cpp checks the published two-decimal values; this file
// additionally pins the *exact* numbers this implementation computes,
// so any future change to the optimizer, the delta/lemma formulas, or
// the best-x constructions shows up as a precise diff instead of
// silently drifting within the loose paper tolerances.
#include <gtest/gtest.h>

#include "moldsched/analysis/improved.hpp"
#include "moldsched/analysis/ratios.hpp"

namespace moldsched::analysis {
namespace {

// Tolerance for the golden pins: the values are produced by golden-
// section search (tol 1e-12), so 1e-9 absorbs libm noise across
// platforms while still catching any algorithmic change.
constexpr double kGoldenTol = 1e-9;
// Tolerance against the rounded values printed in the paper.
constexpr double kPaperTol = 1e-2;

TEST(GoldenBoundsTest, RooflineColumn) {
  const auto r = optimal_ratio(model::ModelKind::kRoofline);
  EXPECT_NEAR(r.upper_bound, 2.61803398874989, kGoldenTol);
  EXPECT_NEAR(r.lower_bound, 2.61803398874989, kGoldenTol);
  EXPECT_NEAR(r.mu_star, 0.381966011250105, kGoldenTol);
  // Paper Table 1: upper 2.62 at mu* = 0.382.
  EXPECT_NEAR(r.upper_bound, 2.62, kPaperTol);
  EXPECT_NEAR(r.mu_star, 0.382, kPaperTol);
}

TEST(GoldenBoundsTest, CommunicationColumn) {
  const auto r = optimal_ratio(model::ModelKind::kCommunication);
  EXPECT_NEAR(r.upper_bound, 3.60490915119726, kGoldenTol);
  EXPECT_NEAR(r.lower_bound, 3.51490037455781, kGoldenTol);
  EXPECT_NEAR(r.mu_star, 0.323494745018517, kGoldenTol);
  EXPECT_NEAR(r.x_star, 0.445932255582122, kGoldenTol);
  // Paper Table 1: upper 3.61 at mu* = 0.324, x* = 0.446.
  EXPECT_NEAR(r.upper_bound, 3.61, kPaperTol);
  EXPECT_NEAR(r.mu_star, 0.324, kPaperTol);
}

TEST(GoldenBoundsTest, AmdahlColumn) {
  const auto r = optimal_ratio(model::ModelKind::kAmdahl);
  EXPECT_NEAR(r.upper_bound, 4.73057693937962, kGoldenTol);
  EXPECT_NEAR(r.lower_bound, 4.73057693937962, kGoldenTol);
  EXPECT_NEAR(r.mu_star, 0.270875015521299, kGoldenTol);
  EXPECT_NEAR(r.x_star, 0.757442316690474, kGoldenTol);
  // Paper Table 1: upper 4.74 at mu* = 0.271.
  EXPECT_NEAR(r.upper_bound, 4.74, kPaperTol);
  EXPECT_NEAR(r.mu_star, 0.271, kPaperTol);
}

TEST(GoldenBoundsTest, GeneralColumn) {
  const auto r = optimal_ratio(model::ModelKind::kGeneral);
  EXPECT_NEAR(r.upper_bound, 5.71431129827148, kGoldenTol);
  EXPECT_NEAR(r.lower_bound, 5.25734799264624, kGoldenTol);
  EXPECT_NEAR(r.mu_star, 0.21068692561976, kGoldenTol);
  EXPECT_NEAR(r.x_star, 1.97247812225494, kGoldenTol);
  // Paper Table 1: upper 5.72 at mu* = 0.211.
  EXPECT_NEAR(r.upper_bound, 5.72, kPaperTol);
  EXPECT_NEAR(r.mu_star, 0.211, kPaperTol);
}

TEST(GoldenBoundsTest, OptimalMuMatchesStandaloneQuery) {
  for (const auto kind :
       {model::ModelKind::kRoofline, model::ModelKind::kCommunication,
        model::ModelKind::kAmdahl, model::ModelKind::kGeneral}) {
    EXPECT_NEAR(optimal_mu(kind), optimal_ratio(kind).mu_star, 1e-9);
  }
}

// --- improved (decoupled) family ------------------------------------
//
// The joint optimum of the decoupled (mu, nu) program provably collapses
// onto the coupled diagonal for all four Eq. (1) families (the coupled
// point is feasible and the decoupled bound matches Lemma 5 there), so
// each improved upper bound must equal its Table 1 constant to golden
// precision — pinning that equality here is what guards the collapse.
// The optimal (mu*, nu*) themselves sit in a flat valley of the 2-D
// objective, so they get a looser 1e-6 pin (the bound is the invariant,
// the argmin is not).
constexpr double kArgminTol = 1e-6;

TEST(GoldenBoundsTest, ImprovedRooflineColumn) {
  const auto r = improved_optimal_ratio(model::ModelKind::kRoofline);
  EXPECT_NEAR(r.upper_bound, 2.61803398874989, kGoldenTol);
  EXPECT_NEAR(r.threshold, 1.0, kGoldenTol);
  EXPECT_NEAR(r.alpha_star, 1.0, kGoldenTol);
  EXPECT_NEAR(r.mu_star, 0.381966011250105, kArgminTol);
  EXPECT_NEAR(r.upper_bound, 2.62, kPaperTol);
}

TEST(GoldenBoundsTest, ImprovedCommunicationColumn) {
  const auto r = improved_optimal_ratio(model::ModelKind::kCommunication);
  EXPECT_NEAR(r.upper_bound, 3.60490915119739, kGoldenTol);
  EXPECT_NEAR(r.threshold, 1.61305520951346, kArgminTol);
  EXPECT_NEAR(r.alpha_star, 1.34749965947153, kArgminTol);
  EXPECT_NEAR(r.mu_star, 0.323494744633563, kArgminTol);
  EXPECT_NEAR(r.nu_star, 0.323494744633519, kArgminTol);
  EXPECT_NEAR(r.x_star, 0.445932253712165, kArgminTol);
  EXPECT_NEAR(r.upper_bound, 3.61, kPaperTol);
}

TEST(GoldenBoundsTest, ImprovedAmdahlColumn) {
  const auto r = improved_optimal_ratio(model::ModelKind::kAmdahl);
  EXPECT_NEAR(r.upper_bound, 4.73057693937962, kGoldenTol);
  EXPECT_NEAR(r.threshold, 2.32023255505762, kArgminTol);
  EXPECT_NEAR(r.alpha_star, 1.75744231284795, kArgminTol);
  EXPECT_NEAR(r.mu_star, 0.270875015089475, kArgminTol);
  EXPECT_NEAR(r.x_star, 0.757442312847948, kArgminTol);
  EXPECT_NEAR(r.upper_bound, 4.74, kPaperTol);
}

TEST(GoldenBoundsTest, ImprovedGeneralColumn) {
  const auto r = improved_optimal_ratio(model::ModelKind::kGeneral);
  EXPECT_NEAR(r.upper_bound, 5.71431129827148, kGoldenTol);
  EXPECT_NEAR(r.threshold, 3.47945459315466, kArgminTol);
  EXPECT_NEAR(r.alpha_star, 1.76400161659053, kArgminTol);
  EXPECT_NEAR(r.mu_star, 0.210686925675477, kArgminTol);
  EXPECT_NEAR(r.x_star, 1.97247812044513, kArgminTol);
  EXPECT_NEAR(r.upper_bound, 5.72, kPaperTol);
}

TEST(GoldenBoundsTest, ImprovedBoundsNeverExceedCoupled) {
  for (const auto& r : compute_improved_table()) {
    EXPECT_LE(r.upper_bound, r.coupled_bound * (1.0 + 1e-9))
        << model::to_string(r.kind);
    EXPECT_NEAR(r.coupled_bound, optimal_ratio(r.kind).upper_bound,
                kGoldenTol);
  }
}

TEST(GoldenBoundsTest, ImprovedMixedEnvelopeGolden) {
  // All four kinds together: the weakest cap and largest alpha both come
  // from the general model, so the envelope equals its constant.
  const auto env = improved_mixed_envelope(
      {model::ModelKind::kRoofline, model::ModelKind::kCommunication,
       model::ModelKind::kAmdahl, model::ModelKind::kGeneral});
  EXPECT_NEAR(env.bound, 5.71431129827148, 1e-6);
  EXPECT_NEAR(env.mu_min, 0.210686925675477, kArgminTol);
  EXPECT_NEAR(env.alpha_max, 1.76400161659053, kArgminTol);
}

}  // namespace
}  // namespace moldsched::analysis
