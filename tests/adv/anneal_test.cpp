// The annealing driver's reproducibility contract: chain r draws from
// Rng(derive_seed(seed, r)), so the search result is a pure function of
// (starts, pair, options) — bit-identical across runs and across the
// serial / parallel restart paths — and because every start anchors at
// least one chain, the merged best can never fall below the best start.
#include "moldsched/adv/anneal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "moldsched/adv/perturb.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/obs/metrics.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/svc/wire.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::adv {
namespace {

constexpr double kMu = 0.25;
constexpr int kP = 8;

std::vector<StartPoint> small_starts() {
  const model::ModelSampler sampler(model::ModelKind::kGeneral);
  std::vector<StartPoint> starts;
  util::Rng chain_rng(util::derive_seed(11, 0));
  starts.push_back(
      {graph::chain(5, graph::sampling_provider(sampler, chain_rng, kP)), kP,
       "chain"});
  util::Rng dag_rng(util::derive_seed(11, 1));
  util::Rng dag_models(util::derive_seed(11, 2));
  starts.push_back(
      {graph::erdos_renyi_dag(8, 0.3, dag_rng,
                              graph::sampling_provider(sampler, dag_models,
                                                       kP)),
       kP, "dag"});
  return starts;
}

AnnealOptions fast_options(bool parallel) {
  AnnealOptions opt;
  opt.iterations = 12;
  opt.restarts = 2;
  opt.seed = 42;
  opt.parallel_restarts = parallel;
  return opt;
}

TEST(EvaluateRatioTest, PositiveOnFeasibleNegativeOnRefused) {
  const auto starts = small_starts();
  const auto target = sched::spec_by_name("lpa", kMu);
  const auto reference = sched::spec_by_name("min-time", kMu);
  const double r = evaluate_ratio(starts[0].graph, kP, target, reference);
  EXPECT_GT(r, 0.0);
  // A scheduler that throws (P < 1) is a refusal, not a test failure.
  EXPECT_LT(evaluate_ratio(starts[0].graph, 0, target, reference), 0.0);
}

TEST(AnnealSearchTest, SameSeedIsBitIdentical) {
  const auto starts = small_starts();
  const auto target = sched::spec_by_name("lpa", kMu);
  const auto reference = sched::spec_by_name("min-time", kMu);
  const auto a = anneal_search(starts, target, reference, fast_options(true));
  const auto b = anneal_search(starts, target, reference, fast_options(true));
  EXPECT_EQ(a.best_ratio, b.best_ratio);  // exact, not near
  EXPECT_EQ(a.start_ratio, b.start_ratio);
  EXPECT_EQ(a.evals, b.evals);
  EXPECT_EQ(a.accepts, b.accepts);
  EXPECT_EQ(a.best_restart, b.best_restart);
  EXPECT_EQ(svc::encode_graph(a.best_graph), svc::encode_graph(b.best_graph));
}

TEST(AnnealSearchTest, ParallelAndSerialRestartsAgree) {
  const auto starts = small_starts();
  const auto target = sched::spec_by_name("improved-lpa", kMu);
  const auto reference = sched::spec_by_name("lpa", kMu);
  const auto par =
      anneal_search(starts, target, reference, fast_options(true));
  const auto ser =
      anneal_search(starts, target, reference, fast_options(false));
  EXPECT_EQ(par.best_ratio, ser.best_ratio);
  EXPECT_EQ(par.evals, ser.evals);
  EXPECT_EQ(par.accepts, ser.accepts);
  EXPECT_EQ(par.best_restart, ser.best_restart);
  EXPECT_EQ(svc::encode_graph(par.best_graph),
            svc::encode_graph(ser.best_graph));
}

TEST(AnnealSearchTest, BestNeverFallsBelowTheBestStart) {
  const auto starts = small_starts();
  const auto target = sched::spec_by_name("lpa", kMu);
  const auto reference = sched::spec_by_name("sequential", kMu);
  // restarts == 1 < starts.size(): the driver must still anchor a chain
  // on every start, so the merged best covers both start ratios.
  auto opt = fast_options(true);
  opt.restarts = 1;
  const auto result = anneal_search(starts, target, reference, opt);
  double best_start = -1.0;
  for (const auto& s : starts)
    best_start = std::max(best_start,
                          evaluate_ratio(s.graph, s.P, target, reference));
  EXPECT_GE(result.best_ratio, best_start);
  EXPECT_GE(result.best_ratio, result.start_ratio);
  EXPECT_EQ(result.start_ratio, best_start);
}

TEST(AnnealSearchTest, UpdatesObsCounters) {
  auto& reg = obs::default_registry();
  const auto evals_before = reg.counter("adv.evals").value();
  const auto starts = small_starts();
  const auto target = sched::spec_by_name("lpa", kMu);
  const auto reference = sched::spec_by_name("min-time", kMu);
  const auto result =
      anneal_search(starts, target, reference, fast_options(true));
  EXPECT_GT(result.evals, 0u);
  EXPECT_EQ(reg.counter("adv.evals").value(), evals_before + result.evals);
  EXPECT_GT(reg.gauge("adv.best_ratio").value(), 0.0);
}

TEST(AnnealSearchTest, RejectsBadArguments) {
  const auto starts = small_starts();
  const auto target = sched::spec_by_name("lpa", kMu);
  const auto reference = sched::spec_by_name("min-time", kMu);
  EXPECT_THROW(
      (void)anneal_search({}, target, reference, fast_options(true)),
      std::invalid_argument);
  auto opt = fast_options(true);
  opt.iterations = 0;
  EXPECT_THROW((void)anneal_search(starts, target, reference, opt),
               std::invalid_argument);
  opt = fast_options(true);
  opt.t_final = 0.0;
  EXPECT_THROW((void)anneal_search(starts, target, reference, opt),
               std::invalid_argument);
  opt = fast_options(true);
  opt.t_initial = 0.001;  // below t_final
  EXPECT_THROW((void)anneal_search(starts, target, reference, opt),
               std::invalid_argument);
  opt = fast_options(true);
  opt.max_tasks = 0;
  EXPECT_THROW((void)anneal_search(starts, target, reference, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace moldsched::adv
