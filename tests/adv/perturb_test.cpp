// The perturbation grammar must only ever produce valid instances: every
// applicable edit yields an acyclic graph with positive-time models and a
// preserved ModelKind, inapplicable edits return nullopt instead of
// corrupting the graph, and the JSON encoding round-trips factors
// bit-exactly so annealing trails can be replayed.
#include "moldsched/adv/perturb.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "moldsched/graph/algorithms.hpp"
#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/general_model.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/svc/wire.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::adv {
namespace {

/// Diamond a -> {b, c} -> d over Eq. (1) models of distinct families.
graph::TaskGraph mixed_diamond() {
  graph::TaskGraph g;
  const auto a =
      g.add_task(std::make_shared<model::RooflineModel>(8.0, 4), "a");
  const auto b =
      g.add_task(std::make_shared<model::AmdahlModel>(6.0, 0.5), "b");
  const auto c =
      g.add_task(std::make_shared<model::CommunicationModel>(4.0, 0.25), "c");
  const auto d = g.add_task(
      std::make_shared<model::GeneralModel>(
          model::GeneralParams{10.0, 0.5, 0.125, 8}),
      "d");
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  return g;
}

graph::TaskGraph table_pair() {
  graph::TaskGraph g;
  const auto a = g.add_task(
      std::make_shared<model::TableModel>(std::vector<double>{4.0, 2.5, 2.0}),
      "t0");
  const auto b = g.add_task(
      std::make_shared<model::TableModel>(std::vector<double>{3.0, 2.0}),
      "t1");
  g.add_edge(a, b);
  return g;
}

TEST(PerturbationJsonTest, RoundTripIsBitExact) {
  Perturbation p;
  p.op = PerturbOp::kScaleWork;
  p.a = 3;
  p.b = 7;
  p.factor = 1.0 / 3.0;  // not representable in few digits
  const auto back = Perturbation::from_json(p.to_json());
  EXPECT_EQ(back.op, p.op);
  EXPECT_EQ(back.a, p.a);
  EXPECT_EQ(back.b, p.b);
  EXPECT_EQ(back.factor, p.factor);  // exact, not near
}

TEST(PerturbationJsonTest, EveryOpNameRoundTrips) {
  for (int i = 0; i < 10; ++i) {
    Perturbation p;
    p.op = static_cast<PerturbOp>(i);
    const auto back = Perturbation::from_json(p.to_json());
    EXPECT_EQ(back.op, p.op) << to_string(p.op);
  }
}

TEST(PerturbationJsonTest, RejectsUnknownOpAndNonObject) {
  EXPECT_THROW((void)Perturbation::from_json(
                   std::string("{\"op\":\"warp\",\"a\":0,\"b\":0,"
                               "\"factor\":1}")),
               std::invalid_argument);
  EXPECT_THROW((void)Perturbation::from_json(std::string("[1,2]")),
               std::invalid_argument);
}

TEST(ApplyPerturbationTest, AddEdgeRejectsCyclesDuplicatesAndSelfLoops) {
  const auto g = mixed_diamond();
  // b -> c is a legal new edge (both mid-layer).
  const auto ok = apply_perturbation(g, {PerturbOp::kAddEdge, 1, 2, 1.0});
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->has_edge(1, 2));
  EXPECT_TRUE(graph::is_acyclic(*ok));
  // d -> a closes a cycle.
  EXPECT_FALSE(
      apply_perturbation(g, {PerturbOp::kAddEdge, 3, 0, 1.0}).has_value());
  // a -> b already exists; a -> a is a self loop; 9 is unknown.
  EXPECT_FALSE(
      apply_perturbation(g, {PerturbOp::kAddEdge, 0, 1, 1.0}).has_value());
  EXPECT_FALSE(
      apply_perturbation(g, {PerturbOp::kAddEdge, 0, 0, 1.0}).has_value());
  EXPECT_FALSE(
      apply_perturbation(g, {PerturbOp::kAddEdge, 0, 9, 1.0}).has_value());
}

TEST(ApplyPerturbationTest, RemoveEdgeDropsExactlyOne) {
  const auto g = mixed_diamond();
  const auto cut =
      apply_perturbation(g, {PerturbOp::kRemoveEdge, 0, 1, 1.0});
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(cut->num_edges(), 3u);
  EXPECT_FALSE(cut->has_edge(0, 1));
  // A missing edge is inapplicable, not an error.
  EXPECT_FALSE(
      apply_perturbation(g, {PerturbOp::kRemoveEdge, 1, 2, 1.0}).has_value());
}

TEST(ApplyPerturbationTest, CloneTaskWidensTheLayer) {
  const auto g = mixed_diamond();
  const auto wide = apply_perturbation(g, {PerturbOp::kCloneTask, 1, 0, 1.0});
  ASSERT_TRUE(wide.has_value());
  ASSERT_EQ(wide->num_tasks(), 5);
  const graph::TaskId twin = 4;
  EXPECT_EQ(wide->name(twin), "b'");
  EXPECT_TRUE(wide->has_edge(0, twin));  // a -> b'
  EXPECT_TRUE(wide->has_edge(twin, 3));  // b' -> d
  EXPECT_DOUBLE_EQ(wide->model_of(twin).time(1), g.model_of(1).time(1));
  EXPECT_TRUE(graph::is_acyclic(*wide));
}

TEST(ApplyPerturbationTest, RemoveTaskMergesLayersAndRenumbers) {
  const auto g = mixed_diamond();
  const auto merged =
      apply_perturbation(g, {PerturbOp::kRemoveTask, 1, 0, 1.0});
  ASSERT_TRUE(merged.has_value());
  ASSERT_EQ(merged->num_tasks(), 3);
  // New ids: a = 0, c = 1, d = 2. The transitive a -> d precedence that
  // went through b must survive as a direct edge.
  EXPECT_EQ(merged->name(1), "c");
  EXPECT_EQ(merged->name(2), "d");
  EXPECT_TRUE(merged->has_edge(0, 2));
  EXPECT_TRUE(merged->has_edge(0, 1));
  EXPECT_TRUE(merged->has_edge(1, 2));
  EXPECT_TRUE(graph::is_acyclic(*merged));

  // The last task cannot be removed.
  graph::TaskGraph single;
  single.add_task(std::make_shared<model::AmdahlModel>(1.0, 0.1), "only");
  EXPECT_FALSE(
      apply_perturbation(single, {PerturbOp::kRemoveTask, 0, 0, 1.0})
          .has_value());
}

TEST(ApplyPerturbationTest, SplitTaskHalvesWorkAndChainsTheTail) {
  const auto g = mixed_diamond();
  const auto deep = apply_perturbation(g, {PerturbOp::kSplitTask, 1, 0, 1.0});
  ASSERT_TRUE(deep.has_value());
  ASSERT_EQ(deep->num_tasks(), 5);
  const graph::TaskId tail = 4;
  EXPECT_EQ(deep->name(tail), "b/2");
  // b keeps its predecessor, the tail inherits the successor, and the
  // two halves are chained.
  EXPECT_TRUE(deep->has_edge(0, 1));
  EXPECT_TRUE(deep->has_edge(1, tail));
  EXPECT_TRUE(deep->has_edge(tail, 3));
  EXPECT_FALSE(deep->has_edge(1, 3));
  const auto* head =
      dynamic_cast<const model::GeneralModel*>(&deep->model_of(1));
  const auto* half =
      dynamic_cast<const model::GeneralModel*>(&deep->model_of(tail));
  ASSERT_NE(head, nullptr);
  ASSERT_NE(half, nullptr);
  EXPECT_EQ(head->kind(), model::ModelKind::kAmdahl);
  EXPECT_DOUBLE_EQ(head->params().w, 3.0);
  EXPECT_DOUBLE_EQ(half->params().w, 3.0);
  // Splitting an arbitrary-model task is inapplicable.
  const auto t = table_pair();
  EXPECT_FALSE(
      apply_perturbation(t, {PerturbOp::kSplitTask, 0, 0, 1.0}).has_value());
}

TEST(ApplyPerturbationTest, ScaleOpsPreserveModelKind) {
  const auto g = mixed_diamond();
  const auto scaled =
      apply_perturbation(g, {PerturbOp::kScaleWork, 0, 0, 2.0});
  ASSERT_TRUE(scaled.has_value());
  const auto* m =
      dynamic_cast<const model::GeneralModel*>(&scaled->model_of(0));
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind(), model::ModelKind::kRoofline);
  EXPECT_DOUBLE_EQ(m->params().w, 16.0);
  // Only task 0 changed.
  EXPECT_DOUBLE_EQ(scaled->model_of(1).time(1), g.model_of(1).time(1));
}

TEST(ApplyPerturbationTest, ScalingAZeroParameterIsInapplicable) {
  const auto g = mixed_diamond();
  // Roofline task a has d == 0 and c == 0: family-changing edits refused.
  EXPECT_FALSE(
      apply_perturbation(g, {PerturbOp::kScaleSeq, 0, 0, 2.0}).has_value());
  EXPECT_FALSE(
      apply_perturbation(g, {PerturbOp::kScaleComm, 0, 0, 2.0}).has_value());
  // Amdahl task b has d > 0: scale-seq applies and keeps the family.
  const auto amdahl =
      apply_perturbation(g, {PerturbOp::kScaleSeq, 1, 0, 2.0});
  ASSERT_TRUE(amdahl.has_value());
  const auto* m =
      dynamic_cast<const model::GeneralModel*>(&amdahl->model_of(1));
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind(), model::ModelKind::kAmdahl);
  EXPECT_DOUBLE_EQ(m->params().d, 1.0);
  // Non-positive and non-finite factors are refused.
  EXPECT_FALSE(
      apply_perturbation(g, {PerturbOp::kScaleWork, 0, 0, 0.0}).has_value());
  EXPECT_FALSE(apply_perturbation(
                   g, {PerturbOp::kScaleWork, 0, 0,
                       std::numeric_limits<double>::infinity()})
                   .has_value());
}

TEST(ApplyPerturbationTest, SetPbarAppliesToRooflineAndGeneralOnly) {
  const auto g = mixed_diamond();
  const auto bumped = apply_perturbation(g, {PerturbOp::kSetPbar, 0, 16, 1.0});
  ASSERT_TRUE(bumped.has_value());
  const auto* m =
      dynamic_cast<const model::GeneralModel*>(&bumped->model_of(0));
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->params().pbar, 16);
  // No-op, invalid value, and wrong families are inapplicable.
  EXPECT_FALSE(
      apply_perturbation(g, {PerturbOp::kSetPbar, 0, 4, 1.0}).has_value());
  EXPECT_FALSE(
      apply_perturbation(g, {PerturbOp::kSetPbar, 0, 0, 1.0}).has_value());
  EXPECT_FALSE(
      apply_perturbation(g, {PerturbOp::kSetPbar, 1, 16, 1.0}).has_value());
  EXPECT_FALSE(
      apply_perturbation(g, {PerturbOp::kSetPbar, 2, 16, 1.0}).has_value());
}

TEST(ApplyPerturbationTest, ScaleTableEntryEditsOneEntry) {
  const auto g = table_pair();
  const auto scaled =
      apply_perturbation(g, {PerturbOp::kScaleTableEntry, 0, 1, 0.5});
  ASSERT_TRUE(scaled.has_value());
  const auto* m =
      dynamic_cast<const model::TableModel*>(&scaled->model_of(0));
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->time(1), 4.0);
  EXPECT_DOUBLE_EQ(m->time(2), 1.25);
  EXPECT_DOUBLE_EQ(m->time(3), 2.0);
  // Out-of-range index / wrong family are inapplicable.
  EXPECT_FALSE(
      apply_perturbation(g, {PerturbOp::kScaleTableEntry, 0, 3, 0.5})
          .has_value());
  const auto eq1 = mixed_diamond();
  EXPECT_FALSE(
      apply_perturbation(eq1, {PerturbOp::kScaleTableEntry, 0, 0, 0.5})
          .has_value());
}

TEST(ProposePerturbationTest, DeterministicGivenRngState) {
  const auto g = mixed_diamond();
  util::Rng a(1234);
  util::Rng b(1234);
  for (int i = 0; i < 50; ++i) {
    const auto pa = propose_perturbation(g, a, 240);
    const auto pb = propose_perturbation(g, b, 240);
    ASSERT_EQ(pa.has_value(), pb.has_value());
    if (!pa) continue;
    EXPECT_EQ(pa->to_json(), pb->to_json());
  }
}

TEST(ProposePerturbationTest, ProposalsAreAlwaysApplicableAndStayValid) {
  graph::TaskGraph g = mixed_diamond();
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto move = propose_perturbation(g, rng, 64);
    ASSERT_TRUE(move.has_value()) << "stuck after " << i << " moves";
    auto next = apply_perturbation(g, *move);
    ASSERT_TRUE(next.has_value()) << move->to_json();
    ASSERT_TRUE(graph::is_acyclic(*next)) << move->to_json();
    next->validate();
    // Losslessly serializable, and the serialized edit replays to the
    // byte-identical instance.
    const auto wire = svc::encode_graph(*next);
    const auto replayed =
        apply_perturbation(g, Perturbation::from_json(move->to_json()));
    ASSERT_TRUE(replayed.has_value());
    EXPECT_EQ(svc::encode_graph(*replayed), wire);
    g = std::move(*next);
    ASSERT_LE(g.num_tasks(), 65);  // growth respects max_tasks (+1 worst case)
  }
}

TEST(ProposePerturbationTest, GrowthStopsAtMaxTasks) {
  // max_tasks == current size: clone/split must never be proposed, so
  // 300 accepted proposals never grow the graph.
  const auto g = mixed_diamond();
  util::Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    const auto move = propose_perturbation(g, rng, g.num_tasks());
    if (!move) continue;
    EXPECT_NE(move->op, PerturbOp::kCloneTask);
    EXPECT_NE(move->op, PerturbOp::kSplitTask);
  }
}

TEST(ProposePerturbationTest, ReturnsNulloptOnEmptyGraph) {
  graph::TaskGraph empty;
  util::Rng rng(5);
  EXPECT_FALSE(propose_perturbation(empty, rng, 240).has_value());
}

}  // namespace
}  // namespace moldsched::adv
