// One pairwise tournament cell end-to-end: the fixed Figure 1-4
// constructions anchor the baseline, run_pair's archived record replays
// bit-identically, and the CSV / markdown emitters cover the full
// 8-scheduler registry.
#include "moldsched/adv/tournament.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "moldsched/adv/archive.hpp"
#include "moldsched/svc/wire.hpp"

namespace moldsched::adv {
namespace {

TournamentOptions fast_options() {
  TournamentOptions opt;
  opt.seed = 3;
  opt.iterations = 10;
  opt.restarts = 1;
  return opt;
}

TEST(TournamentStartsTest, FixedConstructionsPlusCorpusDeterministically) {
  const auto starts = tournament_starts(0.25, 3);
  // Four feasible fixed constructions at mu = 0.25 plus two corpus
  // instances, in a fixed order.
  ASSERT_EQ(starts.size(), 6u);
  EXPECT_EQ(starts[0].label, "fig:roofline");
  EXPECT_EQ(starts[1].label, "fig:communication");
  EXPECT_EQ(starts[2].label, "fig:amdahl");
  EXPECT_EQ(starts[3].label, "fig:general");
  EXPECT_EQ(starts[4].label, "corpus:general");
  EXPECT_EQ(starts[5].label, "corpus:table");
  const auto again = tournament_starts(0.25, 3);
  for (std::size_t i = 0; i < starts.size(); ++i) {
    EXPECT_EQ(svc::encode_graph(starts[i].graph),
              svc::encode_graph(again[i].graph));
    EXPECT_EQ(starts[i].P, again[i].P);
  }
}

TEST(TournamentTest, SchedulerNamesMatchTheRegistry) {
  const auto names = tournament_scheduler_names();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_NE(std::find(names.begin(), names.end(), "lpa"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "min-time"), names.end());
}

TEST(TournamentTest, RunPairProducesAValidatedReplayableRecord) {
  const auto pr = run_pair("min-time", "lpa", fast_options());
  EXPECT_EQ(pr.target, "min-time");
  EXPECT_EQ(pr.reference, "lpa");
  EXPECT_GT(pr.fixed_ratio, 0.0);
  EXPECT_GE(pr.best_ratio, pr.fixed_ratio);
  EXPECT_GT(pr.evals, 0u);
  EXPECT_TRUE(pr.validated);
  EXPECT_GE(pr.record.graph.num_tasks(), 1);
  EXPECT_EQ(pr.record.suite, "pisa");
  EXPECT_EQ(pr.record.seed, fast_options().seed);

  // The archived record survives the codec and replays bit-identically
  // through both schedulers of the pair.
  const auto rt = decode_record(encode_record(pr.record));
  const auto target_replay = replay_record(rt);
  EXPECT_TRUE(target_replay.valid) << target_replay.violations;
  EXPECT_TRUE(target_replay.bit_identical);
  const auto reference_replay = replay_record(rt, rt.reference);
  EXPECT_TRUE(reference_replay.valid) << reference_replay.violations;
  EXPECT_TRUE(reference_replay.bit_identical);
}

TEST(TournamentTest, RunPairIsDeterministic) {
  const auto a = run_pair("min-time", "lpa", fast_options());
  const auto b = run_pair("min-time", "lpa", fast_options());
  EXPECT_EQ(a.best_ratio, b.best_ratio);
  EXPECT_EQ(a.fixed_ratio, b.fixed_ratio);
  EXPECT_EQ(a.evals, b.evals);
  EXPECT_EQ(encode_record(a.record), encode_record(b.record));
}

TEST(TournamentTest, CsvAndMarkdownCoverTheFullMatrix) {
  PairResult pr;
  pr.target = "min-time";
  pr.reference = "lpa";
  pr.fixed_ratio = 1.5;
  pr.best_ratio = 2.25;
  pr.improved = true;
  pr.validated = true;
  const std::vector<PairResult> results{pr};

  const auto matrix = dominance_matrix_csv(results);
  // Header + one row per scheduler, each with one cell per scheduler.
  const auto lines = static_cast<std::size_t>(
      std::count(matrix.begin(), matrix.end(), '\n'));
  EXPECT_EQ(lines, 1u + tournament_scheduler_names().size());
  EXPECT_NE(matrix.find("target\\reference"), std::string::npos);
  EXPECT_NE(matrix.find("2.25"), std::string::npos);

  const auto pairs = pairs_csv(results);
  EXPECT_NE(pairs.find("target,reference,fixed_ratio,best_ratio"),
            std::string::npos);
  EXPECT_NE(pairs.find("min-time,lpa,1.5,2.25,1,1"), std::string::npos);

  const auto report = tournament_report_md(results, TournamentOptions{});
  EXPECT_NE(report.find("# PISA adversarial tournament"), std::string::npos);
  EXPECT_NE(report.find("2.25*"), std::string::npos);  // improved marker
  EXPECT_NE(report.find("**min-time** vs **lpa**"), std::string::npos);
}

}  // namespace
}  // namespace moldsched::adv
