// The repro archive is the contract between a search run and a later
// debugging session: records must round-trip losslessly (including full
// 64-bit seeds, which do not fit in a JSON double), bad files must fail
// with the offending line number, and replaying a record through its
// own pair must reproduce the archived makespans bit-identically.
#include "moldsched/adv/archive.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <vector>

#include "moldsched/model/special_models.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/svc/wire.hpp"

namespace moldsched::adv {
namespace {

namespace fs = std::filesystem;

ReproRecord sample_record() {
  ReproRecord r;
  r.suite = "pisa";
  r.target = "min-time";
  r.reference = "lpa";
  r.P = 8;
  r.mu = 0.25;
  // Deliberately not representable as a double: needs all 64 bits.
  r.seed = 0x9e3779b97f4a7c15ULL;
  r.ratio = 1.0 / 3.0;
  r.target_makespan = 3.0;
  r.reference_makespan = 9.0;
  r.fixed_ratio = 0.3;
  r.note = "restart=1 \"quoted\"";
  const auto a = r.graph.add_task(
      std::make_shared<model::RooflineModel>(7.0, 4), "a");
  const auto b = r.graph.add_task(
      std::make_shared<model::AmdahlModel>(5.0, 1.0 / 7.0), "b");
  r.graph.add_edge(a, b);
  return r;
}

TEST(ReproRecordTest, EncodeDecodeRoundTripIsLossless) {
  const auto r = sample_record();
  const auto line = encode_record(r);
  const auto back = decode_record(line);
  EXPECT_EQ(back.suite, r.suite);
  EXPECT_EQ(back.target, r.target);
  EXPECT_EQ(back.reference, r.reference);
  EXPECT_EQ(back.P, r.P);
  EXPECT_EQ(back.mu, r.mu);
  EXPECT_EQ(back.seed, r.seed);  // all 64 bits survive
  EXPECT_EQ(back.ratio, r.ratio);
  EXPECT_EQ(back.target_makespan, r.target_makespan);
  EXPECT_EQ(back.reference_makespan, r.reference_makespan);
  EXPECT_EQ(back.fixed_ratio, r.fixed_ratio);
  EXPECT_EQ(back.note, r.note);
  // An empty denominator encodes resolved to the reference scheduler.
  EXPECT_EQ(back.denominator, r.reference);
  EXPECT_EQ(svc::encode_graph(back.graph), svc::encode_graph(r.graph));
  // Encoding is idempotent: re-encoding the decoded record is byte-equal.
  EXPECT_EQ(encode_record(back), line);
}

TEST(ReproRecordTest, DenominatorRoundTripsAndLegacyLinesDecode) {
  auto r = sample_record();
  r.denominator = "exact-topt";
  const auto line = encode_record(r);
  const auto back = decode_record(line);
  EXPECT_EQ(back.denominator, "exact-topt");
  EXPECT_EQ(back.denominator_scheduler(), "exact-topt");

  // Archives written before the field existed lack it entirely; they
  // must still decode, resolving the denominator to the reference.
  auto legacy = encode_record(sample_record());
  const auto pos = legacy.find(",\"denominator\":\"lpa\"");
  ASSERT_NE(pos, std::string::npos) << legacy;
  legacy.erase(pos, std::string(",\"denominator\":\"lpa\"").size());
  const auto old = decode_record(legacy);
  EXPECT_TRUE(old.denominator.empty());
  EXPECT_EQ(old.denominator_scheduler(), "lpa");
}

TEST(ReproRecordTest, DecodeRejectsMalformedRecords) {
  EXPECT_THROW((void)decode_record(std::string("[]")), std::invalid_argument);
  // Seed as a JSON number (or garbage string) is rejected, not rounded.
  auto line = encode_record(sample_record());
  const auto pos = line.find("\"seed\":\"");
  ASSERT_NE(pos, std::string::npos);
  auto bad = line;
  bad.replace(pos, std::string("\"seed\":\"").size(), "\"seed\":\"x");
  EXPECT_THROW((void)decode_record(bad), std::invalid_argument);
  // Missing field.
  EXPECT_THROW(
      (void)decode_record(std::string("{\"suite\":\"pisa\"}")),
      std::invalid_argument);
}

TEST(ReadArchiveTest, ParsesLinesSkipsBlanksReportsLineNumbers) {
  const auto dir = fs::path(testing::TempDir()) / "moldsched_archive_test";
  fs::create_directories(dir);
  const auto path = (dir / "ok.jsonl").string();
  {
    std::ofstream out(path);
    out << encode_record(sample_record()) << "\n\n   \n"
        << encode_record(sample_record()) << "\n";
  }
  const auto records = read_archive(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].seed, sample_record().seed);

  const auto bad_path = (dir / "bad.jsonl").string();
  {
    std::ofstream out(bad_path);
    out << encode_record(sample_record()) << "\n{\"broken\":1}\n";
  }
  try {
    (void)read_archive(bad_path);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)read_archive((dir / "missing.jsonl").string()),
               std::runtime_error);
  fs::remove_all(dir);
}

TEST(ReplayRecordTest, ReplayIsBitIdenticalForTargetAndReference) {
  auto r = sample_record();
  // Archive the genuinely observed makespans so bit-identity can hold.
  r.target_makespan = sched::spec_by_name(r.target, r.mu)
                          .run(r.graph, r.P).makespan;
  r.reference_makespan = sched::spec_by_name(r.reference, r.mu)
                             .run(r.graph, r.P).makespan;
  r.ratio = r.target_makespan / r.reference_makespan;
  const auto rt = decode_record(encode_record(r));

  const auto target_out = replay_record(rt);  // empty = target
  EXPECT_EQ(target_out.scheduler, r.target);
  EXPECT_TRUE(target_out.valid) << target_out.violations;
  EXPECT_TRUE(target_out.checked);
  EXPECT_TRUE(target_out.bit_identical);
  EXPECT_EQ(target_out.makespan, r.target_makespan);
  EXPECT_GT(target_out.lower_bound, 0.0);
  EXPECT_GE(target_out.ratio_to_lb, 1.0 - 1e-12);
  // The archived objective is re-derived from the recorded denominator
  // scheduler and must reproduce the ratio to the bit.
  EXPECT_TRUE(target_out.ratio_checked);
  EXPECT_EQ(target_out.denominator, r.reference);
  EXPECT_EQ(target_out.denominator_makespan, r.reference_makespan);
  EXPECT_TRUE(target_out.ratio_bit_identical)
      << target_out.replayed_ratio << " vs " << r.ratio;

  const auto ref_out = replay_record(rt, r.reference);
  EXPECT_TRUE(ref_out.checked);
  EXPECT_TRUE(ref_out.bit_identical);
  EXPECT_EQ(ref_out.makespan, r.reference_makespan);

  // A third scheduler replays fine but is not checked against the
  // archived makespans.
  const auto other = replay_record(rt, "sequential");
  EXPECT_TRUE(other.valid) << other.violations;
  EXPECT_FALSE(other.checked);
  EXPECT_FALSE(other.bit_identical);

  EXPECT_THROW((void)replay_record(rt, "no-such-scheduler"),
               std::invalid_argument);
}

TEST(ReplayRecordTest, ExactToptDenominatorIsReplayedAndVerified) {
  auto r = sample_record();
  r.denominator = "exact-topt";
  r.target_makespan = sched::spec_by_name(r.target, r.mu)
                          .run(r.graph, r.P).makespan;
  const double t_opt =
      sched::spec_by_name("exact-topt", r.mu).run(r.graph, r.P).makespan;
  ASSERT_GT(t_opt, 0.0);
  r.ratio = r.target_makespan / t_opt;
  const auto rt = decode_record(encode_record(r));

  const auto out = replay_record(rt);
  EXPECT_TRUE(out.checked);
  EXPECT_TRUE(out.bit_identical);
  EXPECT_TRUE(out.ratio_checked);
  EXPECT_EQ(out.denominator, "exact-topt");
  // The oracle is deterministic, so the exact objective reproduces too.
  EXPECT_EQ(out.denominator_makespan, t_opt);
  EXPECT_TRUE(out.ratio_bit_identical)
      << out.replayed_ratio << " vs " << r.ratio;

  // A doctored ratio is caught rather than silently re-reported.
  auto bad = rt;
  bad.ratio = rt.ratio * (1.0 + 1e-9);
  const auto caught = replay_record(bad);
  EXPECT_TRUE(caught.ratio_checked);
  EXPECT_FALSE(caught.ratio_bit_identical);
}

TEST(ArchiveBufferTest, DrainsSortedByJobIdAndEmpties) {
  (void)archive_buffer_drain();  // isolate from other tests
  archive_buffer_put(7, "seven");
  archive_buffer_put(2, "two");
  archive_buffer_put(5, "five");
  archive_buffer_put(2, "two-replaced");
  const auto lines = archive_buffer_drain();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "two-replaced");
  EXPECT_EQ(lines[1], "five");
  EXPECT_EQ(lines[2], "seven");
  EXPECT_TRUE(archive_buffer_drain().empty());
}

}  // namespace
}  // namespace moldsched::adv
