// Differential testing against the exact optimum on a randomized grid of
// tiny instances: every scheduler in the stack must sit between the
// exact optimum and its own guarantee.
#include <gtest/gtest.h>

#include <string>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/sched/exact.hpp"
#include "moldsched/sched/level_scheduler.hpp"
#include "moldsched/sched/offline.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched {
namespace {

class ExactDifferentialTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactDifferentialTest, AllSchedulersBoundedByExactOptimum) {
  util::Rng rng(GetParam());
  const model::ModelKind kinds[] = {
      model::ModelKind::kRoofline, model::ModelKind::kCommunication,
      model::ModelKind::kAmdahl, model::ModelKind::kGeneral};
  for (int rep = 0; rep < 4; ++rep) {
    const auto kind = kinds[rng.uniform_int(0, 3)];
    const model::ModelSampler sampler(kind);
    const int P = static_cast<int>(rng.uniform_int(2, 6));
    const auto provider = graph::sampling_provider(sampler, rng, P);
    const auto g = graph::erdos_renyi_dag(
        static_cast<int>(rng.uniform_int(2, 6)), 0.35, rng, provider);

    const auto exact = sched::ExactScheduler(g, P).run();
    const double lb = analysis::optimal_makespan_lower_bound(g, P);
    ASSERT_GE(exact.makespan, lb * (1.0 - 1e-9));

    // Online at the model-optimal mu stays within the theorem bound of
    // the true optimum.
    const double mu = analysis::optimal_mu(kind);
    const double bound = analysis::optimal_ratio(kind).upper_bound;
    const core::LpaAllocator lpa(mu);
    const auto online = core::schedule_online(g, P, lpa);
    EXPECT_GE(online.makespan, exact.makespan * (1.0 - 1e-9));
    EXPECT_LE(online.makespan, bound * exact.makespan * (1.0 + 1e-9));

    // The offline heuristic sits between the optimum and online-quality.
    const auto offline = sched::OfflineTradeoffScheduler(g, P).run();
    EXPECT_GE(offline.makespan, exact.makespan * (1.0 - 1e-9));

    // Level-by-level is feasible and never better than the optimum.
    const auto level = sched::schedule_level_by_level(g, P, lpa);
    EXPECT_GE(level.makespan, exact.makespan * (1.0 - 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactDifferentialTest,
                         testing::Range<std::uint64_t>(100, 110),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace moldsched
