// End-to-end pipeline tests: the flows a library user would run, from
// graph construction through scheduling, validation, comparison and
// rendering.
#include <gtest/gtest.h>

#include <string>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/experiment.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/analysis/report.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/sched/offline.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/sim/gantt.hpp"
#include "moldsched/sim/validator.hpp"

namespace moldsched {
namespace {

TEST(EndToEndTest, CholeskyWorkflowFullPipeline) {
  graph::WorkflowModelConfig cfg;
  cfg.kind = model::ModelKind::kAmdahl;
  const auto g = graph::cholesky(5, cfg);
  const int P = 16;

  const double mu = analysis::optimal_mu(cfg.kind);
  const auto spec = sched::lpa_spec(mu);
  const auto m = analysis::measure_scheduler(g, P, spec);

  // The measured ratio must respect the Amdahl theorem bound.
  const double bound = analysis::optimal_ratio(cfg.kind).upper_bound;
  EXPECT_LE(m.ratio_vs_lb, bound + 1e-9);
  EXPECT_GE(m.ratio_vs_lb, 1.0 - 1e-9);
}

TEST(EndToEndTest, SuiteComparisonOnWorkflows) {
  const auto cases = analysis::workflow_catalog(model::ModelKind::kGeneral);
  const double mu = analysis::optimal_mu(model::ModelKind::kGeneral);
  const auto rows =
      analysis::compare_suite(cases, 32, sched::standard_suite(mu));
  ASSERT_FALSE(rows.empty());
  // LPA respects its bound on every case (max, not just mean).
  const double bound =
      analysis::optimal_ratio(model::ModelKind::kGeneral).upper_bound;
  EXPECT_LE(rows.front().ratio.max, bound + 1e-9);
  // The table renders.
  const auto table = analysis::suite_table(rows);
  EXPECT_GT(table.to_ascii().size(), 100u);
}

TEST(EndToEndTest, OnlineVersusOfflineOnMontage) {
  graph::WorkflowModelConfig cfg;
  cfg.kind = model::ModelKind::kCommunication;
  const auto g = graph::montage(10, cfg);
  const int P = 24;

  const double mu = analysis::optimal_mu(cfg.kind);
  const core::LpaAllocator lpa(mu);
  const auto online = core::schedule_online(g, P, lpa);
  sim::expect_valid_schedule(g, online.trace, P);

  const auto offline = sched::OfflineTradeoffScheduler(g, P).run();
  sim::expect_valid_schedule(g, offline.trace, P);

  // Offline with full knowledge is a sane T_opt proxy: it must be within
  // the theorem bound of the lower bound, and online must be within the
  // bound of offline.
  const double lb = analysis::optimal_makespan_lower_bound(g, P);
  EXPECT_GE(offline.makespan, lb * (1.0 - 1e-9));
  const double bound = analysis::optimal_ratio(cfg.kind).upper_bound;
  EXPECT_LE(online.makespan, bound * offline.makespan * (1.0 + 1e-9));
}

TEST(EndToEndTest, GanttRendersARealSchedule) {
  graph::WorkflowModelConfig cfg;
  cfg.kind = model::ModelKind::kRoofline;
  const auto g = graph::wavefront(3, 3, cfg);
  const int P = 8;
  const core::LpaAllocator lpa(analysis::optimal_mu(cfg.kind));
  const auto result = core::schedule_online(g, P, lpa);
  const auto chart = sim::render_gantt(result.trace, g, P);
  EXPECT_NE(chart.find("Gantt (P=8"), std::string::npos);
  EXPECT_NE(chart.find("cell(0,0)"), std::string::npos);
  const auto util = sim::render_utilization(result.trace, P);
  EXPECT_NE(util.find("/8"), std::string::npos);
}

TEST(EndToEndTest, Table1PipelineRendersPaperNumbers) {
  const auto table = analysis::table1_table(analysis::compute_table1());
  const auto text = table.to_markdown();
  // All four upper bounds at 3 decimals, matching Table 1 after rounding.
  EXPECT_NE(text.find("2.618"), std::string::npos);
  EXPECT_NE(text.find("3.6"), std::string::npos);
  EXPECT_NE(text.find("4.7"), std::string::npos);
  EXPECT_NE(text.find("5.7"), std::string::npos);
}

}  // namespace
}  // namespace moldsched
