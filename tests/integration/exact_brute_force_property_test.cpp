// Property suite for the exact oracle: on every sampled instance small
// enough to enumerate (<= 8 tasks), the pruned branch-and-bound must
// return the *bit-identical* optimal makespan of the unpruned brute
// force — pruning and memoization may only skip work, never change the
// arithmetic of the winning leaf. Seeds per cell scale with
// MOLDSCHED_PROPERTY_SEEDS for the nightly sweep.
#include <gtest/gtest.h>

#include <cstdlib>
#include <ios>
#include <sstream>
#include <string>

#include "moldsched/check/corpus.hpp"
#include "moldsched/model/speedup_model.hpp"
#include "moldsched/opt/bnb.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched {
namespace {

int seeds_per_cell() {
  if (const char* env = std::getenv("MOLDSCHED_PROPERTY_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 64;
}

std::string hex(double v) {
  std::ostringstream os;
  os << std::hexfloat << v;
  return os.str();
}

struct Cell {
  const char* family;
  model::ModelKind kind;
  int P;
};

std::string cell_name(const testing::TestParamInfo<Cell>& info) {
  std::string family = info.param.family;
  for (auto& c : family)
    if (c == '_') c = '0';
  return family + "_" + model::to_string(info.param.kind) + "_P" +
         std::to_string(info.param.P);
}

class ExactBruteForceProperty : public testing::TestWithParam<Cell> {};

TEST_P(ExactBruteForceProperty, PrunedSearchIsBitIdenticalToBruteForce) {
  const auto [family, kind, P] = GetParam();
  const auto& families = check::corpus_families();
  int fam = -1;
  for (int i = 0; i < static_cast<int>(families.size()); ++i)
    if (families[static_cast<std::size_t>(i)] == family) fam = i;
  ASSERT_GE(fam, 0) << family;

  int checked = 0;
  int truncated = 0;
  for (int seed = 1; seed <= seeds_per_cell(); ++seed) {
    // Redraw until the instance is enumerable; brute force over 8 tasks
    // is not a practical arbiter.
    graph::TaskGraph g;
    bool found = false;
    for (int attempt = 0; attempt < 64 && !found; ++attempt) {
      util::Rng rng(util::derive_seed(
          util::derive_seed(0xb17e4ac7ULL, static_cast<std::uint64_t>(seed)),
          static_cast<std::uint64_t>(attempt)));
      g = check::corpus_graph(fam, kind, rng, P);
      found = g.num_tasks() >= 2 && g.num_tasks() <= 8;
    }
    if (!found) continue;

    const auto pruned = opt::branch_and_bound_topt(g, P);
    ASSERT_EQ(pruned.status, opt::BnbStatus::kExact)
        << family << " seed " << seed;
    const auto brute = opt::brute_force_topt(g, P, 8, 20'000'000);
    if (brute.status != opt::BnbStatus::kExact) {
      // The unpruned tree blew its budget; that instance cannot serve
      // as an arbiter, but it must stay rare.
      ++truncated;
      continue;
    }
    ++checked;
    EXPECT_EQ(pruned.makespan, brute.makespan)
        << family << "/" << model::to_string(kind) << " P=" << P << " seed "
        << seed << ": bnb=" << hex(pruned.makespan)
        << " brute=" << hex(brute.makespan);
  }
  EXPECT_GT(checked, 0) << "cell produced no enumerable instances";
  EXPECT_LE(truncated, checked)
      << "brute force budget-truncated more often than it arbitrated";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExactBruteForceProperty,
    testing::Values(
        Cell{"layered_random", model::ModelKind::kRoofline, 3},
        Cell{"fork_join", model::ModelKind::kAmdahl, 4},
        Cell{"series_parallel", model::ModelKind::kCommunication, 3},
        Cell{"random_out_tree", model::ModelKind::kGeneral, 4},
        Cell{"chain", model::ModelKind::kArbitrary, 5},
        Cell{"diamond", model::ModelKind::kGeneral, 3}),
    cell_name);

}  // namespace
}  // namespace moldsched
