// Machine-checks of the analysis framework of Section 4.2 on simulated
// schedules: the interval partition, Lemma 3, Lemma 4 and the combined
// Lemma 5 bound, with the per-task alpha/beta actually realized by
// Algorithm 2.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/intervals.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched {
namespace {

struct LemmaCase {
  model::ModelKind kind;
  int P;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<LemmaCase>& info) {
  return model::to_string(info.param.kind) + "_P" +
         std::to_string(info.param.P) + "_s" +
         std::to_string(info.param.seed);
}

class LemmaPropertyTest : public testing::TestWithParam<LemmaCase> {};

TEST_P(LemmaPropertyTest, IntervalPartitionAndLemmas345) {
  const auto [kind, P, seed] = GetParam();
  const double mu = analysis::optimal_mu(kind);
  const core::LpaAllocator alloc(mu);

  util::Rng rng(seed);
  const model::ModelSampler sampler(kind);
  const auto provider = graph::sampling_provider(sampler, rng, P);
  const auto g = graph::layered_random(7, 2, 9, 0.3, rng, provider);

  const auto result = core::schedule_online(g, P, alloc);
  const auto breakdown = core::classify_intervals(result.trace, P, mu);

  // List schedules never leave the machine fully idle mid-run.
  EXPECT_NEAR(breakdown.t0, 0.0, 1e-12);
  // T = T1 + T2 + T3 (the partition of Section 4.2).
  EXPECT_NEAR(breakdown.total(), result.makespan, 1e-9 * result.makespan);

  // Realized alpha: max over tasks of a(p_initial)/a_min. Lemma 3 uses
  // the *initial* allocations, which upper-bound the final areas.
  double alpha = 1.0;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    alpha = std::max(alpha, alloc.decide(g.model_of(v), P).alpha);

  const auto bounds = analysis::lower_bounds(g, P);

  // Lemma 3: mu*T2 + (1-mu)*T3 <= alpha * A_min / P.
  EXPECT_LE(core::lemma3_lhs(breakdown, mu),
            alpha * bounds.min_total_area / static_cast<double>(P) *
                (1.0 + 1e-9));

  // Lemma 4: T1/beta + mu*T2 <= C_min with beta = delta(mu).
  const double beta = alloc.delta();
  EXPECT_LE(core::lemma4_lhs(breakdown, mu, std::max(1.0, beta)),
            bounds.min_critical_path * (1.0 + 1e-9));

  // Lemma 5 with the realized alpha.
  const double ratio = (mu * alpha + 1.0 - 2.0 * mu) / (mu * (1.0 - mu));
  EXPECT_LE(result.makespan, ratio * bounds.lower_bound * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LemmaPropertyTest,
    testing::Values(LemmaCase{model::ModelKind::kRoofline, 10, 1},
                    LemmaCase{model::ModelKind::kRoofline, 37, 2},
                    LemmaCase{model::ModelKind::kCommunication, 10, 1},
                    LemmaCase{model::ModelKind::kCommunication, 37, 2},
                    LemmaCase{model::ModelKind::kAmdahl, 10, 1},
                    LemmaCase{model::ModelKind::kAmdahl, 37, 2},
                    LemmaCase{model::ModelKind::kGeneral, 10, 1},
                    LemmaCase{model::ModelKind::kGeneral, 37, 2},
                    LemmaCase{model::ModelKind::kGeneral, 97, 3}),
    case_name);

}  // namespace
}  // namespace moldsched
