// The headline machine-checkable property: Lemma 5's proof bounds the
// online makespan by ratio * max(A_min/P, C_min), where ratio is the
// Theorem 1-4 constant of the task's speedup model. We assert it on a
// grid of random graph shapes, platform sizes and seeds, for all four
// models.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched {
namespace {

struct RatioCase {
  model::ModelKind kind;
  int P;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<RatioCase>& info) {
  return model::to_string(info.param.kind) + "_P" +
         std::to_string(info.param.P) + "_s" +
         std::to_string(info.param.seed);
}

class CompetitiveRatioTest : public testing::TestWithParam<RatioCase> {};

TEST_P(CompetitiveRatioTest, MakespanWithinTheoremBoundOfLowerBound) {
  const auto [kind, P, seed] = GetParam();
  const double mu = analysis::optimal_mu(kind);
  const double bound = analysis::optimal_ratio(kind).upper_bound;
  const core::LpaAllocator alloc(mu);

  util::Rng rng(seed);
  const model::ModelSampler sampler(kind);
  const auto provider = graph::sampling_provider(sampler, rng, P);

  const std::vector<graph::TaskGraph> graphs = [&] {
    std::vector<graph::TaskGraph> out;
    out.push_back(graph::layered_random(6, 2, 10, 0.3, rng, provider));
    out.push_back(graph::erdos_renyi_dag(50, 0.08, rng, provider));
    out.push_back(graph::fork_join(3, 9, provider));
    out.push_back(graph::random_out_tree(60, 3, rng, provider));
    out.push_back(graph::chain(15, provider));
    out.push_back(graph::independent(40, provider));
    out.push_back(graph::series_parallel(45, rng, provider));
    return out;
  }();

  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const auto& g = graphs[i];
    const auto result = core::schedule_online(g, P, alloc);
    sim::expect_valid_schedule(g, result.trace, P);
    const double lb = analysis::optimal_makespan_lower_bound(g, P);
    EXPECT_LE(result.makespan, bound * lb * (1.0 + 1e-9))
        << "graph " << i << " of kind " << model::to_string(kind)
        << ": ratio " << result.makespan / lb << " vs bound " << bound;
    // And the makespan can never beat the lower bound itself.
    EXPECT_GE(result.makespan, lb * (1.0 - 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CompetitiveRatioTest,
    testing::Values(
        RatioCase{model::ModelKind::kRoofline, 4, 1},
        RatioCase{model::ModelKind::kRoofline, 16, 2},
        RatioCase{model::ModelKind::kRoofline, 61, 3},
        RatioCase{model::ModelKind::kCommunication, 4, 1},
        RatioCase{model::ModelKind::kCommunication, 16, 2},
        RatioCase{model::ModelKind::kCommunication, 61, 3},
        RatioCase{model::ModelKind::kAmdahl, 4, 1},
        RatioCase{model::ModelKind::kAmdahl, 16, 2},
        RatioCase{model::ModelKind::kAmdahl, 61, 3},
        RatioCase{model::ModelKind::kGeneral, 4, 1},
        RatioCase{model::ModelKind::kGeneral, 16, 2},
        RatioCase{model::ModelKind::kGeneral, 61, 3},
        RatioCase{model::ModelKind::kGeneral, 128, 4}),
    case_name);

// Graphs mixing all four model families are still Eq. (1) instances, so
// Theorem 4's general bound applies to them at the general mu*.
TEST(MixedModelRatioTest, GeneralBoundCoversMixedFamilies) {
  const double mu = analysis::optimal_mu(model::ModelKind::kGeneral);
  const double bound =
      analysis::optimal_ratio(model::ModelKind::kGeneral).upper_bound;
  const core::LpaAllocator alloc(mu);

  util::Rng rng(2024);
  const model::ModelSampler samplers[] = {
      model::ModelSampler(model::ModelKind::kRoofline),
      model::ModelSampler(model::ModelKind::kCommunication),
      model::ModelSampler(model::ModelKind::kAmdahl),
      model::ModelSampler(model::ModelKind::kGeneral)};
  for (const int P : {6, 23, 64}) {
    const graph::ModelProvider mixed = [&]() {
      return samplers[rng.uniform_int(0, 3)].sample(rng, P);
    };
    for (int rep = 0; rep < 3; ++rep) {
      const auto g = graph::layered_random(6, 2, 8, 0.35, rng, mixed);
      const auto result = core::schedule_online(g, P, alloc);
      sim::expect_valid_schedule(g, result.trace, P);
      const double lb = analysis::optimal_makespan_lower_bound(g, P);
      EXPECT_LE(result.makespan, bound * lb * (1.0 + 1e-9))
          << "P=" << P << " rep=" << rep;
    }
  }
}

// The theorem bound must hold for every admissible mu, not only mu*.
class MuSweepRatioTest : public testing::TestWithParam<double> {};

TEST_P(MuSweepRatioTest, BoundHoldsAcrossMuForAmdahl) {
  const double mu = GetParam();
  const double bound = analysis::upper_ratio(model::ModelKind::kAmdahl, mu);
  if (std::isinf(bound)) GTEST_SKIP() << "mu infeasible for the model";
  const core::LpaAllocator alloc(mu);
  util::Rng rng(99);
  const model::ModelSampler sampler(model::ModelKind::kAmdahl);
  const int P = 24;
  const auto provider = graph::sampling_provider(sampler, rng, P);
  for (int rep = 0; rep < 4; ++rep) {
    const auto g = graph::layered_random(5, 2, 8, 0.35, rng, provider);
    const auto result = core::schedule_online(g, P, alloc);
    const double lb = analysis::optimal_makespan_lower_bound(g, P);
    EXPECT_LE(result.makespan, bound * lb * (1.0 + 1e-9)) << "mu=" << mu;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MuSweepRatioTest,
                         testing::Values(0.15, 0.2, 0.25, 0.271, 0.3, 0.33),
                         [](const auto& param_info) {
                           const int milli = static_cast<int>(
                               param_info.param * 1000.0 + 0.5);
                           return "mu" + std::to_string(milli);
                         });

}  // namespace
}  // namespace moldsched
