// Running Algorithm 1 on the Section 4.4 adversarial instances must
// reproduce the proofs exactly: the predicted allocations, the predicted
// layer-serialized makespan, and competitive ratios that approach the
// Table 1 lower bounds as the instances grow.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/adversary.hpp"
#include "moldsched/sim/validator.hpp"

namespace moldsched {
namespace {

/// Runs Algorithm 1 on an instance and checks allocations + makespan
/// against the proof's predictions.
void check_instance(const graph::AdversaryInstance& inst) {
  const core::LpaAllocator alloc(inst.mu);
  const auto result = core::schedule_online(inst.graph, inst.P, alloc);
  sim::expect_valid_schedule(inst.graph, result.trace, inst.P);

  // Check per-group allocations against the proof.
  for (graph::TaskId v = 0; v < inst.graph.num_tasks(); ++v) {
    const char group = inst.graph.name(v).front();
    const int expected = group == 'A'   ? inst.expected_alloc_a
                         : group == 'B' ? inst.expected_alloc_b
                                        : inst.expected_alloc_c;
    ASSERT_EQ(result.allocation[static_cast<std::size_t>(v)], expected)
        << inst.description << ": task " << inst.graph.name(v);
  }

  // The simulated makespan equals the proof's prediction.
  EXPECT_NEAR(result.makespan, inst.predicted_online_makespan,
              1e-9 * inst.predicted_online_makespan)
      << inst.description;

  // And the instance indeed forces a large ratio against the explicit
  // alternative schedule.
  EXPECT_GT(result.makespan / inst.t_opt_upper, 1.0) << inst.description;
}

TEST(RooflineAdversaryRunTest, MatchesTheorem5) {
  const double mu = analysis::optimal_mu(model::ModelKind::kRoofline);
  for (const int P : {8, 64, 256, 1024}) {
    const auto inst = graph::roofline_adversary(P, mu);
    check_instance(inst);
  }
}

TEST(RooflineAdversaryRunTest, RatioApproachesLimit) {
  const double mu = analysis::optimal_mu(model::ModelKind::kRoofline);
  const auto inst = graph::roofline_adversary(4096, mu);
  const core::LpaAllocator alloc(mu);
  const auto result = core::schedule_online(inst.graph, inst.P, alloc);
  const double ratio = result.makespan / inst.t_opt_upper;
  // Theorem 5: limit 1/mu ~ 2.618; finite-P value is slightly below.
  EXPECT_GT(ratio, 2.61);
  EXPECT_LE(ratio, inst.ratio_limit + 1e-9);
}

TEST(CommunicationAdversaryRunTest, MatchesTheorem6) {
  const double mu = analysis::optimal_mu(model::ModelKind::kCommunication);
  for (const int P : {16, 64, 128}) {
    check_instance(graph::communication_adversary(P, mu));
  }
}

TEST(CommunicationAdversaryRunTest, RatioApproachesTheoremLimit) {
  const double mu = analysis::optimal_mu(model::ModelKind::kCommunication);
  const core::LpaAllocator alloc(mu);
  double prev_ratio = 0.0;
  for (const int P : {32, 128, 512}) {
    const auto inst = graph::communication_adversary(P, mu);
    const auto result = core::schedule_online(inst.graph, inst.P, alloc);
    const double ratio = result.makespan / inst.t_opt_upper;
    EXPECT_GT(ratio, prev_ratio * 0.999) << "P=" << P;
    prev_ratio = ratio;
  }
  // At P = 512 the ratio should be most of the way to the ~3.514 limit
  // and must never exceed the 3.61 upper bound.
  EXPECT_GT(prev_ratio, 3.2);
  EXPECT_LT(prev_ratio,
            analysis::optimal_ratio(model::ModelKind::kCommunication)
                    .upper_bound +
                1e-9);
}

TEST(AmdahlAdversaryRunTest, MatchesTheorem7) {
  const double mu = analysis::optimal_mu(model::ModelKind::kAmdahl);
  for (const int K : {8, 12, 20}) {
    check_instance(graph::amdahl_adversary(K, mu));
  }
}

TEST(AmdahlAdversaryRunTest, RatioApproachesTheoremLimit) {
  const double mu = analysis::optimal_mu(model::ModelKind::kAmdahl);
  const core::LpaAllocator alloc(mu);
  const auto inst = graph::amdahl_adversary(32, mu);
  const auto result = core::schedule_online(inst.graph, inst.P, alloc);
  const double ratio = result.makespan / inst.t_opt_upper;
  // Limit is ~4.73; finite-K sits below but should be well past 4.
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, inst.ratio_limit + 0.1);
}

TEST(GeneralAdversaryRunTest, MatchesTheorem8) {
  const double mu = analysis::optimal_mu(model::ModelKind::kGeneral);
  for (const int K : {8, 16}) {
    check_instance(graph::general_adversary(K, mu));
  }
}

TEST(GeneralAdversaryRunTest, RatioApproachesTheoremLimit) {
  const double mu = analysis::optimal_mu(model::ModelKind::kGeneral);
  const core::LpaAllocator alloc(mu);
  const auto inst = graph::general_adversary(32, mu);
  const auto result = core::schedule_online(inst.graph, inst.P, alloc);
  const double ratio = result.makespan / inst.t_opt_upper;
  // Limit is ~5.25.
  EXPECT_GT(ratio, 4.4);
  EXPECT_LT(ratio, inst.ratio_limit + 0.1);
}

TEST(AdversaryRunTest, LayersAreSerializedAsInFigure2a) {
  // The defining feature of the bad schedule: B tasks of a layer run
  // first, the layer's A task runs strictly after they complete.
  const double mu = analysis::optimal_mu(model::ModelKind::kCommunication);
  const auto inst = graph::communication_adversary(24, mu);
  const core::LpaAllocator alloc(mu);
  const auto result = core::schedule_online(inst.graph, inst.P, alloc);

  const auto& g = inst.graph;
  for (const auto& rec : result.trace.records()) {
    if (g.name(rec.task).front() != 'A') continue;
    // Find this layer's B tasks: they are the X ids just before the A.
    for (int j = 1; j <= inst.X; ++j) {
      const auto b = rec.task - j;
      ASSERT_EQ(g.name(b).front(), 'B');
      // A starts only after the layer's B finished.
      const auto& b_rec = result.trace.records()[static_cast<std::size_t>(
          std::find_if(result.trace.records().begin(),
                       result.trace.records().end(),
                       [&](const sim::TaskRecord& r) { return r.task == b; }) -
          result.trace.records().begin())];
      EXPECT_GE(rec.start, b_rec.end - 1e-9)
          << "A task " << g.name(rec.task) << " overlapped "
          << g.name(b);
    }
  }
}

}  // namespace
}  // namespace moldsched
