// Degenerate single-processor platform: with P = 1 every allocator must
// collapse to serial execution, so every registered scheduler has to
// produce a validator-clean schedule whose makespan is exactly the sum
// of the tasks' serial times (one processor can never idle while work
// remains, and no allocation other than 1 is admissible).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/check/corpus.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched {
namespace {

class SingleProcessorTest : public testing::TestWithParam<std::string> {};

TEST_P(SingleProcessorTest, SerializesEveryCorpusShape) {
  const auto spec = sched::spec_by_name(GetParam(), 0.3);
  util::Rng rng(41);
  for (int family = 0; family < check::num_corpus_families(); ++family) {
    for (const auto kind : check::corpus_model_kinds()) {
      const auto g = check::corpus_graph(family, kind, rng, 1);
      const auto result = spec.run(g, 1);
      sim::expect_valid_schedule(g, result.trace, 1);
      EXPECT_NEAR(result.makespan, analysis::total_serial_work(g),
                  1e-9 * (1.0 + analysis::total_serial_work(g)))
          << spec.name << " on family "
          << check::corpus_families()[static_cast<std::size_t>(family)]
          << " kind " << model::to_string(kind);
      for (const int alloc : result.allocation)
        EXPECT_EQ(alloc, 1) << spec.name;
    }
  }
}

TEST_P(SingleProcessorTest, HandlesSingleTaskAndEmptyChain) {
  const auto spec = sched::spec_by_name(GetParam(), 0.3);
  // Non-monotone table whose serial time is not its minimum: the only
  // admissible allocation is still 1 processor.
  graph::TaskGraph g;
  g.add_task(std::make_shared<model::TableModel>(
      std::vector<double>{5.0, 1.0, 9.0}));
  const auto result = spec.run(g, 1);
  sim::expect_valid_schedule(g, result.trace, 1);
  EXPECT_NEAR(result.makespan, 5.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(FullSuite, SingleProcessorTest,
                         testing::ValuesIn(sched::full_suite_names()),
                         [](const auto& param_info) {
                           std::string n = param_info.param;
                           for (auto& c : n) {
                             if (c == '-' || c == '/') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace moldsched
