// Property suite for the sandwich relation over the shared check::
// corpus: on every sampled instance the oracle certifies,
//     Lemma 2 LB  <=  T_opt  <=  makespan of every registry scheduler.
// A violation is shrunk with check::shrink_instance and the minimal
// repro is printed in the failure message. Seeds per cell scale with
// MOLDSCHED_PROPERTY_SEEDS for the nightly sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/check/corpus.hpp"
#include "moldsched/check/shrink.hpp"
#include "moldsched/opt/bnb.hpp"
#include "moldsched/opt/oracle.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched {
namespace {

// The exact search dominates the per-seed cost here, so the default
// sweep uses an eighth of the usual per-cell budget; the env knob still
// scales it for the nightly run.
int seeds_per_cell() {
  int base = 64;
  if (const char* env = std::getenv("MOLDSCHED_PROPERTY_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) base = n;
  }
  return std::max(1, base / 8);
}

struct Cell {
  int family;
  model::ModelKind kind;
};

std::string cell_name(const testing::TestParamInfo<Cell>& info) {
  return check::corpus_families()[static_cast<std::size_t>(
             info.param.family)] +
         "_" + model::to_string(info.param.kind);
}

class ExactSandwichProperty : public testing::TestWithParam<Cell> {};

TEST_P(ExactSandwichProperty, LowerBoundBelowToptBelowEveryScheduler) {
  const auto [family, kind] = GetParam();
  const double mu = 0.3;
  const auto suite = sched::full_suite(mu);

  int certified = 0;
  for (int seed = 1; seed <= seeds_per_cell(); ++seed) {
    const int P = 2 + seed % 5;
    graph::TaskGraph g;
    bool found = false;
    for (int attempt = 0; attempt < 64 && !found; ++attempt) {
      util::Rng rng(util::derive_seed(
          util::derive_seed(0x5a4d41c8ULL, static_cast<std::uint64_t>(seed)),
          static_cast<std::uint64_t>(attempt)));
      g = check::corpus_graph(family, kind, rng, P);
      found = g.num_tasks() >= 2 && g.num_tasks() <= 12;
    }
    if (!found) continue;

    const double lb = analysis::optimal_makespan_lower_bound(g, P);

    // A modest budget: an instance the search cannot certify cheaply is
    // skipped (its Lemma 2 half still holds trivially via each
    // scheduler's own T >= LB checks elsewhere).
    opt::BnbOptions options = opt::oracle_defaults();
    options.node_budget = 2'000'000;
    const auto bnb = opt::branch_and_bound_topt(g, P, options);
    if (bnb.status != opt::BnbStatus::kExact) continue;
    ++certified;

    if (bnb.makespan < lb * (1.0 - 1e-9)) {
      const auto shrunk = check::shrink_instance(g, [&](
          const graph::TaskGraph& cand) {
        opt::BnbOptions inner = opt::oracle_defaults();
        inner.node_budget = 2'000'000;
        const auto r = opt::branch_and_bound_topt(cand, P, inner);
        return r.status == opt::BnbStatus::kExact &&
               r.makespan <
                   analysis::optimal_makespan_lower_bound(cand, P) *
                       (1.0 - 1e-9);
      });
      FAIL() << "T_opt " << bnb.makespan << " below Lemma 2 bound " << lb
             << " at seed " << seed << "; minimal repro:\n"
             << check::describe_instance(shrunk.graph, P, mu,
                                         "T_opt below Lemma 2");
    }

    for (const auto& spec : suite) {
      const double makespan = spec.run(g, P).makespan;
      if (makespan < bnb.makespan * (1.0 - 1e-12)) {
        const auto shrunk = check::shrink_instance(g, [&](
            const graph::TaskGraph& cand) {
          opt::BnbOptions inner = opt::oracle_defaults();
          inner.node_budget = 2'000'000;
          const auto r = opt::branch_and_bound_topt(cand, P, inner);
          if (r.status != opt::BnbStatus::kExact) return false;
          try {
            return spec.run(cand, P).makespan < r.makespan * (1.0 - 1e-12);
          } catch (const std::exception&) {
            return false;
          }
        });
        FAIL() << "scheduler '" << spec.name << "' makespan " << makespan
               << " beat certified T_opt " << bnb.makespan << " at seed "
               << seed << "; minimal repro:\n"
               << check::describe_instance(shrunk.graph, P, mu,
                                           "beats certified optimum");
      }
    }
  }
  // Vacuousness guard: a real sweep must certify something. At very
  // small MOLDSCHED_PROPERTY_SEEDS values a cell may draw only budget
  // blowouts, which is a sampling accident, not a regression — so the
  // guard only arms once the sweep is big enough to make an all-skip
  // run suspicious.
  if (seeds_per_cell() >= 4) {
    EXPECT_GT(certified, 0) << "cell certified no instances";
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ExactSandwichProperty, [] {
  std::vector<Cell> cells;
  const int families = check::num_corpus_families();
  const auto& kinds = check::corpus_model_kinds();
  for (int f = 0; f < families; ++f)
    cells.push_back({f, kinds[static_cast<std::size_t>(f) % kinds.size()]});
  return testing::ValuesIn(cells);
}(), cell_name);

}  // namespace
}  // namespace moldsched
