// Robustness: the algorithm keeps its guarantees when configured
// off-nominally — wrong-model mu, extreme mu values, tiny and huge
// machines, and adversarial instances evaluated at mismatched mu.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "moldsched/analysis/adversary_study.hpp"
#include "moldsched/analysis/blame.hpp"
#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/adversary.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched {
namespace {

TEST(RobustnessTest, WrongModelMuStillSatisfiesItsOwnBound) {
  // Running Amdahl tasks with the roofline mu (or vice versa) must still
  // satisfy upper_ratio(kind, mu) — Lemma 5 holds for any feasible mu.
  util::Rng rng(11);
  const struct {
    model::ModelKind kind;
    double mu;
  } combos[] = {
      {model::ModelKind::kAmdahl,
       analysis::optimal_mu(model::ModelKind::kGeneral)},
      {model::ModelKind::kCommunication,
       analysis::optimal_mu(model::ModelKind::kAmdahl)},
      {model::ModelKind::kRoofline,
       analysis::optimal_mu(model::ModelKind::kCommunication)},
  };
  for (const auto& combo : combos) {
    const double bound = analysis::upper_ratio(combo.kind, combo.mu);
    ASSERT_TRUE(std::isfinite(bound));
    const core::LpaAllocator alloc(combo.mu);
    const model::ModelSampler sampler(combo.kind);
    const int P = 24;
    for (int rep = 0; rep < 3; ++rep) {
      const auto g = graph::layered_random(
          5, 2, 7, 0.35, rng, graph::sampling_provider(sampler, rng, P));
      const auto run = core::schedule_online(g, P, alloc);
      const double lb = analysis::optimal_makespan_lower_bound(g, P);
      EXPECT_LE(run.makespan, bound * lb * (1.0 + 1e-9))
          << model::to_string(combo.kind) << " at mu=" << combo.mu;
    }
  }
}

TEST(RobustnessTest, ExtremeMuValuesStillProduceValidSchedules) {
  util::Rng rng(12);
  const model::ModelSampler sampler(model::ModelKind::kGeneral);
  const int P = 16;
  const auto g = graph::fork_join(
      3, 6, graph::sampling_provider(sampler, rng, P));
  for (const double mu : {1e-3, 0.01, 0.38, analysis::kMuMax}) {
    const core::LpaAllocator alloc(mu);
    const auto run = core::schedule_online(g, P, alloc);
    sim::expect_valid_schedule(g, run.trace, P);
  }
}

TEST(RobustnessTest, AdversaryAtMismatchedMuStaysWithinItsBound) {
  // The instance is tuned for mu*, but Lemma 5 bounds the algorithm at
  // *any* feasible mu: ratio vs the Lemma-2 LB must respect
  // upper_ratio(kind, mu) even on the adversary built for another mu.
  const double mu = 0.25;  // not any model's optimum
  const auto inst = graph::communication_adversary(
      64, analysis::optimal_mu(model::ModelKind::kCommunication));
  const core::LpaAllocator alloc(mu);
  const auto run = core::schedule_online(inst.graph, inst.P, alloc);
  sim::expect_valid_schedule(inst.graph, run.trace, inst.P);
  const double bound =
      analysis::upper_ratio(model::ModelKind::kCommunication, mu);
  const double lb =
      analysis::optimal_makespan_lower_bound(inst.graph, inst.P);
  EXPECT_LE(run.makespan, bound * lb * (1.0 + 1e-9));
}

TEST(RobustnessTest, BlameChainOnAdversaryAlternatesCauses) {
  // On the Figure 1 instance the makespan chain is A-tasks waiting on
  // B-phases: the blame chain must contain both precedence and resource
  // links.
  const double mu = analysis::optimal_mu(model::ModelKind::kCommunication);
  const auto inst = graph::communication_adversary(24, mu);
  const core::LpaAllocator alloc(mu);
  const auto run = core::schedule_online(inst.graph, inst.P, alloc);
  const auto chain = analysis::blame_chain(inst.graph, run);
  bool has_precedence = false;
  bool has_resources = false;
  for (const auto& link : chain) {
    has_precedence |= link.reason == analysis::BlameReason::kPrecedence;
    has_resources |= link.reason == analysis::BlameReason::kResources;
  }
  EXPECT_TRUE(has_precedence);
  EXPECT_TRUE(has_resources);
  EXPECT_DOUBLE_EQ(chain.front().end, run.makespan);
}

TEST(RobustnessTest, HugeMachineTinyGraph) {
  util::Rng rng(13);
  const model::ModelSampler sampler(model::ModelKind::kAmdahl);
  const int P = 4096;
  const auto g =
      graph::chain(3, graph::sampling_provider(sampler, rng, P));
  const core::LpaAllocator alloc(0.271);
  const auto run = core::schedule_online(g, P, alloc);
  sim::expect_valid_schedule(g, run.trace, P);
  // Allocations capped at ceil(mu P).
  for (const int a : run.allocation) EXPECT_LE(a, 1111);
}

TEST(RobustnessTest, MeasureAdversaryAtCustomMu) {
  const auto m =
      analysis::measure_adversary(model::ModelKind::kAmdahl, 12, 0.2);
  EXPECT_DOUBLE_EQ(m.mu, 0.2);
  EXPECT_GT(m.ratio, 1.0);
  // The instance internally rebuilt itself for mu = 0.2, so the proof's
  // allocations still match.
  EXPECT_TRUE(m.allocations_match_proof);
}

}  // namespace
}  // namespace moldsched
