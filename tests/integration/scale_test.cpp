// Scale-tier suite (ctest label `scale`): the 10^5-task smoke runs in
// tier 1; the 10^6 and 10^7 tiers gate behind MOLDSCHED_SCALE_TESTS=1
// and run in the nightly scale CI job. Every tier asserts the schedule
// validates, the makespan is bit-identical across two independent runs
// (the whole pipeline — generator, CSR build, allocator, simulator — is
// deterministic), and the critical-path pass lower-bounds the makespan.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/graph/passes.hpp"
#include "moldsched/model/general_model.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched {
namespace {

bool scale_tiers_enabled() {
  const char* env = std::getenv("MOLDSCHED_SCALE_TESTS");
  return env != nullptr && std::string(env) == "1";
}

/// Small pool of distinct Eq. (1) models, cycled — mirrors bench_scale.
graph::ModelProvider pooled_provider(int pool_size, std::uint64_t seed) {
  util::Rng rng(seed);
  auto pool = std::make_shared<std::vector<model::ModelPtr>>();
  pool->reserve(static_cast<std::size_t>(pool_size));
  for (int i = 0; i < pool_size; ++i) {
    model::GeneralParams params;
    params.w = rng.log_uniform(1.0, 100.0);
    params.d = rng.log_uniform(0.01, 1.0);
    params.c = rng.log_uniform(1e-4, 1e-2);
    params.pbar = static_cast<int>(rng.uniform_int(4, 256));
    pool->push_back(std::make_shared<model::GeneralModel>(params));
  }
  auto next = std::make_shared<std::size_t>(0);
  return [pool, next] {
    const auto& m = (*pool)[*next % pool->size()];
    ++*next;
    return m;
  };
}

struct TierOutcome {
  double makespan = 0.0;
  double lower_bound = 0.0;
};

TierOutcome run_tier(int layers, int width, int degree, bool validate) {
  constexpr int kP = 256;
  const auto g =
      graph::layered_uniform(layers, width, degree, /*seed=*/7,
                             pooled_provider(64, 11));
  EXPECT_EQ(g.num_edges(),
            graph::layered_uniform_edges(layers, width, degree));

  const core::LpaAllocator lpa(0.25);
  const auto cache = std::make_shared<core::DecisionCache>();
  const core::CachingAllocator cached(lpa, cache);
  const auto result = core::schedule_online(g, kP, cached);

  TierOutcome outcome;
  outcome.makespan = result.makespan;
  if (validate) {
    sim::expect_valid_schedule(g, result.trace, kP);
    const auto weights = graph::passes::min_time_weights(g, kP);
    outcome.lower_bound = graph::passes::critical_path(g, weights).length;
    EXPECT_GE(outcome.makespan, outcome.lower_bound);
  }
  return outcome;
}

/// One tier end to end: validate + lower-bound the first run, then
/// assert the second run's makespan is bit-identical.
void check_tier(int layers, int width, int degree) {
  const TierOutcome first = run_tier(layers, width, degree, true);
  const TierOutcome second = run_tier(layers, width, degree, false);
  EXPECT_EQ(first.makespan, second.makespan)
      << "scale tier not deterministic at " << layers << "x" << width;
  EXPECT_GT(first.makespan, 0.0);
}

TEST(ScaleTest, HundredThousandTaskSmoke) {
  check_tier(/*layers=*/100, /*width=*/1000, /*degree=*/2);
}

TEST(ScaleTest, MillionTaskTier) {
  if (!scale_tiers_enabled())
    GTEST_SKIP() << "set MOLDSCHED_SCALE_TESTS=1 to run the 10^6 tier";
  check_tier(/*layers=*/500, /*width=*/2000, /*degree=*/2);
}

TEST(ScaleTest, TenMillionTaskTier) {
  if (!scale_tiers_enabled())
    GTEST_SKIP() << "set MOLDSCHED_SCALE_TESTS=1 to run the 10^7 tier";
  check_tier(/*layers=*/2000, /*width=*/5000, /*degree=*/2);
}

}  // namespace
}  // namespace moldsched
