// Property suite for the improved (per-model-aware) allocator over the
// full check corpus: 9 generator families x 5 model kinds, >= 64 seeds
// per cell (raise with MOLDSCHED_PROPERTY_SEEDS for the nightly sweep).
//
// Two properties per (family, kind) cell:
//  1. Soundness — for every analytic kind, the improved makespan never
//     exceeds that kind's derived constant times the Lemma 2 lower bound
//     (kArbitrary has no constant; Theorem 9).
//  2. No regression — over the same instances, the improved family's
//     mean T / LB is no worse than plain LPA at the kind's optimal mu
//     (general-model mu for kArbitrary, which is LPA's only analytic
//     fallback there).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/improved.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/check/corpus.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/sched/improved_lpa.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/rng.hpp"
#include "moldsched/util/stats.hpp"

namespace moldsched {
namespace {

int seeds_per_cell() {
  if (const char* env = std::getenv("MOLDSCHED_PROPERTY_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 64;
}

double lpa_mu_for(model::ModelKind kind) {
  return analysis::optimal_mu(kind == model::ModelKind::kArbitrary
                                  ? model::ModelKind::kGeneral
                                  : kind);
}

struct CorpusCell {
  int family;
  model::ModelKind kind;
};

std::string cell_name(const testing::TestParamInfo<CorpusCell>& info) {
  return check::corpus_families()[static_cast<std::size_t>(
             info.param.family)] +
         "_" + model::to_string(info.param.kind);
}

class ImprovedRatioPropertyTest : public testing::TestWithParam<CorpusCell> {};

TEST_P(ImprovedRatioPropertyTest, SoundAndNoWorseThanLpaOnAverage) {
  const auto [family, kind] = GetParam();
  const bool analytic = kind != model::ModelKind::kArbitrary;
  const double bound =
      analytic ? analysis::improved_optimal_ratio(kind).upper_bound : 0.0;
  const sched::ImprovedLpaAllocator improved;
  const core::LpaAllocator lpa(lpa_mu_for(kind));

  util::Accumulator improved_ratio;
  util::Accumulator lpa_ratio;
  const int seeds = seeds_per_cell();
  for (int seed = 1; seed <= seeds; ++seed) {
    // One private stream per (family, kind, seed) point, so cells and
    // seeds are independent and any failure reproduces from its triple.
    util::Rng rng(0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(seed) +
                  static_cast<std::uint64_t>(family) * 131 +
                  static_cast<std::uint64_t>(kind));
    const int P = static_cast<int>(rng.uniform_int(1, 100));
    const auto g = check::corpus_graph(family, kind, rng, P);
    const double lb = analysis::optimal_makespan_lower_bound(g, P);

    const auto r_improved = core::schedule_online(g, P, improved);
    sim::expect_valid_schedule(g, r_improved.trace, P);
    if (analytic) {
      EXPECT_LE(r_improved.makespan, bound * lb * (1.0 + 1e-9))
          << "seed " << seed << " P=" << P << ": improved ratio "
          << r_improved.makespan / lb << " exceeds derived bound " << bound;
    }

    const auto r_lpa = core::schedule_online(g, P, lpa);
    improved_ratio.add(r_improved.makespan / lb);
    lpa_ratio.add(r_lpa.makespan / lb);
  }

  EXPECT_LE(improved_ratio.mean(), lpa_ratio.mean() * (1.0 + 1e-9))
      << "improved mean " << improved_ratio.mean() << " vs lpa mean "
      << lpa_ratio.mean() << " over " << seeds << " seeds";
}

std::vector<CorpusCell> all_cells() {
  std::vector<CorpusCell> cells;
  for (int family = 0; family < check::num_corpus_families(); ++family)
    for (const auto kind : check::corpus_model_kinds())
      cells.push_back({family, kind});
  return cells;
}

INSTANTIATE_TEST_SUITE_P(Corpus, ImprovedRatioPropertyTest,
                         testing::ValuesIn(all_cells()), cell_name);

}  // namespace
}  // namespace moldsched
