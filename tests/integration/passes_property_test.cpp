// Randomized properties of the graph::passes pipeline, seeded per cell
// like the other property binaries (raise MOLDSCHED_PROPERTY_SEEDS for
// the nightly sweep):
//  * transitive reduction preserves reachability exactly (checked
//    against a brute-force transitive closure on <= 200-task instances)
//    and is idempotent;
//  * the critical path over t_min(P) weights lower-bounds every
//    simulated makespan;
//  * topological_layers agrees with the generator layering on the
//    layered families.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/graph/passes.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched {
namespace {

using graph::TaskGraph;
using graph::TaskId;

int seeds_per_cell() {
  if (const char* env = std::getenv("MOLDSCHED_PROPERTY_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 8;
}

/// Random instance families for the reduction property; all stay well
/// under the 200-task brute-force budget.
TaskGraph random_instance(int family, util::Rng& rng) {
  const model::ModelSampler sampler(model::ModelKind::kGeneral);
  const auto provider = graph::sampling_provider(sampler, rng, 32);
  switch (family % 4) {
    case 0:
      return graph::erdos_renyi_dag(
          static_cast<int>(rng.uniform_int(2, 60)), 0.25, rng, provider);
    case 1:
      return graph::layered_random(5, 2, 8, 0.4, rng, provider);
    case 2:
      return graph::series_parallel(
          static_cast<int>(rng.uniform_int(4, 50)), rng, provider);
    default:
      return graph::random_out_tree(
          static_cast<int>(rng.uniform_int(2, 60)), 3, rng, provider);
  }
}

/// Brute-force transitive closure: closure[u][v] == true iff a path
/// u -> ... -> v exists. O(V * E) per source, fine at <= 200 tasks.
std::vector<std::vector<bool>> transitive_closure(const TaskGraph& g) {
  const auto n = static_cast<std::size_t>(g.num_tasks());
  std::vector<std::vector<bool>> closure(n, std::vector<bool>(n, false));
  for (TaskId src = 0; src < g.num_tasks(); ++src) {
    std::vector<TaskId> stack{src};
    while (!stack.empty()) {
      const TaskId v = stack.back();
      stack.pop_back();
      for (const TaskId s : g.successors(v)) {
        if (closure[static_cast<std::size_t>(src)]
                   [static_cast<std::size_t>(s)])
          continue;
        closure[static_cast<std::size_t>(src)][static_cast<std::size_t>(s)] =
            true;
        stack.push_back(s);
      }
    }
  }
  return closure;
}

TEST(PassesPropertyTest, TransitiveReductionPreservesReachability) {
  for (int seed = 1; seed <= seeds_per_cell(); ++seed) {
    for (int family = 0; family < 4; ++family) {
      util::Rng rng(util::derive_seed(7000, seed * 4 + family));
      const auto g = random_instance(family, rng);
      ASSERT_LE(g.num_tasks(), 200);

      const auto reduced = graph::passes::transitive_reduction(g);
      ASSERT_EQ(reduced.graph.num_tasks(), g.num_tasks());
      EXPECT_EQ(reduced.graph.num_edges() + reduced.edges_removed,
                g.num_edges());

      const auto before = transitive_closure(g);
      const auto after = transitive_closure(reduced.graph);
      EXPECT_EQ(before, after)
          << "reachability changed, family " << family << " seed " << seed;

      // Every surviving edge is essential: it cannot be re-derived from
      // the other reduced edges, i.e. reduction is idempotent.
      const auto again = graph::passes::transitive_reduction(reduced.graph);
      EXPECT_EQ(again.edges_removed, 0u)
          << "reduction not minimal, family " << family << " seed " << seed;
    }
  }
}

TEST(PassesPropertyTest, CriticalPathLowerBoundsSimulatedMakespan) {
  for (int seed = 1; seed <= seeds_per_cell(); ++seed) {
    for (const int P : {4, 32}) {
      util::Rng rng(util::derive_seed(7100, seed));
      const auto g = random_instance(seed % 4, rng);
      const auto weights = graph::passes::min_time_weights(g, P);
      const auto cp = graph::passes::critical_path(g, weights);
      ASSERT_FALSE(cp.tasks.empty());

      const core::LpaAllocator lpa(0.3);
      const auto result = core::schedule_online(g, P, lpa);
      EXPECT_LE(cp.length, result.makespan * (1.0 + 1e-12))
          << "critical path exceeded makespan at P=" << P << " seed "
          << seed;
    }
  }
}

TEST(PassesPropertyTest, LayersAgreeWithGeneratorLayering) {
  for (int seed = 1; seed <= seeds_per_cell(); ++seed) {
    // layered_random names tasks "L<layer>.<i>"; every non-first-layer
    // task has at least one forced predecessor in the previous layer,
    // so the ASAP level must equal the generator layer.
    util::Rng rng(util::derive_seed(7200, seed));
    const model::ModelSampler sampler(model::ModelKind::kRoofline);
    const auto provider = graph::sampling_provider(sampler, rng, 16);
    const auto g = graph::layered_random(6, 2, 7, 0.35, rng, provider);
    const auto layering = graph::passes::topological_layers(g);
    EXPECT_EQ(layering.num_layers(), 6);
    for (TaskId v = 0; v < g.num_tasks(); ++v) {
      const std::string name = g.name(v);
      ASSERT_EQ(name.front(), 'L');
      const int generator_layer =
          std::stoi(name.substr(1, name.find('.') - 1));
      EXPECT_EQ(layering.layer_of[static_cast<std::size_t>(v)],
                generator_layer)
          << "task " << name << " seed " << seed;
    }

    // And the uniform scale family, where the layer is id / width.
    const auto u = graph::layered_uniform(8, 25, 2, seed, provider);
    const auto ulayering = graph::passes::topological_layers(u);
    EXPECT_EQ(ulayering.num_layers(), 8);
    for (TaskId v = 0; v < u.num_tasks(); ++v)
      ASSERT_EQ(ulayering.layer_of[static_cast<std::size_t>(v)], v / 25);
  }
}

}  // namespace
}  // namespace moldsched
