// Compiles the umbrella header and exercises one call per major module,
// guarding against include breakage in the advertised one-header API.
#include "moldsched/moldsched.hpp"

#include <gtest/gtest.h>

#include "moldsched/version.hpp"

namespace moldsched {
namespace {

TEST(UmbrellaTest, OneCallPerModule) {
  EXPECT_STREQ(version(), "1.0.0");

  const model::AmdahlModel m(10.0, 1.0);
  EXPECT_GT(m.time(4), 0.0);

  graph::TaskGraph g;
  const auto a = g.add_task(m.clone(), "a");
  const auto b = g.add_task(std::make_shared<model::AmdahlModel>(5.0, 0.5),
                            "b");
  g.add_edge(a, b);
  EXPECT_EQ(graph::compute_stats(g).num_tasks, 2);

  const core::LpaAllocator alloc(analysis::optimal_mu(m.kind()));
  const auto run = core::schedule_online(g, 8, alloc);
  sim::expect_valid_schedule(g, run.trace, 8);

  EXPECT_TRUE(analysis::check_framework(g, 8, alloc, run).all_hold());
  EXPECT_FALSE(io::to_dot(g).empty());
  EXPECT_FALSE(io::graph_to_json(g).empty());
  EXPECT_FALSE(io::render_gantt_svg(run.trace, g, 8).empty());

  util::Rng rng(1);
  EXPECT_GE(rng.unit(), 0.0);
  EXPECT_GE(sched::standard_suite(0.25).size(), 6u);
  EXPECT_EQ(sched::engine_variants(0.25).size(), 3u);
  EXPECT_GT(resilience::NoFailures().expected_attempts(1.0, 1), 0.0);

  EXPECT_TRUE(check::wire_roundtrip_check(g, 8, 0.25).ok());
  obs::default_registry().counter("umbrella.touch").add();

  svc::FrameReader reader;
  const std::string frame = svc::encode_frame(svc::encode_graph(g));
  reader.feed(frame.data(), frame.size());
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(svc::decode_graph(*payload).num_tasks(), g.num_tasks());
}

}  // namespace
}  // namespace moldsched
