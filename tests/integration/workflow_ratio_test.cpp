// Theorem 1-4 bounds asserted on every realistic workflow x model-family
// combination (the paper's bounds are per-task-model, so they must hold
// on these structured graphs exactly as on random ones).
#include <gtest/gtest.h>

#include <string>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/sched/level_scheduler.hpp"
#include "moldsched/sim/validator.hpp"

namespace moldsched {
namespace {

struct WorkflowCase {
  const char* workflow;
  model::ModelKind kind;
};

std::string case_name(const testing::TestParamInfo<WorkflowCase>& info) {
  return std::string(info.param.workflow) + "_" +
         model::to_string(info.param.kind);
}

graph::TaskGraph build(const char* name, model::ModelKind kind) {
  graph::WorkflowModelConfig cfg;
  cfg.kind = kind;
  const std::string w = name;
  if (w == "cholesky") return graph::cholesky(6, cfg);
  if (w == "lu") return graph::lu(5, cfg);
  if (w == "fft") return graph::fft(4, cfg);
  if (w == "montage") return graph::montage(12, cfg);
  return graph::wavefront(6, 6, cfg);
}

class WorkflowRatioTest : public testing::TestWithParam<WorkflowCase> {};

TEST_P(WorkflowRatioTest, OnlineWithinTheoremBound) {
  const auto [workflow, kind] = GetParam();
  const auto g = build(workflow, kind);
  const double mu = analysis::optimal_mu(kind);
  const double bound = analysis::optimal_ratio(kind).upper_bound;
  const core::LpaAllocator alloc(mu);
  for (const int P : {4, 17, 48}) {
    const auto run = core::schedule_online(g, P, alloc);
    sim::expect_valid_schedule(g, run.trace, P);
    const double lb = analysis::optimal_makespan_lower_bound(g, P);
    EXPECT_LE(run.makespan, bound * lb * (1.0 + 1e-9))
        << workflow << " P=" << P;
  }
}

TEST_P(WorkflowRatioTest, LevelSchedulerAlsoValidButNoBoundClaim) {
  const auto [workflow, kind] = GetParam();
  const auto g = build(workflow, kind);
  const core::LpaAllocator alloc(analysis::optimal_mu(kind));
  const auto run = sched::schedule_level_by_level(g, 24, alloc);
  sim::expect_valid_schedule(g, run.trace, 24);
  EXPECT_GE(run.makespan,
            analysis::optimal_makespan_lower_bound(g, 24) * (1.0 - 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WorkflowRatioTest,
    testing::Values(
        WorkflowCase{"cholesky", model::ModelKind::kRoofline},
        WorkflowCase{"cholesky", model::ModelKind::kAmdahl},
        WorkflowCase{"cholesky", model::ModelKind::kGeneral},
        WorkflowCase{"lu", model::ModelKind::kCommunication},
        WorkflowCase{"lu", model::ModelKind::kGeneral},
        WorkflowCase{"fft", model::ModelKind::kRoofline},
        WorkflowCase{"fft", model::ModelKind::kAmdahl},
        WorkflowCase{"montage", model::ModelKind::kCommunication},
        WorkflowCase{"montage", model::ModelKind::kGeneral},
        WorkflowCase{"wavefront", model::ModelKind::kAmdahl},
        WorkflowCase{"wavefront", model::ModelKind::kRoofline}),
    case_name);

}  // namespace
}  // namespace moldsched
