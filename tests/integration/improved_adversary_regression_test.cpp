// Regression suite on the Section 4.4 adversarial instances at growing
// platform sizes: both algorithm families must stay below their own
// proven upper bounds, even on the graphs built to maximize their ratio.
//
// The instances are tuned against the coupled mu* of each kind (the
// published construction); the improved allocator faces the same graphs
// and must still honour its derived constant — these are worst-case
// inputs for the LPA-shaped argument, so they are exactly the place a
// wrong derived constant would surface.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/improved.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/adversary.hpp"
#include "moldsched/sched/improved_lpa.hpp"
#include "moldsched/sim/validator.hpp"

namespace moldsched {
namespace {

struct AdversaryCase {
  model::ModelKind kind;
  int param;  // P for roofline/communication, K for amdahl/general
};

graph::AdversaryInstance build(const AdversaryCase& c, double mu) {
  switch (c.kind) {
    case model::ModelKind::kRoofline:
      return graph::roofline_adversary(c.param, mu);
    case model::ModelKind::kCommunication:
      return graph::communication_adversary(c.param, mu);
    case model::ModelKind::kAmdahl:
      return graph::amdahl_adversary(c.param, mu);
    default:
      return graph::general_adversary(c.param, mu);
  }
}

std::string case_name(const testing::TestParamInfo<AdversaryCase>& info) {
  return model::to_string(info.param.kind) + "_" +
         std::to_string(info.param.param);
}

class ImprovedAdversaryRegressionTest
    : public testing::TestWithParam<AdversaryCase> {};

TEST_P(ImprovedAdversaryRegressionTest, BothFamiliesStayBelowOwnBounds) {
  const auto c = GetParam();
  const auto coupled = analysis::optimal_ratio(c.kind);
  const auto inst = build(c, coupled.mu_star);

  // t_opt_upper >= T_opt >= Lemma 2 LB, so T / t_opt_upper is a valid
  // (conservative) observed competitive ratio for both families.
  const core::LpaAllocator lpa(coupled.mu_star);
  const auto r_lpa = core::schedule_online(inst.graph, inst.P, lpa);
  sim::expect_valid_schedule(inst.graph, r_lpa.trace, inst.P);
  const double lpa_ratio = r_lpa.makespan / inst.t_opt_upper;
  EXPECT_LE(lpa_ratio, coupled.upper_bound * (1.0 + 1e-9))
      << inst.description;

  const sched::ImprovedLpaAllocator improved;
  const auto r_imp = core::schedule_online(inst.graph, inst.P, improved);
  sim::expect_valid_schedule(inst.graph, r_imp.trace, inst.P);
  const double improved_bound =
      analysis::improved_optimal_ratio(c.kind).upper_bound;
  const double improved_ratio = r_imp.makespan / inst.t_opt_upper;
  EXPECT_LE(improved_ratio, improved_bound * (1.0 + 1e-9))
      << inst.description;

  // The construction's whole point: the observed ratios approach the
  // theorem constants from below, so they must at least exceed 1.
  EXPECT_GE(lpa_ratio, 1.0 - 1e-9);
  EXPECT_GE(improved_ratio, 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    GrowingSizes, ImprovedAdversaryRegressionTest,
    testing::Values(
        // Figure 1 / Theorem 5 shape (roofline), growing P.
        AdversaryCase{model::ModelKind::kRoofline, 8},
        AdversaryCase{model::ModelKind::kRoofline, 64},
        AdversaryCase{model::ModelKind::kRoofline, 512},
        AdversaryCase{model::ModelKind::kRoofline, 4096},
        // Theorem 6 (communication), growing P.
        AdversaryCase{model::ModelKind::kCommunication, 8},
        AdversaryCase{model::ModelKind::kCommunication, 64},
        AdversaryCase{model::ModelKind::kCommunication, 256},
        // Figure 3 / Theorem 7 shape (Amdahl), growing K (P = K^2).
        AdversaryCase{model::ModelKind::kAmdahl, 6},
        AdversaryCase{model::ModelKind::kAmdahl, 12},
        AdversaryCase{model::ModelKind::kAmdahl, 24},
        AdversaryCase{model::ModelKind::kAmdahl, 48},
        // Theorem 8 (general), growing K.
        AdversaryCase{model::ModelKind::kGeneral, 6},
        AdversaryCase{model::ModelKind::kGeneral, 12},
        AdversaryCase{model::ModelKind::kGeneral, 24}),
    case_name);

}  // namespace
}  // namespace moldsched
