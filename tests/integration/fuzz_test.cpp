// Randomized stress testing: many random (generator, model, P, policy)
// combinations; every schedule must validate, never beat the Lemma 2
// bound, and agree across repeated runs. A crash, validation failure or
// nondeterminism here is a library bug regardless of the theory.
#include <gtest/gtest.h>

#include <string>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/check/shrink.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/sched/baselines.hpp"
#include "moldsched/sched/offline.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched {
namespace {

class FuzzTest : public testing::TestWithParam<std::uint64_t> {};

graph::TaskGraph random_graph(util::Rng& rng, int P) {
  const model::ModelKind kinds[] = {
      model::ModelKind::kRoofline, model::ModelKind::kCommunication,
      model::ModelKind::kAmdahl, model::ModelKind::kGeneral};
  const auto kind = kinds[rng.uniform_int(0, 3)];
  const model::ModelSampler sampler(kind);
  auto provider = graph::sampling_provider(sampler, rng, P);
  switch (rng.uniform_int(0, 6)) {
    case 0:
      return graph::layered_random(
          static_cast<int>(rng.uniform_int(1, 8)), 1,
          static_cast<int>(rng.uniform_int(1, 10)), rng.unit(), rng,
          provider);
    case 1:
      return graph::erdos_renyi_dag(
          static_cast<int>(rng.uniform_int(1, 60)), rng.unit() * 0.3, rng,
          provider);
    case 2:
      return graph::fork_join(static_cast<int>(rng.uniform_int(1, 4)),
                              static_cast<int>(rng.uniform_int(1, 10)),
                              provider);
    case 3:
      return graph::random_out_tree(
          static_cast<int>(rng.uniform_int(1, 60)),
          static_cast<int>(rng.uniform_int(0, 4)), rng, provider);
    case 4:
      return graph::random_in_tree(
          static_cast<int>(rng.uniform_int(1, 60)),
          static_cast<int>(rng.uniform_int(0, 4)), rng, provider);
    case 5:
      return graph::series_parallel(
          static_cast<int>(rng.uniform_int(1, 50)), rng, provider);
    default:
      return graph::chain(static_cast<int>(rng.uniform_int(1, 25)), provider);
  }
}

/// True when scheduling `gg` violates any fuzz invariant: the schedule
/// fails validation, beats the Lemma 2 bound, is nondeterministic
/// across runs, or crashes. Shared between the main check and the
/// shrinker, so a reduced instance fails for the same reason.
bool violates_invariants(const graph::TaskGraph& gg, int P,
                         const core::Allocator& alloc,
                         core::QueuePolicy policy) {
  try {
    const auto r1 = core::schedule_online(gg, P, alloc, policy);
    if (sim::validate_schedule(gg, r1.trace, P).ok() == false) return true;
    if (r1.makespan <
        analysis::optimal_makespan_lower_bound(gg, P) * (1.0 - 1e-9))
      return true;
    const auto r2 = core::schedule_online(gg, P, alloc, policy);
    return r1.makespan != r2.makespan;
  } catch (...) {
    return true;
  }
}

TEST_P(FuzzTest, EveryScheduleValidatesAndIsDeterministic) {
  util::Rng rng(GetParam());
  for (int rep = 0; rep < 6; ++rep) {
    const int P = static_cast<int>(rng.uniform_int(1, 100));
    const auto g = random_graph(rng, P);

    // Random allocator from the suite.
    const double mu = rng.uniform(0.05, 0.38);
    const core::LpaAllocator lpa(mu);
    const sched::MinTimeAllocator greedy;
    const sched::SequentialAllocator seq;
    const core::Allocator* allocators[] = {&lpa, &greedy, &seq};
    const auto* alloc = allocators[rng.uniform_int(0, 2)];

    const core::QueuePolicy policies[] = {
        core::QueuePolicy::kFifo, core::QueuePolicy::kLifo,
        core::QueuePolicy::kLargestWorkFirst,
        core::QueuePolicy::kLongestMinTimeFirst,
        core::QueuePolicy::kSmallestAllocFirst};
    const auto policy = policies[rng.uniform_int(0, 4)];

    if (violates_invariants(g, P, *alloc, policy)) {
      // Hand the human a minimal repro, not a 60-task haystack.
      const auto shrunk = check::shrink_instance(
          g, [&](const graph::TaskGraph& candidate) {
            return violates_invariants(candidate, P, *alloc, policy);
          });
      FAIL() << "fuzz invariant violated (seed " << GetParam() << ", rep "
             << rep << ", allocator " << alloc->name() << ")\n"
             << check::describe_instance(shrunk.graph, P, mu,
                                         "shrunk fuzz failure");
    }

    // The happy path still exercises the detailed gtest assertions so
    // a regression reports precise expected/actual values.
    const auto r1 = core::schedule_online(g, P, *alloc, policy);
    sim::expect_valid_schedule(g, r1.trace, P);
    EXPECT_GE(r1.makespan,
              analysis::optimal_makespan_lower_bound(g, P) * (1.0 - 1e-9));

    const auto r2 = core::schedule_online(g, P, *alloc, policy);
    EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         testing::Range<std::uint64_t>(1, 13),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

// Differential test: with FIFO and a fixed allocator, the online engine
// and the offline list engine given reveal-order priorities must agree
// exactly (same machine state decisions), whenever the graph is a set of
// independent tasks (no reveal dynamics).
TEST(DifferentialTest, OnlineMatchesOfflineListOnIndependentTasks) {
  util::Rng rng(777);
  const model::ModelSampler sampler(model::ModelKind::kGeneral);
  for (int rep = 0; rep < 10; ++rep) {
    const int P = static_cast<int>(rng.uniform_int(2, 64));
    const auto g = graph::independent(
        static_cast<int>(rng.uniform_int(1, 50)),
        graph::sampling_provider(sampler, rng, P));
    const core::LpaAllocator alloc(0.25);
    const auto online = core::schedule_online(g, P, alloc);

    std::vector<double> priorities(static_cast<std::size_t>(g.num_tasks()));
    // Reveal order is id order; offline uses descending priority, so
    // give task i priority -i.
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
      priorities[static_cast<std::size_t>(v)] = -static_cast<double>(v);
    const auto offline = sched::list_schedule_with_allocations(
        g, P, online.allocation, priorities);
    EXPECT_DOUBLE_EQ(online.makespan, offline.makespan());
  }
}

}  // namespace
}  // namespace moldsched
