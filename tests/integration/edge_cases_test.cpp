// Edge cases and less-travelled paths across modules.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/core/queue_policy.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/resilience/resilient_scheduler.hpp"
#include "moldsched/sched/contiguous_scheduler.hpp"
#include "moldsched/sched/release_scheduler.hpp"
#include "moldsched/sim/gantt.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/flags.hpp"
#include "moldsched/util/rng.hpp"
#include "moldsched/util/table.hpp"

namespace moldsched {
namespace {

TEST(EdgeCaseTest, GanttWithManyTasksCyclesLabelsAndTruncatesLegend) {
  graph::TaskGraph g;
  for (int i = 0; i < 80; ++i)
    (void)g.add_task(std::make_shared<model::RooflineModel>(1.0, 1));
  sim::Trace t;
  for (int i = 0; i < 80; ++i) {
    t.record_start(i, static_cast<double>(i), 1);
    t.record_end(i, static_cast<double>(i) + 1.0);
  }
  const auto out = sim::render_gantt(t, g, 1, 120);
  EXPECT_NE(out.find("..."), std::string::npos);  // legend truncated
  // Labels wrap around the 62-character alphabet: task 62 reuses 'A'.
  EXPECT_NE(out.find('A'), std::string::npos);
}

TEST(EdgeCaseTest, ReleaseSchedulerHonorsPriorityPolicies) {
  // Two tasks released together; largest-work-first reverses FIFO order.
  std::vector<sched::ReleasedTask> tasks{
      {std::make_shared<model::RooflineModel>(1.0, 1), 0.0, "small"},
      {std::make_shared<model::RooflineModel>(9.0, 1), 0.0, "big"}};
  class One : public core::Allocator {
   public:
    int allocate(const model::SpeedupModel&, int) const override { return 1; }
    std::string name() const override { return "one"; }
  };
  const One alloc;
  const auto fifo = sched::OnlineReleaseScheduler(tasks, 1, alloc).run();
  EXPECT_EQ(fifo.trace.records()[0].task, 0);
  const auto lwf =
      sched::OnlineReleaseScheduler(tasks, 1, alloc,
                                    core::QueuePolicy::kLargestWorkFirst)
          .run();
  EXPECT_EQ(lwf.trace.records()[0].task, 1);
}

TEST(EdgeCaseTest, ResilientSchedulerWorksUnderEveryPolicy) {
  util::Rng rng(91);
  const model::ModelSampler sampler(model::ModelKind::kAmdahl);
  const int P = 8;
  const auto g = graph::layered_random(
      4, 2, 5, 0.4, rng, graph::sampling_provider(sampler, rng, P));
  const core::LpaAllocator alloc(0.271);
  const auto failures = std::make_shared<resilience::BernoulliFailures>(0.3);
  for (const auto policy :
       {core::QueuePolicy::kFifo, core::QueuePolicy::kLifo,
        core::QueuePolicy::kLargestWorkFirst,
        core::QueuePolicy::kSmallestAllocFirst}) {
    const resilience::ResilientOnlineScheduler sched(g, P, alloc, failures,
                                                     17, policy);
    const auto result = sched.run();
    EXPECT_TRUE(
        resilience::validate_resilient_schedule(g, result, P).empty())
        << core::to_string(policy);
  }
}

TEST(EdgeCaseTest, ContiguousSchedulerWithLifoPolicy) {
  util::Rng rng(92);
  const model::ModelSampler sampler(model::ModelKind::kGeneral);
  const int P = 12;
  const auto g = graph::fork_join(
      2, 5, graph::sampling_provider(sampler, rng, P));
  const core::LpaAllocator alloc(0.211);
  const auto result = sched::schedule_online_contiguous(
      g, P, alloc, core::QueuePolicy::kLifo);
  sim::expect_valid_schedule(g, result.base.trace, P);
}

TEST(EdgeCaseTest, FlagsWithNoArguments) {
  const util::Flags flags(0, nullptr);
  EXPECT_TRUE(flags.program_name().empty());
  EXPECT_TRUE(flags.positional().empty());
  EXPECT_EQ(flags.get_int("missing", -1), -1);
}

TEST(EdgeCaseTest, MarkdownRendersShortRows) {
  util::Table t({"a", "b", "c"});
  t.new_row().cell("only-one");
  const auto md = t.to_markdown();
  EXPECT_NE(md.find("only-one"), std::string::npos);
  EXPECT_NE(md.find("|--"), std::string::npos);
}

TEST(EdgeCaseTest, QueuePolicyToStringCoversAll) {
  EXPECT_EQ(core::to_string(core::QueuePolicy::kFifo), "fifo");
  EXPECT_EQ(core::to_string(core::QueuePolicy::kLifo), "lifo");
  EXPECT_EQ(core::to_string(core::QueuePolicy::kLargestWorkFirst),
            "largest-work");
  EXPECT_EQ(core::to_string(core::QueuePolicy::kLongestMinTimeFirst),
            "longest-min-time");
  EXPECT_EQ(core::to_string(core::QueuePolicy::kSmallestAllocFirst),
            "smallest-alloc");
}

TEST(EdgeCaseTest, PriorityKeyMatchesPolicySemantics) {
  const model::AmdahlModel m(10.0, 2.0);
  EXPECT_DOUBLE_EQ(
      core::priority_key(core::QueuePolicy::kFifo, m, 3, 8), 0.0);
  EXPECT_DOUBLE_EQ(
      core::priority_key(core::QueuePolicy::kLargestWorkFirst, m, 3, 8),
      12.0);  // t(1)
  EXPECT_DOUBLE_EQ(
      core::priority_key(core::QueuePolicy::kLongestMinTimeFirst, m, 3, 8),
      10.0 / 8.0 + 2.0);  // t_min(8)
  EXPECT_DOUBLE_EQ(
      core::priority_key(core::QueuePolicy::kSmallestAllocFirst, m, 3, 8),
      -3.0);
}

TEST(EdgeCaseTest, SchedulingOnUnitPlatform) {
  // P = 1 degenerates everything to sequential execution; total time is
  // the sum of t(1) regardless of policy or model family.
  util::Rng rng(93);
  for (const auto kind :
       {model::ModelKind::kRoofline, model::ModelKind::kGeneral}) {
    const model::ModelSampler sampler(kind);
    const auto g = graph::independent(
        12, graph::sampling_provider(sampler, rng, 1));
    double total = 0.0;
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
      total += g.model_of(v).time(1);
    const core::LpaAllocator alloc(0.3);
    const auto run = core::schedule_online(g, 1, alloc);
    EXPECT_NEAR(run.makespan, total, 1e-9 * total);
  }
}

TEST(EdgeCaseTest, ZeroDurationTasksAreHandled) {
  // A task with tiny-but-positive work amid normal ones.
  graph::TaskGraph g;
  const auto a =
      g.add_task(std::make_shared<model::RooflineModel>(1e-12, 1), "tiny");
  const auto b =
      g.add_task(std::make_shared<model::RooflineModel>(1.0, 1), "unit");
  g.add_edge(a, b);
  const core::LpaAllocator alloc(0.3);
  const auto run = core::schedule_online(g, 2, alloc);
  EXPECT_NEAR(run.makespan, 1.0, 1e-9);
  sim::expect_valid_schedule(g, run.trace, 2);
}

}  // namespace
}  // namespace moldsched
