#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "moldsched/model/general_model.hpp"
#include "moldsched/model/special_models.hpp"

namespace moldsched::model {
namespace {

TEST(GeneralModelTest, TimeMatchesEquationOne) {
  GeneralParams p;
  p.w = 12.0;
  p.d = 2.0;
  p.c = 0.5;
  p.pbar = 4;
  const GeneralModel m(p);
  // t(p) = w/min(p, pbar) + d + c(p-1)
  EXPECT_DOUBLE_EQ(m.time(1), 12.0 + 2.0);
  EXPECT_DOUBLE_EQ(m.time(2), 6.0 + 2.0 + 0.5);
  EXPECT_DOUBLE_EQ(m.time(4), 3.0 + 2.0 + 1.5);
  // Beyond pbar the parallel part stops shrinking but overhead grows.
  EXPECT_DOUBLE_EQ(m.time(6), 3.0 + 2.0 + 2.5);
}

TEST(GeneralModelTest, AreaIsPTimesTime) {
  GeneralParams p;
  p.w = 10.0;
  p.d = 1.0;
  const GeneralModel m(p);
  for (int q = 1; q <= 8; ++q)
    EXPECT_DOUBLE_EQ(m.area(q), q * m.time(q));
}

TEST(GeneralModelTest, RejectsBadParameters) {
  GeneralParams p;
  p.w = -1.0;
  EXPECT_THROW(GeneralModel{p}, std::invalid_argument);
  p.w = 1.0;
  p.d = -0.5;
  EXPECT_THROW(GeneralModel{p}, std::invalid_argument);
  p.d = 0.0;
  p.c = -0.1;
  EXPECT_THROW(GeneralModel{p}, std::invalid_argument);
  p.c = 0.0;
  p.pbar = 0;
  EXPECT_THROW(GeneralModel{p}, std::invalid_argument);
  // Zero total time is also rejected.
  GeneralParams zero;
  zero.w = 0.0;
  EXPECT_THROW(GeneralModel{zero}, std::invalid_argument);
}

TEST(GeneralModelTest, RejectsNonPositiveProcs) {
  GeneralParams p;
  p.w = 1.0;
  const GeneralModel m(p);
  EXPECT_THROW((void)m.time(0), std::invalid_argument);
  EXPECT_THROW((void)m.time(-3), std::invalid_argument);
}

TEST(GeneralModelTest, MaxUsefulProcsRespectsAllThreeCaps) {
  // Cap by P.
  {
    GeneralParams p;
    p.w = 100.0;
    const GeneralModel m(p);
    EXPECT_EQ(m.max_useful_procs(8), 8);
  }
  // Cap by pbar.
  {
    GeneralParams p;
    p.w = 100.0;
    p.pbar = 3;
    const GeneralModel m(p);
    EXPECT_EQ(m.max_useful_procs(8), 3);
  }
  // Cap by the communication sweet spot sqrt(w/c) = 4.
  {
    GeneralParams p;
    p.w = 16.0;
    p.c = 1.0;
    const GeneralModel m(p);
    EXPECT_EQ(m.max_useful_procs(100), 4);
  }
}

TEST(GeneralModelTest, MaxUsefulProcsPicksBetterSqrtNeighbour) {
  // sqrt(w/c) = sqrt(10) ~ 3.162: compare t(3) and t(4).
  GeneralParams p;
  p.w = 10.0;
  p.c = 1.0;
  const GeneralModel m(p);
  const int pm = m.max_useful_procs(100);
  EXPECT_TRUE(pm == 3 || pm == 4);
  EXPECT_LE(m.time(pm), m.time(3));
  EXPECT_LE(m.time(pm), m.time(4));
}

TEST(GeneralModelTest, MaxUsefulProcsMatchesBruteForce) {
  for (const double w : {0.5, 3.0, 25.0, 400.0}) {
    for (const double c : {0.01, 0.3, 2.0}) {
      GeneralParams p;
      p.w = w;
      p.c = c;
      p.d = 0.1;
      const GeneralModel m(p);
      const int P = 64;
      int best = 1;
      for (int q = 2; q <= P; ++q)
        if (m.time(q) < m.time(best)) best = q;
      EXPECT_DOUBLE_EQ(m.time(m.max_useful_procs(P)), m.time(best))
          << "w=" << w << " c=" << c;
    }
  }
}

TEST(GeneralModelTest, MinTimeAndMinArea) {
  GeneralParams p;
  p.w = 16.0;
  p.c = 1.0;
  const GeneralModel m(p);
  EXPECT_DOUBLE_EQ(m.min_time(100), m.time(4));
  EXPECT_DOUBLE_EQ(m.min_area(100), m.area(1));
}

TEST(GeneralModelTest, DescribeAndClone) {
  GeneralParams p;
  p.w = 2.0;
  p.d = 1.0;
  const GeneralModel m(p);
  EXPECT_NE(m.describe().find("general"), std::string::npos);
  const auto copy = m.clone();
  EXPECT_DOUBLE_EQ(copy->time(3), m.time(3));
  EXPECT_EQ(copy->kind(), ModelKind::kGeneral);
}

TEST(RooflineModelTest, LinearSpeedupUntilPbar) {
  const RooflineModel m(12.0, 4);
  EXPECT_DOUBLE_EQ(m.time(1), 12.0);
  EXPECT_DOUBLE_EQ(m.time(2), 6.0);
  EXPECT_DOUBLE_EQ(m.time(4), 3.0);
  EXPECT_DOUBLE_EQ(m.time(8), 3.0);  // flat beyond pbar
  EXPECT_EQ(m.kind(), ModelKind::kRoofline);
}

TEST(RooflineModelTest, MaxUsefulProcsIsMinOfPbarAndP) {
  const RooflineModel m(12.0, 4);
  EXPECT_EQ(m.max_useful_procs(2), 2);
  EXPECT_EQ(m.max_useful_procs(10), 4);
}

TEST(RooflineModelTest, AreaConstantUpToPbar) {
  const RooflineModel m(12.0, 4);
  EXPECT_DOUBLE_EQ(m.area(1), 12.0);
  EXPECT_DOUBLE_EQ(m.area(4), 12.0);
  EXPECT_DOUBLE_EQ(m.area(8), 24.0);  // idle processors inflate area
}

TEST(RooflineModelTest, RejectsBadParameters) {
  EXPECT_THROW(RooflineModel(0.0, 4), std::invalid_argument);
  EXPECT_THROW(RooflineModel(-1.0, 4), std::invalid_argument);
  EXPECT_THROW(RooflineModel(1.0, 0), std::invalid_argument);
}

TEST(CommunicationModelTest, TimeMatchesEquationThree) {
  const CommunicationModel m(10.0, 0.5);
  EXPECT_DOUBLE_EQ(m.time(1), 10.0);
  EXPECT_DOUBLE_EQ(m.time(2), 5.0 + 0.5);
  EXPECT_DOUBLE_EQ(m.time(5), 2.0 + 2.0);
  EXPECT_EQ(m.kind(), ModelKind::kCommunication);
}

TEST(CommunicationModelTest, SweetSpotAllocation) {
  // sqrt(w/c) = sqrt(100/1) = 10.
  const CommunicationModel m(100.0, 1.0);
  EXPECT_EQ(m.max_useful_procs(1000), 10);
  EXPECT_EQ(m.max_useful_procs(5), 5);
}

TEST(CommunicationModelTest, RejectsDegenerateOverhead) {
  EXPECT_THROW(CommunicationModel(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(CommunicationModel(0.0, 1.0), std::invalid_argument);
}

TEST(AmdahlModelTest, TimeMatchesEquationFour) {
  const AmdahlModel m(10.0, 2.0);
  EXPECT_DOUBLE_EQ(m.time(1), 12.0);
  EXPECT_DOUBLE_EQ(m.time(2), 7.0);
  EXPECT_DOUBLE_EQ(m.time(10), 3.0);
  EXPECT_EQ(m.kind(), ModelKind::kAmdahl);
}

TEST(AmdahlModelTest, MinTimeUsesWholeMachine) {
  const AmdahlModel m(10.0, 2.0);
  EXPECT_EQ(m.max_useful_procs(16), 16);
  EXPECT_DOUBLE_EQ(m.min_time(16), 10.0 / 16.0 + 2.0);
  EXPECT_DOUBLE_EQ(m.min_area(16), 12.0);
}

TEST(AmdahlModelTest, RejectsDegenerateSequentialPart) {
  EXPECT_THROW(AmdahlModel(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(AmdahlModel(0.0, 1.0), std::invalid_argument);
}

TEST(SpeedupEfficiencyTest, RooflineIsPerfectlyEfficientUpToPbar) {
  const RooflineModel m(12.0, 4);
  EXPECT_DOUBLE_EQ(m.speedup(1), 1.0);
  EXPECT_DOUBLE_EQ(m.speedup(4), 4.0);
  EXPECT_DOUBLE_EQ(m.speedup(8), 4.0);  // saturates
  EXPECT_DOUBLE_EQ(m.efficiency(4), 1.0);
  EXPECT_DOUBLE_EQ(m.efficiency(8), 0.5);
}

TEST(SpeedupEfficiencyTest, AmdahlEfficiencyDecays) {
  const AmdahlModel m(9.0, 1.0);
  // s(p) = 10 / (9/p + 1); s(9) = 5.
  EXPECT_DOUBLE_EQ(m.speedup(9), 5.0);
  EXPECT_NEAR(m.efficiency(9), 5.0 / 9.0, 1e-12);
  // Efficiency is in (0, 1] and non-increasing for monotonic models.
  double prev = 1.0;
  for (int p = 1; p <= 32; ++p) {
    const double e = m.efficiency(p);
    EXPECT_GT(e, 0.0);
    EXPECT_LE(e, prev + 1e-12);
    prev = e;
  }
}

TEST(ModelKindTest, ToStringCoversAll) {
  EXPECT_EQ(to_string(ModelKind::kRoofline), "roofline");
  EXPECT_EQ(to_string(ModelKind::kCommunication), "communication");
  EXPECT_EQ(to_string(ModelKind::kAmdahl), "amdahl");
  EXPECT_EQ(to_string(ModelKind::kGeneral), "general");
  EXPECT_EQ(to_string(ModelKind::kArbitrary), "arbitrary");
}

TEST(SpecialModelsTest, CloneKeepsDynamicType) {
  const RooflineModel r(3.0, 2);
  EXPECT_EQ(r.clone()->kind(), ModelKind::kRoofline);
  const CommunicationModel c(3.0, 0.1);
  EXPECT_EQ(c.clone()->kind(), ModelKind::kCommunication);
  const AmdahlModel a(3.0, 0.1);
  EXPECT_EQ(a.clone()->kind(), ModelKind::kAmdahl);
}

}  // namespace
}  // namespace moldsched::model
