// Property tests of the monotonicity results of Section 3.2 (Lemma 1 and
// Eq. (6)) across randomized parameterizations of every Eq. (1) family.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::model {
namespace {

struct PropertyCase {
  ModelKind kind;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<PropertyCase>& info) {
  return to_string(info.param.kind) + "_seed" +
         std::to_string(info.param.seed);
}

class ModelPropertyTest : public testing::TestWithParam<PropertyCase> {};

constexpr int kP = 48;

TEST_P(ModelPropertyTest, Lemma1TimeNonIncreasingUpToPmax) {
  util::Rng rng(GetParam().seed);
  const ModelSampler sampler(GetParam().kind);
  for (int rep = 0; rep < 20; ++rep) {
    const auto m = sampler.sample(rng, kP);
    const int p_max = m->max_useful_procs(kP);
    EXPECT_TRUE(is_time_nonincreasing(*m, p_max)) << m->describe();
  }
}

TEST_P(ModelPropertyTest, Lemma1AreaNonDecreasingUpToPmax) {
  util::Rng rng(GetParam().seed + 1000);
  const ModelSampler sampler(GetParam().kind);
  for (int rep = 0; rep < 20; ++rep) {
    const auto m = sampler.sample(rng, kP);
    const int p_max = m->max_useful_procs(kP);
    EXPECT_TRUE(is_area_nondecreasing(*m, p_max)) << m->describe();
  }
}

TEST_P(ModelPropertyTest, Eq6NoSuperlinearSpeedup) {
  util::Rng rng(GetParam().seed + 2000);
  const ModelSampler sampler(GetParam().kind);
  for (int rep = 0; rep < 10; ++rep) {
    const auto m = sampler.sample(rng, kP);
    const int p_max = m->max_useful_procs(kP);
    EXPECT_TRUE(has_no_superlinear_speedup(*m, p_max)) << m->describe();
  }
}

TEST_P(ModelPropertyTest, PmaxIsGloballyTimeMinimalOverMachine) {
  util::Rng rng(GetParam().seed + 3000);
  const ModelSampler sampler(GetParam().kind);
  for (int rep = 0; rep < 10; ++rep) {
    const auto m = sampler.sample(rng, kP);
    const int p_max = m->max_useful_procs(kP);
    const double t_min = m->time(p_max);
    for (int p = 1; p <= kP; ++p)
      EXPECT_GE(m->time(p), t_min - 1e-12) << m->describe() << " p=" << p;
  }
}

TEST_P(ModelPropertyTest, MinAreaIsSequentialArea) {
  util::Rng rng(GetParam().seed + 4000);
  const ModelSampler sampler(GetParam().kind);
  for (int rep = 0; rep < 10; ++rep) {
    const auto m = sampler.sample(rng, kP);
    EXPECT_DOUBLE_EQ(m->min_area(kP), m->area(1)) << m->describe();
    // And indeed no allocation does better.
    for (int p = 1; p <= kP; ++p)
      EXPECT_GE(m->area(p), m->min_area(kP) - 1e-9) << m->describe();
  }
}

TEST_P(ModelPropertyTest, TimesArePositiveAndFinite) {
  util::Rng rng(GetParam().seed + 5000);
  const ModelSampler sampler(GetParam().kind);
  for (int rep = 0; rep < 10; ++rep) {
    const auto m = sampler.sample(rng, kP);
    for (int p = 1; p <= kP; ++p) {
      const double t = m->time(p);
      EXPECT_GT(t, 0.0);
      EXPECT_TRUE(std::isfinite(t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ModelPropertyTest,
    testing::Values(PropertyCase{ModelKind::kRoofline, 1},
                    PropertyCase{ModelKind::kRoofline, 2},
                    PropertyCase{ModelKind::kCommunication, 1},
                    PropertyCase{ModelKind::kCommunication, 2},
                    PropertyCase{ModelKind::kAmdahl, 1},
                    PropertyCase{ModelKind::kAmdahl, 2},
                    PropertyCase{ModelKind::kGeneral, 1},
                    PropertyCase{ModelKind::kGeneral, 2},
                    PropertyCase{ModelKind::kGeneral, 3}),
    case_name);

}  // namespace
}  // namespace moldsched::model
