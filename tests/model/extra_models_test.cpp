#include "moldsched/model/extra_models.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace moldsched::model {
namespace {

TEST(PowerLawModelTest, TimeFollowsPowerLaw) {
  const PowerLawModel m(16.0, 0.5);
  EXPECT_DOUBLE_EQ(m.time(1), 16.0);
  EXPECT_DOUBLE_EQ(m.time(4), 8.0);
  EXPECT_DOUBLE_EQ(m.time(16), 4.0);
  EXPECT_EQ(m.kind(), ModelKind::kArbitrary);
}

TEST(PowerLawModelTest, SigmaOneIsLinearSpeedup) {
  const PowerLawModel m(10.0, 1.0);
  EXPECT_DOUBLE_EQ(m.time(5), 2.0);
  EXPECT_DOUBLE_EQ(m.speedup(5), 5.0);
  EXPECT_DOUBLE_EQ(m.efficiency(5), 1.0);
}

TEST(PowerLawModelTest, MonotonicityHolds) {
  const PowerLawModel m(100.0, 0.7);
  EXPECT_TRUE(is_time_nonincreasing(m, 64));
  EXPECT_TRUE(is_area_nondecreasing(m, 64));
  EXPECT_TRUE(has_no_superlinear_speedup(m, 32));
  EXPECT_EQ(m.max_useful_procs(48), 48);
  EXPECT_DOUBLE_EQ(m.min_area(48), 100.0);
}

TEST(PowerLawModelTest, RejectsBadParameters) {
  EXPECT_THROW(PowerLawModel(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(PowerLawModel(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(PowerLawModel(1.0, 1.5), std::invalid_argument);
}

TEST(PowerLawModelTest, CloneAndDescribe) {
  const PowerLawModel m(3.0, 0.8);
  EXPECT_DOUBLE_EQ(m.clone()->time(2), m.time(2));
  EXPECT_NE(m.describe().find("0.8"), std::string::npos);
}

TEST(TableFromSamplesTest, ExactAtSamplePoints) {
  const auto m = table_from_samples({{1, 10.0}, {4, 4.0}, {8, 3.0}}, 8);
  EXPECT_DOUBLE_EQ(m->time(1), 10.0);
  EXPECT_DOUBLE_EQ(m->time(4), 4.0);
  EXPECT_DOUBLE_EQ(m->time(8), 3.0);
}

TEST(TableFromSamplesTest, LinearInterpolationBetweenSamples) {
  const auto m = table_from_samples({{1, 10.0}, {5, 2.0}}, 8);
  EXPECT_DOUBLE_EQ(m->time(3), 6.0);  // halfway
  EXPECT_DOUBLE_EQ(m->time(2), 8.0);
}

TEST(TableFromSamplesTest, ClampsOutsideSampledRange) {
  const auto m = table_from_samples({{2, 6.0}, {4, 3.0}}, 8);
  EXPECT_DOUBLE_EQ(m->time(1), 6.0);  // below range
  EXPECT_DOUBLE_EQ(m->time(8), 3.0);  // above range
}

TEST(TableFromSamplesTest, UnsortedAndDuplicateSamples) {
  const auto m =
      table_from_samples({{4, 5.0}, {1, 9.0}, {4, 4.0}, {2, 7.0}}, 4);
  EXPECT_DOUBLE_EQ(m->time(1), 9.0);
  EXPECT_DOUBLE_EQ(m->time(2), 7.0);
  EXPECT_DOUBLE_EQ(m->time(4), 4.0);  // duplicate kept the faster one
  EXPECT_DOUBLE_EQ(m->time(3), 5.5);  // interpolated between 2 and 4
}

TEST(TableFromSamplesTest, SingleSampleIsConstant) {
  const auto m = table_from_samples({{4, 2.5}}, 8);
  for (int p = 1; p <= 8; ++p) EXPECT_DOUBLE_EQ(m->time(p), 2.5);
}

TEST(TableFromSamplesTest, RejectsBadInput) {
  EXPECT_THROW((void)table_from_samples({}, 4), std::invalid_argument);
  EXPECT_THROW((void)table_from_samples({{0, 1.0}}, 4),
               std::invalid_argument);
  EXPECT_THROW((void)table_from_samples({{1, 0.0}}, 4),
               std::invalid_argument);
  EXPECT_THROW((void)table_from_samples({{1, 1.0}}, 0),
               std::invalid_argument);
}

TEST(TableFromSamplesTest, NamePropagates) {
  const auto m = table_from_samples({{1, 1.0}}, 2, "measured-kernel");
  EXPECT_NE(m->describe().find("measured-kernel"), std::string::npos);
}

}  // namespace
}  // namespace moldsched::model
