#include "moldsched/model/arbitrary_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace moldsched::model {
namespace {

TEST(TableModelTest, LooksUpAndClampsBeyondTable) {
  const TableModel m({4.0, 2.5, 2.0}, "demo");
  EXPECT_DOUBLE_EQ(m.time(1), 4.0);
  EXPECT_DOUBLE_EQ(m.time(2), 2.5);
  EXPECT_DOUBLE_EQ(m.time(3), 2.0);
  EXPECT_DOUBLE_EQ(m.time(7), 2.0);  // clamped
  EXPECT_EQ(m.table_size(), 3);
  EXPECT_EQ(m.kind(), ModelKind::kArbitrary);
}

TEST(TableModelTest, RejectsBadTables) {
  EXPECT_THROW(TableModel({}), std::invalid_argument);
  EXPECT_THROW(TableModel({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(TableModel({1.0, -2.0}), std::invalid_argument);
  EXPECT_THROW(
      TableModel({1.0, std::numeric_limits<double>::infinity()}),
      std::invalid_argument);
}

TEST(TableModelTest, NonMonotoneTablesAreAllowed) {
  // Arbitrary model: more processors may be slower.
  const TableModel m({2.0, 1.0, 3.0});
  EXPECT_EQ(m.max_useful_procs(3), 2);  // brute-force scan finds p=2
  EXPECT_DOUBLE_EQ(m.min_area(3), std::min({2.0, 2.0, 9.0}));
}

TEST(TableModelTest, DescribeAndClone) {
  const TableModel m({1.0}, "x");
  EXPECT_NE(m.describe().find("x"), std::string::npos);
  EXPECT_DOUBLE_EQ(m.clone()->time(1), 1.0);
}

TEST(FunctionModelTest, WrapsCallable) {
  const FunctionModel m([](int p) { return 10.0 / p; }, "hyperbolic");
  EXPECT_DOUBLE_EQ(m.time(1), 10.0);
  EXPECT_DOUBLE_EQ(m.time(5), 2.0);
  EXPECT_EQ(m.kind(), ModelKind::kArbitrary);
  EXPECT_NE(m.describe().find("hyperbolic"), std::string::npos);
}

TEST(FunctionModelTest, RejectsEmptyCallable) {
  EXPECT_THROW(FunctionModel(std::function<double(int)>{}),
               std::invalid_argument);
}

TEST(FunctionModelTest, DetectsNonPositiveTimes) {
  const FunctionModel m([](int p) { return static_cast<double>(p - 2); });
  EXPECT_THROW((void)m.time(1), std::logic_error);   // t = -1
  EXPECT_THROW((void)m.time(2), std::logic_error);   // t = 0
  EXPECT_DOUBLE_EQ(m.time(3), 1.0);
}

TEST(FunctionModelTest, NonIncreasingHintShortCircuitsPmax) {
  int calls = 0;
  const FunctionModel m(
      [&calls](int p) {
        ++calls;
        return 1.0 / p;
      },
      "fast", /*time_nonincreasing=*/true);
  EXPECT_EQ(m.max_useful_procs(1 << 20), 1 << 20);
  EXPECT_EQ(calls, 0);  // no scan happened
}

TEST(LogSpeedupModelTest, MatchesTheorem9Function) {
  const auto m = make_log_speedup_model();
  // t(p) = 1 / (lg p + 1)
  EXPECT_DOUBLE_EQ(m->time(1), 1.0);
  EXPECT_DOUBLE_EQ(m->time(2), 0.5);
  EXPECT_DOUBLE_EQ(m->time(4), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(m->time(8), 0.25);
  EXPECT_NEAR(m->time(3), 1.0 / (std::log2(3.0) + 1.0), 1e-12);
}

TEST(LogSpeedupModelTest, AreaNonDecreasingWithProcs) {
  // a(p) = p/(lg p + 1); note a(1) = a(2) = 1, strictly increasing after.
  const auto m = make_log_speedup_model();
  for (int p = 1; p < 64; ++p)
    EXPECT_LE(m->area(p), m->area(p + 1) + 1e-12) << "p=" << p;
  for (int p = 2; p < 64; ++p)
    EXPECT_LT(m->area(p), m->area(p + 1)) << "p=" << p;
}

TEST(LogSpeedupModelTest, PmaxIsWholeMachine) {
  const auto m = make_log_speedup_model();
  EXPECT_EQ(m->max_useful_procs(1 << 16), 1 << 16);
}

}  // namespace
}  // namespace moldsched::model
