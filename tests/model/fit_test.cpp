#include "moldsched/model/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "moldsched/model/general_model.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::model {
namespace {

std::vector<std::pair<int, double>> sample_model(const SpeedupModel& m,
                                                 std::initializer_list<int> ps) {
  std::vector<std::pair<int, double>> out;
  for (const int p : ps) out.emplace_back(p, m.time(p));
  return out;
}

TEST(FitTest, RecoversExactGeneralParameters) {
  GeneralParams truth;
  truth.w = 120.0;
  truth.d = 7.0;
  truth.c = 0.8;
  const GeneralModel m(truth);
  const auto fit =
      fit_general_model(sample_model(m, {1, 2, 4, 8, 16, 32}));
  EXPECT_NEAR(fit.params.w, 120.0, 1e-6);
  EXPECT_NEAR(fit.params.d, 7.0, 1e-6);
  EXPECT_NEAR(fit.params.c, 0.8, 1e-8);
  EXPECT_NEAR(fit.rmse, 0.0, 1e-8);
  EXPECT_NEAR(fit.max_relative_error, 0.0, 1e-9);
}

TEST(FitTest, RecoversAmdahlWithZeroC) {
  const AmdahlModel m(64.0, 4.0);
  const auto fit = fit_general_model(sample_model(m, {1, 2, 3, 5, 9}));
  EXPECT_NEAR(fit.params.w, 64.0, 1e-6);
  EXPECT_NEAR(fit.params.d, 4.0, 1e-6);
  EXPECT_NEAR(fit.params.c, 0.0, 1e-9);
}

TEST(FitTest, RecoversCommunicationWithZeroD) {
  const CommunicationModel m(200.0, 1.5);
  const auto fit = fit_general_model(sample_model(m, {1, 2, 4, 6, 10}));
  EXPECT_NEAR(fit.params.w, 200.0, 1e-5);
  EXPECT_NEAR(fit.params.d, 0.0, 1e-6);
  EXPECT_NEAR(fit.params.c, 1.5, 1e-7);
}

TEST(FitTest, NoisySamplesStillCloseToTruth) {
  GeneralParams truth;
  truth.w = 100.0;
  truth.d = 5.0;
  truth.c = 0.5;
  const GeneralModel m(truth);
  util::Rng rng(7);
  std::vector<std::pair<int, double>> samples;
  for (const int p : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}) {
    // +-1% multiplicative noise.
    samples.emplace_back(p, m.time(p) * rng.uniform(0.99, 1.01));
  }
  const auto fit = fit_general_model(samples);
  EXPECT_NEAR(fit.params.w, 100.0, 5.0);
  EXPECT_NEAR(fit.params.d, 5.0, 1.0);
  EXPECT_NEAR(fit.params.c, 0.5, 0.2);
  EXPECT_LT(fit.max_relative_error, 0.05);
}

TEST(FitTest, NonNegativityIsEnforced) {
  // Superlinear-looking data (time drops faster than 1/p) would want
  // negative d or c; the fit must stay in the feasible region.
  const std::vector<std::pair<int, double>> samples{
      {1, 10.0}, {2, 4.0}, {4, 1.2}, {8, 0.3}};
  const auto fit = fit_general_model(samples);
  EXPECT_GE(fit.params.w, 0.0);
  EXPECT_GE(fit.params.d, 0.0);
  EXPECT_GE(fit.params.c, 0.0);
  EXPECT_GT(fit.rmse, 0.0);  // cannot fit superlinear data exactly
}

TEST(FitTest, FittedModelIsSchedulable) {
  const AmdahlModel m(50.0, 2.0);
  const auto fit = fit_general_model(sample_model(m, {1, 4, 16, 64}));
  // The result is a real GeneralModel usable by the allocator stack.
  EXPECT_EQ(fit.model->kind(), ModelKind::kGeneral);
  EXPECT_GT(fit.model->time(8), 0.0);
  EXPECT_EQ(fit.model->max_useful_procs(32), 32);
}

TEST(FitTest, RejectsBadInput) {
  EXPECT_THROW((void)fit_general_model({}), std::invalid_argument);
  EXPECT_THROW((void)fit_general_model({{1, 1.0}, {2, 0.5}}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)fit_general_model({{1, 1.0}, {1, 1.1}, {1, 0.9}}),
      std::invalid_argument);  // one distinct allocation
  EXPECT_THROW(
      (void)fit_general_model({{0, 1.0}, {2, 0.5}, {3, 0.4}}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)fit_general_model({{1, -1.0}, {2, 0.5}, {3, 0.4}}),
      std::invalid_argument);
}

// --- near-singular hardening: the edge sets that used to be able to
// push NaN through the normal equations must either throw or clamp to a
// deterministic feasible answer.

TEST(FitTest, AllTimesEqualClampsToPureSequentialTerm) {
  // A constant profile is exactly d = const, w = c = 0; the 1/p and
  // p - 1 basis columns are correlated with the constant column, which
  // is where an unpivoted solve would go singular.
  const std::vector<std::pair<int, double>> samples{
      {1, 5.0}, {2, 5.0}, {4, 5.0}, {8, 5.0}};
  const auto fit = fit_general_model(samples);
  EXPECT_TRUE(std::isfinite(fit.params.w));
  EXPECT_TRUE(std::isfinite(fit.params.d));
  EXPECT_TRUE(std::isfinite(fit.params.c));
  EXPECT_TRUE(std::isfinite(fit.rmse));
  EXPECT_NEAR(fit.params.d, 5.0, 1e-9);
  EXPECT_NEAR(fit.params.w, 0.0, 1e-9);
  EXPECT_NEAR(fit.params.c, 0.0, 1e-9);
  EXPECT_NEAR(fit.rmse, 0.0, 1e-9);
  // Bit-for-bit repeatable: the mask enumeration is deterministic.
  const auto again = fit_general_model(samples);
  EXPECT_EQ(fit.params.w, again.params.w);
  EXPECT_EQ(fit.params.d, again.params.d);
  EXPECT_EQ(fit.params.c, again.params.c);
}

TEST(FitTest, TwoDistinctAllocationsPaddedWithDuplicatesThrows) {
  // Four samples but only two distinct p: the three-column system is
  // rank-deficient no matter how many duplicates pad it out. This must
  // be a crisp error, not a garbage solve.
  const std::vector<std::pair<int, double>> samples{
      {1, 10.0}, {1, 10.2}, {2, 6.0}, {2, 5.9}};
  EXPECT_THROW((void)fit_general_model(samples), std::invalid_argument);
  // Same with the duplicates interleaved at a different scale.
  EXPECT_THROW((void)fit_general_model(
                   {{4, 1.0}, {32, 0.5}, {4, 1.0}, {32, 0.5}, {4, 1.0}}),
               std::invalid_argument);
}

TEST(FitTest, ExtremeScalesStayFinite) {
  // Huge and tiny magnitudes: every candidate mask must either produce
  // a finite solve or be skipped; the winner is always finite.
  const std::vector<std::pair<int, double>> tiny{
      {1, 1e-12}, {2, 5e-13}, {4, 2.5e-13}};
  const auto f1 = fit_general_model(tiny);
  EXPECT_TRUE(std::isfinite(f1.rmse));
  EXPECT_TRUE(std::isfinite(f1.max_relative_error));
  const std::vector<std::pair<int, double>> huge{
      {1, 1e12}, {1000, 1e9}, {100000, 1e7}};
  const auto f2 = fit_general_model(huge);
  EXPECT_TRUE(std::isfinite(f2.rmse));
  EXPECT_GE(f2.params.w, 0.0);
}

TEST(FitTest, FitModelFamilyRestrictsTheBasis) {
  GeneralParams tp;
  tp.w = 120.0;
  tp.d = 4.0;
  tp.c = 0.3;
  tp.pbar = 24;
  const GeneralModel truth(tp);
  const auto samples = sample_model(truth, {1, 2, 4, 8, 16, 32, 64});
  // Roofline: only w may be nonzero.
  const auto roof = fit_model_family(samples, ModelKind::kRoofline);
  EXPECT_EQ(roof.params.d, 0.0);
  EXPECT_EQ(roof.params.c, 0.0);
  EXPECT_GT(roof.params.w, 0.0);
  // Amdahl: w and d only.
  const auto amd = fit_model_family(samples, ModelKind::kAmdahl);
  EXPECT_EQ(amd.params.c, 0.0);
  // Communication: w and c only.
  const auto comm = fit_model_family(samples, ModelKind::kCommunication);
  EXPECT_EQ(comm.params.d, 0.0);
  // General nests every family: its residual can never be worse.
  const auto gen = fit_model_family(samples, ModelKind::kGeneral);
  EXPECT_LE(gen.rmse, roof.rmse + 1e-12);
  EXPECT_LE(gen.rmse, amd.rmse + 1e-12);
  EXPECT_LE(gen.rmse, comm.rmse + 1e-12);
  EXPECT_THROW((void)fit_model_family(samples, ModelKind::kArbitrary),
               std::invalid_argument);
}

}  // namespace
}  // namespace moldsched::model
