#include "moldsched/model/fit.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "moldsched/model/special_models.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::model {
namespace {

std::vector<std::pair<int, double>> sample_model(const SpeedupModel& m,
                                                 std::initializer_list<int> ps) {
  std::vector<std::pair<int, double>> out;
  for (const int p : ps) out.emplace_back(p, m.time(p));
  return out;
}

TEST(FitTest, RecoversExactGeneralParameters) {
  GeneralParams truth;
  truth.w = 120.0;
  truth.d = 7.0;
  truth.c = 0.8;
  const GeneralModel m(truth);
  const auto fit =
      fit_general_model(sample_model(m, {1, 2, 4, 8, 16, 32}));
  EXPECT_NEAR(fit.params.w, 120.0, 1e-6);
  EXPECT_NEAR(fit.params.d, 7.0, 1e-6);
  EXPECT_NEAR(fit.params.c, 0.8, 1e-8);
  EXPECT_NEAR(fit.rmse, 0.0, 1e-8);
  EXPECT_NEAR(fit.max_relative_error, 0.0, 1e-9);
}

TEST(FitTest, RecoversAmdahlWithZeroC) {
  const AmdahlModel m(64.0, 4.0);
  const auto fit = fit_general_model(sample_model(m, {1, 2, 3, 5, 9}));
  EXPECT_NEAR(fit.params.w, 64.0, 1e-6);
  EXPECT_NEAR(fit.params.d, 4.0, 1e-6);
  EXPECT_NEAR(fit.params.c, 0.0, 1e-9);
}

TEST(FitTest, RecoversCommunicationWithZeroD) {
  const CommunicationModel m(200.0, 1.5);
  const auto fit = fit_general_model(sample_model(m, {1, 2, 4, 6, 10}));
  EXPECT_NEAR(fit.params.w, 200.0, 1e-5);
  EXPECT_NEAR(fit.params.d, 0.0, 1e-6);
  EXPECT_NEAR(fit.params.c, 1.5, 1e-7);
}

TEST(FitTest, NoisySamplesStillCloseToTruth) {
  GeneralParams truth;
  truth.w = 100.0;
  truth.d = 5.0;
  truth.c = 0.5;
  const GeneralModel m(truth);
  util::Rng rng(7);
  std::vector<std::pair<int, double>> samples;
  for (const int p : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}) {
    // +-1% multiplicative noise.
    samples.emplace_back(p, m.time(p) * rng.uniform(0.99, 1.01));
  }
  const auto fit = fit_general_model(samples);
  EXPECT_NEAR(fit.params.w, 100.0, 5.0);
  EXPECT_NEAR(fit.params.d, 5.0, 1.0);
  EXPECT_NEAR(fit.params.c, 0.5, 0.2);
  EXPECT_LT(fit.max_relative_error, 0.05);
}

TEST(FitTest, NonNegativityIsEnforced) {
  // Superlinear-looking data (time drops faster than 1/p) would want
  // negative d or c; the fit must stay in the feasible region.
  const std::vector<std::pair<int, double>> samples{
      {1, 10.0}, {2, 4.0}, {4, 1.2}, {8, 0.3}};
  const auto fit = fit_general_model(samples);
  EXPECT_GE(fit.params.w, 0.0);
  EXPECT_GE(fit.params.d, 0.0);
  EXPECT_GE(fit.params.c, 0.0);
  EXPECT_GT(fit.rmse, 0.0);  // cannot fit superlinear data exactly
}

TEST(FitTest, FittedModelIsSchedulable) {
  const AmdahlModel m(50.0, 2.0);
  const auto fit = fit_general_model(sample_model(m, {1, 4, 16, 64}));
  // The result is a real GeneralModel usable by the allocator stack.
  EXPECT_EQ(fit.model->kind(), ModelKind::kGeneral);
  EXPECT_GT(fit.model->time(8), 0.0);
  EXPECT_EQ(fit.model->max_useful_procs(32), 32);
}

TEST(FitTest, RejectsBadInput) {
  EXPECT_THROW((void)fit_general_model({}), std::invalid_argument);
  EXPECT_THROW((void)fit_general_model({{1, 1.0}, {2, 0.5}}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)fit_general_model({{1, 1.0}, {1, 1.1}, {1, 0.9}}),
      std::invalid_argument);  // one distinct allocation
  EXPECT_THROW(
      (void)fit_general_model({{0, 1.0}, {2, 0.5}, {3, 0.4}}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)fit_general_model({{1, -1.0}, {2, 0.5}, {3, 0.4}}),
      std::invalid_argument);
}

}  // namespace
}  // namespace moldsched::model
