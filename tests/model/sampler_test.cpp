#include "moldsched/model/sampler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "moldsched/model/general_model.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::model {
namespace {

TEST(SamplerTest, RejectsArbitraryKind) {
  EXPECT_THROW(ModelSampler(ModelKind::kArbitrary), std::invalid_argument);
}

TEST(SamplerTest, RejectsBadConfig) {
  SamplerConfig bad;
  bad.w_min = -1.0;
  EXPECT_THROW(ModelSampler(ModelKind::kGeneral, bad), std::invalid_argument);
  bad = SamplerConfig{};
  bad.w_min = 10.0;
  bad.w_max = 1.0;
  EXPECT_THROW(ModelSampler(ModelKind::kGeneral, bad), std::invalid_argument);
  bad = SamplerConfig{};
  bad.seq_fraction_min = 0.5;
  bad.seq_fraction_max = 0.1;
  EXPECT_THROW(ModelSampler(ModelKind::kGeneral, bad), std::invalid_argument);
  bad = SamplerConfig{};
  bad.pbar_min = 0;
  EXPECT_THROW(ModelSampler(ModelKind::kGeneral, bad), std::invalid_argument);
  bad = SamplerConfig{};
  bad.pbar_min = 5;
  bad.pbar_max = 2;
  EXPECT_THROW(ModelSampler(ModelKind::kGeneral, bad), std::invalid_argument);
}

TEST(SamplerTest, SampleRejectsBadP) {
  const ModelSampler s(ModelKind::kAmdahl);
  util::Rng rng(1);
  EXPECT_THROW((void)s.sample(rng, 0), std::invalid_argument);
}

TEST(SamplerTest, ProducesRequestedKind) {
  util::Rng rng(2);
  for (const auto kind :
       {ModelKind::kRoofline, ModelKind::kCommunication, ModelKind::kAmdahl,
        ModelKind::kGeneral}) {
    const ModelSampler s(kind);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(s.sample(rng, 16)->kind(), kind);
  }
}

TEST(SamplerTest, WorkRespectsConfiguredRange) {
  SamplerConfig cfg;
  cfg.w_min = 10.0;
  cfg.w_max = 20.0;
  const ModelSampler s(ModelKind::kGeneral, cfg);
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto m = s.sample(rng, 16);
    const auto& g = dynamic_cast<const GeneralModel&>(*m);
    EXPECT_GE(g.w(), 10.0 - 1e-9);
    EXPECT_LE(g.w(), 20.0 + 1e-9);
  }
}

TEST(SamplerTest, SequentialFractionBounded) {
  SamplerConfig cfg;
  cfg.seq_fraction_min = 0.1;
  cfg.seq_fraction_max = 0.2;
  const ModelSampler s(ModelKind::kGeneral, cfg);
  util::Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const auto& g = dynamic_cast<const GeneralModel&>(*s.sample(rng, 16));
    EXPECT_GE(g.d(), 0.1 * g.w() - 1e-9);
    EXPECT_LE(g.d(), 0.2 * g.w() + 1e-9);
  }
}

TEST(SamplerTest, RooflinePbarWithinMachine) {
  const ModelSampler s(ModelKind::kRoofline);
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto& g = dynamic_cast<const GeneralModel&>(*s.sample(rng, 12));
    EXPECT_GE(g.pbar(), 1);
    EXPECT_LE(g.pbar(), 12);
  }
}

TEST(SamplerTest, DeterministicGivenSeed) {
  const ModelSampler s(ModelKind::kCommunication);
  util::Rng rng1(7);
  util::Rng rng2(7);
  for (int i = 0; i < 10; ++i) {
    const auto a = s.sample(rng1, 32);
    const auto b = s.sample(rng2, 32);
    EXPECT_DOUBLE_EQ(a->time(5), b->time(5));
  }
}

TEST(SamplerTest, AmdahlAlwaysHasPositiveSequentialPart) {
  SamplerConfig cfg;
  cfg.seq_fraction_min = 0.0;
  cfg.seq_fraction_max = 0.0;
  const ModelSampler s(ModelKind::kAmdahl, cfg);
  util::Rng rng(8);
  // d = 0 would throw in AmdahlModel; the sampler must nudge it positive.
  for (int i = 0; i < 20; ++i) EXPECT_NO_THROW((void)s.sample(rng, 8));
}

}  // namespace
}  // namespace moldsched::model
